"""The ID_X-red procedure.

The make-or-break property (Section III's correctness claim): a fault
classified X-redundant is NEVER detected by three-valued SOT fault
simulation of the given sequence.  Checked exhaustively on randomized
circuits, plus structural unit tests for each step.
"""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.generators import counter, shift_register
from repro.circuits.iscas import s27
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.faults.universe import enumerate_faults
from repro.logic.fourval import IX_X, IX_X0, IX_X01, IX_X1
from repro.sequences.random_seq import random_sequence_for
from repro.xred.idxred import eliminate_x_redundant, id_x_red
from tests.util import random_circuit


@pytest.mark.parametrize("seed", range(12))
def test_soundness_on_random_circuits(seed):
    compiled = compile_circuit(
        random_circuit(seed, num_gates=16, num_dffs=3)
    )
    faults = enumerate_faults(compiled)
    sequence = random_sequence_for(compiled, 15, seed=seed)
    result = id_x_red(compiled, sequence, faults)
    x_red = [f for f in faults if result.is_x_redundant(f)]
    # none of them may be detected by the conventional simulation
    fs = FaultSet(x_red)
    fault_simulate_3v(compiled, sequence, fs)
    assert fs.counts()["detected"] == 0, [
        r.fault.describe(compiled) for r in fs.detected()
    ]


@pytest.mark.parametrize("name,factory", [
    ("s27", s27),
    ("counter", lambda: counter(6)),
    ("shift", lambda: shift_register(6)),
])
def test_soundness_on_benchmarks(name, factory):
    compiled = compile_circuit(factory())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 50, seed=3)
    fs = FaultSet(faults)
    eliminate_x_redundant(compiled, sequence, fs)
    x_red_records = fs.x_redundant()
    check = FaultSet([r.fault for r in x_red_records])
    fault_simulate_3v(compiled, sequence, check)
    assert check.counts()["detected"] == 0


def test_counter_without_reset_is_mostly_x_redundant():
    compiled = compile_circuit(counter(8))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 100, seed=1)
    result = id_x_red(compiled, sequence, faults)
    x_red = sum(1 for f in faults if result.is_x_redundant(f))
    assert x_red > 0.8 * len(faults)


def test_shift_register_has_no_x_redundant_faults():
    compiled = compile_circuit(shift_register(6))
    faults, _ = collapse_faults(compiled)
    # a long varied sequence exercises both values on every lead
    sequence = random_sequence_for(compiled, 60, seed=4)
    result = id_x_red(compiled, sequence, faults)
    assert not any(result.is_x_redundant(f) for f in faults)


def test_never_activated_faults_eliminated():
    # a lead held at constant 1 cannot host a detectable s-a-1
    c = Circuit("const-ish")
    c.add_input("a")
    c.add_gate("one", "CONST1", [])
    c.add_gate("o", "AND", ["a", "one"])
    c.add_output("o")
    compiled = compile_circuit(c)
    faults = enumerate_faults(compiled)
    sequence = [(0,), (1,), (0,), (1,)]
    result = id_x_red(compiled, sequence, faults)
    one = compiled.index["one"]
    from repro.faults.model import Fault, STEM

    assert result.is_x_redundant(Fault((STEM, one), 1))
    assert not result.is_x_redundant(Fault((STEM, one), 0))


def test_unobservable_region_eliminated():
    # g's effect is blocked: the AND side input is constant 0
    c = Circuit("blocked")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("zero", "CONST0", [])
    c.add_gate("g", "NOT", ["a"])
    c.add_gate("o", "AND", ["g", "zero"])
    c.add_output("o")
    compiled = compile_circuit(c)
    faults = enumerate_faults(compiled)
    sequence = [(0, 0), (1, 1)]
    result = id_x_red(compiled, sequence, faults)
    g = compiled.index["g"]
    from repro.faults.model import Fault, STEM

    assert result.is_x_redundant(Fault((STEM, g), 0))
    assert result.is_x_redundant(Fault((STEM, g), 1))


def test_step2_kills_dangling_logic():
    c = Circuit("dangle")
    c.add_input("a")
    c.add_gate("used", "NOT", ["a"])
    c.add_gate("dead", "NOT", ["a"])
    c.add_gate("dead2", "AND", ["dead", "a"])
    c.add_output("used")
    compiled = compile_circuit(c)
    faults = enumerate_faults(compiled)
    sequence = [(0,), (1,)]
    result = id_x_red(compiled, sequence, faults)
    assert result.stem_ix[compiled.index["dead"]] == IX_X
    assert result.stem_ix[compiled.index["dead2"]] == IX_X
    assert result.stem_ix[compiled.index["used"]] != IX_X


def test_step2_iterates_through_flipflops():
    # q2 only observes q1, q1 only feeds q2; nothing reaches a PO:
    # the fixpoint must kill the whole loop even though it takes more
    # than one backward pass
    c = Circuit("loop")
    c.add_input("a")
    c.add_dff("q1", "d1")
    c.add_dff("q2", "d2")
    c.add_gate("d1", "AND", ["a", "q2"])
    c.add_gate("d2", "NOT", ["q1"])
    c.add_gate("o", "BUF", ["a"])
    c.add_output("o")
    compiled = compile_circuit(c)
    sequence = [(1,), (0,), (1,)]
    result = id_x_red(compiled, sequence, enumerate_faults(compiled))
    assert result.stem_ix[compiled.index["q1"]] == IX_X
    assert result.stem_ix[compiled.index["q2"]] == IX_X
    faults = enumerate_faults(compiled)
    from repro.faults.model import STEM, Fault

    assert result.is_x_redundant(Fault((STEM, compiled.index["d1"]), 0))


def test_histories_feed_step4():
    # lead that saw only 0 -> s-a-0 never activated -> undetectable
    c = Circuit("hist")
    c.add_input("a")
    c.add_gate("z", "AND", ["a", "a"])
    c.add_gate("o", "BUF", ["z"])
    c.add_output("o")
    compiled = compile_circuit(c)
    result = id_x_red(compiled, [(0,), (0,)], enumerate_faults(compiled))
    z = compiled.index["z"]
    assert result.stem_ix[z] == IX_X0
    from repro.faults.model import STEM, Fault

    assert result.is_x_redundant(Fault((STEM, z), 0))
    assert not result.is_x_redundant(Fault((STEM, z), 1))


def test_runs_in_reasonable_time_on_large_circuit():
    from repro.circuits.generators import pipeline_datapath

    compiled = compile_circuit(pipeline_datapath(12, 4))
    faults = enumerate_faults(compiled)
    sequence = random_sequence_for(compiled, 100, seed=1)
    import time

    start = time.perf_counter()
    id_x_red(compiled, sequence, faults)
    assert time.perf_counter() - start < 5.0
