"""Additional SymbolicSession edge cases: clones, trial steps, and the
3-valued re-entry conversion rules the hybrid simulator depends on."""

import pytest

from repro.bdd.manager import FALSE, TRUE
from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import UNDETECTED, FaultSet
from repro.logic import threeval as tv
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import SymbolicSession


def build(strategy="MOT"):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    session = SymbolicSession(compiled, strategy)
    session.attach_faults(fs.undetected())
    return compiled, fs, session


def test_clone_does_not_alias_state():
    compiled, fs, session = build()
    clone = session.clone()
    sequence = random_sequence_for(compiled, 6, seed=1)
    for vector in sequence:
        clone.step(vector, mark_detected=False)
    # the original session is untouched
    assert session.time == 0
    assert len(session.live_records()) == len(fs)


def test_trial_step_leaves_statuses_alone():
    compiled, fs, session = build()
    sequence = random_sequence_for(compiled, 20, seed=2)
    trial = session.clone()
    detected_in_trial = 0
    for vector in sequence:
        detected_in_trial += len(
            trial.step(vector, mark_detected=False)
        )
    assert detected_in_trial > 0
    assert fs.counts()["detected"] == 0  # nothing marked


def test_clone_then_commit_equals_direct_run():
    compiled, fs1, s1 = build()
    compiled2, fs2, s2 = build()
    sequence = random_sequence_for(compiled, 10, seed=3)
    for vector in sequence:
        s1.step(vector)
        s2 = s2.clone()  # fork every frame, commit the fork
        s2.step(vector)
    d1 = {r.fault.key() for r in fs1.detected()}
    d2 = {r.fault.key() for r in fs2.detected()}
    assert d1 == d2


def test_state_bit_conversion_rules():
    compiled, fs, _ = build()
    session = SymbolicSession(
        compiled, "MOT", good_state_3v=[0, 1, tv.X]
    )
    assert session.good_state[0] == FALSE
    assert session.good_state[1] == TRUE
    assert not session.manager.is_const(session.good_state[2])
    # X bit got the x-variable of flip-flop 2
    assert session.manager.var(session.good_state[2]) == \
        session.state_vars.x(2)


def test_attach_fault_with_matching_diff_is_dropped():
    compiled, fs, _ = build()
    session = SymbolicSession(compiled, "MOT",
                              good_state_3v=[0, 1, tv.X])
    record = fs.records[0]
    # diff equal to the good state (bit 0 = 0) is no difference at all
    session.attach_fault(record, state_diff_3v={0: 0})
    assert session._store[id(record)][1] == {}
    # a genuine difference is kept as a constant
    record2 = fs.records[1]
    session.attach_fault(record2, state_diff_3v={0: 1})
    assert session._store[id(record2)][1] == {0: TRUE}
    # X faulty bit where the good bit is known gets the free variable
    record3 = fs.records[2]
    session.attach_fault(record3, state_diff_3v={0: tv.X})
    diff = session._store[id(record3)][1]
    assert 0 in diff and not session.manager.is_const(diff[0])
    # X faulty bit where the good bit is X collapses onto the shared
    # variable (sound for all three strategies, see hybrid docstring)
    record4 = fs.records[3]
    session.attach_fault(record4, state_diff_3v={2: tv.X})
    assert session._store[id(record4)][1] == {}
