"""Detection functions and Lemma 1."""

import pytest

from repro.bdd import BddManager, StateVariables
from repro.bdd.manager import FALSE, TRUE
from repro.symbolic.detection import detection_function, is_mot_detectable


def test_figure3_worked_example():
    """D(x,y) = [x == ~y] * [x == y] == 0 (the paper's computation)."""
    sv = StateVariables(1)
    m = BddManager(num_vars=sv.num_vars)
    x = m.mk_var(sv.x(0))
    good = [[x], [x]]  # o(x,1) = x, o(x,2) = x
    faulty = [[m.not_(x)], [x]]  # over x; renamed to y inside
    d = detection_function(m, good, faulty, sv.x_to_y())
    assert d == FALSE
    assert is_mot_detectable(m, good, faulty, sv.x_to_y())


def test_identical_machines_never_detected():
    sv = StateVariables(2)
    m = BddManager(num_vars=sv.num_vars)
    x0, x1 = m.mk_var(sv.x(0)), m.mk_var(sv.x(1))
    outs = [[m.xor(x0, x1)], [x0], [m.and_(x0, x1)]]
    d = detection_function(m, outs, outs, sv.x_to_y())
    # D(x, y) restricted to x == y must be 1: a machine cannot be
    # distinguished from itself
    for a0 in (0, 1):
        for a1 in (0, 1):
            assign = {
                sv.x(0): a0, sv.x(1): a1, sv.y(0): a0, sv.y(1): a1,
            }
            assert m.evaluate(d, assign) == 1
    assert d != FALSE


def test_constant_difference_detected_immediately():
    sv = StateVariables(1)
    m = BddManager(num_vars=sv.num_vars)
    assert detection_function(m, [[TRUE]], [[FALSE]], sv.x_to_y()) == FALSE


def test_shared_variable_view():
    """Without a rename map the machines share x (the rMOT view):
    a fault visible only against *some* initial states survives."""
    sv = StateVariables(1)
    m = BddManager(num_vars=sv.num_vars)
    x = m.mk_var(sv.x(0))
    good = [[x]]
    faulty = [[m.not_(x)]]
    shared = detection_function(m, good, faulty, rename_map=None)
    assert shared == FALSE  # x != ~x for every x: detected even shared
    good2 = [[x]]
    faulty2 = [[FALSE]]
    shared2 = detection_function(m, good2, faulty2, rename_map=None)
    assert shared2 == m.not_(x)  # only x=1 distinguishes


def test_length_mismatch_rejected():
    sv = StateVariables(1)
    m = BddManager(num_vars=sv.num_vars)
    with pytest.raises(ValueError):
        detection_function(m, [[TRUE]], [], sv.x_to_y())
    with pytest.raises(ValueError):
        detection_function(m, [[TRUE]], [[TRUE, FALSE]], sv.x_to_y())


def test_early_exit_on_zero():
    sv = StateVariables(1)
    m = BddManager(num_vars=sv.num_vars)
    x = m.mk_var(sv.x(0))
    # first frame already kills it; later frames would blow up if built
    good = [[TRUE], [x]]
    faulty = [[FALSE], [m.not_(x)]]
    assert detection_function(m, good, faulty, sv.x_to_y()) == FALSE
