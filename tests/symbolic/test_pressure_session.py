"""In-session memory relief: GC, reorder rescue, ladder recovery."""

from repro.bdd import BddManager, PressureConfig
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, nlfsr
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import SymbolicSession


def sessions_pair(circuit, node_limit=None):
    compiled = compile_circuit(circuit)
    faults, _ = collapse_faults(compiled)
    plain_set, pressured_set = FaultSet(faults), FaultSet(faults)
    plain = SymbolicSession(compiled, "MOT", node_limit=node_limit)
    plain.attach_faults(plain_set.undetected())
    pressured = SymbolicSession(compiled, "MOT", node_limit=node_limit)
    pressured.attach_faults(pressured_set.undetected())
    return compiled, (plain_set, plain), (pressured_set, pressured)


def detected_map(fault_set):
    return {
        r.fault.key(): (r.detected_by, r.detected_at)
        for r in fault_set.detected()
    }


def test_reorder_rescue_preserves_verdicts_and_state():
    compiled, (plain_set, plain), (rescued_set, rescued) = sessions_pair(
        nlfsr(6, seed=5)
    )
    sequence = random_sequence_for(compiled, 15, seed=3)
    for vector in sequence:
        plain.step(vector)
        rescued.step(vector)
        rescued.reorder_rescue(window=2, passes=1)
        assert rescued.project_state_3v() == plain.project_state_3v()
    assert detected_map(rescued_set) == detected_map(plain_set)


def test_reorder_rescue_accepts_only_improvements():
    compiled, _, (fault_set, session) = sessions_pair(counter(5))
    sequence = random_sequence_for(compiled, 8, seed=1)
    for vector in sequence:
        session.step(vector)
        before = session.manager.num_nodes
        saved = session.reorder_rescue()
        if saved:
            assert session.manager.num_nodes == before - saved
        assert saved >= 0


def test_rescue_noop_for_single_dff_and_other_schemes():
    compiled = compile_circuit(counter(1))
    session = SymbolicSession(compiled, "MOT")
    assert session.reorder_rescue() == 0  # num_dffs < 2

    compiled = compile_circuit(counter(3))
    session = SymbolicSession(compiled, "MOT", variable_scheme="blocked")
    assert session.reorder_rescue() == 0  # not the interleaved scheme


def test_pressured_session_matches_plain_session():
    # tiny watermark + eager eviction: relief fires constantly, and the
    # rungs are semantics-preserving so verdicts must not move
    compiled, (plain_set, plain), (pressured_set, pressured) = (
        sessions_pair(nlfsr(7, seed=2), node_limit=50_000)
    )
    config = PressureConfig(
        gc_watermark=0.01, live_fraction=1.0, cache_budget=32,
        reorder_rescue=True, check_stride=16,
    )
    pressured.attach_pressure(config.monitor())
    monitor = pressured.pressure
    sequence = random_sequence_for(compiled, 20, seed=4)
    for vector in sequence:
        plain.step(vector)
        pressured.step(vector)
        assert pressured.project_state_3v() == plain.project_state_3v()
    assert detected_map(pressured_set) == detected_map(plain_set)
    assert monitor.gc_runs > 0  # the ladder actually fired
    assert monitor.accounting()["events"] > 0


def test_relief_keeps_tight_session_under_watermark():
    # a session whose store would creep up without GC stays bounded
    # with relief armed and never hits its (generous) limit
    compiled = compile_circuit(nlfsr(8, seed=9))
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    session = SymbolicSession(compiled, "MOT", node_limit=100_000)
    session.attach_faults(fault_set.undetected())
    config = PressureConfig(gc_watermark=0.005, live_fraction=1.0)
    session.attach_pressure(config.monitor())
    for vector in random_sequence_for(compiled, 25, seed=6):
        session.step(vector)
    monitor = session.pressure
    assert monitor.gc_runs > 0
    assert monitor.nodes_freed > 0


def test_rescue_carries_alloc_hook_and_peak():
    compiled, _, (fault_set, session) = sessions_pair(nlfsr(6, seed=8))
    ticks = []
    session.manager.alloc_hook = lambda: ticks.append(1)
    sequence = random_sequence_for(compiled, 12, seed=7)
    swapped = False
    for vector in sequence:
        session.step(vector)
        peak_before = session.manager.peak_nodes
        old_manager = session.manager
        session.reorder_rescue(window=2, passes=2)
        if session.manager is not old_manager:
            swapped = True
            assert session.manager.alloc_hook is not None
            assert session.manager.peak_nodes >= peak_before
    if swapped:
        before = len(ticks)
        session.manager.mk_var(0)
        # hook still metering on the replacement manager (mk_var may be
        # cached; force a fresh node)
        session.manager.and_(
            session.manager.mk_var(0), session.manager.mk_var(1)
        )
        assert len(ticks) >= before
