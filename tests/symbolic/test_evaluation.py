"""Symbolic test evaluation (Section IV.B)."""

import random

import pytest

from repro.baselines.enumeration import all_states, simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, johnson, nlfsr
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.evaluation import (
    generate_response,
    symbolic_output_sequence,
)
from repro.symbolic.fault_sim import symbolic_fault_simulate
from tests.util import random_circuit


@pytest.mark.parametrize("seed", range(6))
def test_fault_free_responses_always_accepted(seed):
    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed, num_dffs=4))
    sequence = random_sequence_for(compiled, 12, seed=seed)
    symbolic = symbolic_output_sequence(compiled, sequence)
    for _ in range(4):
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(compiled, sequence, state)
        accepted, conflict = symbolic.evaluate(response)
        assert accepted and conflict is None


@pytest.mark.parametrize("seed", range(4))
def test_acceptance_matches_enumeration_exactly(seed):
    """A response is accepted iff SOME initial state produces it —
    cross-checked against brute-force enumeration with corrupted and
    genuine responses."""
    rng = random.Random(seed + 10)
    compiled = compile_circuit(random_circuit(seed, num_dffs=3))
    sequence = random_sequence_for(compiled, 8, seed=seed)
    symbolic = symbolic_output_sequence(compiled, sequence)
    genuine = {
        simulate_concrete(compiled, sequence, p)
        for p in all_states(compiled.num_dffs)
    }
    for trial in range(12):
        response = [
            list(frame)
            for frame in rng.choice(sorted(genuine))
        ]
        if trial % 2:
            # corrupt a random bit
            t = rng.randrange(len(response))
            j = rng.randrange(compiled.num_pos)
            response[t][j] ^= 1
        expected = tuple(tuple(f) for f in response) in genuine
        accepted, _ = symbolic.evaluate(response)
        assert accepted == expected


def test_mot_detected_fault_rejected_on_the_tester():
    compiled = compile_circuit(johnson(6))
    sequence = random_sequence_for(compiled, 40, seed=3)
    symbolic = symbolic_output_sequence(compiled, sequence)
    faults, _ = collapse_faults(compiled)
    rng = random.Random(1)
    checked = 0
    for fault in faults:
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy="MOT")
        if fs.counts()["detected"] != 1:
            continue
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(compiled, sequence, state,
                                     fault=fault)
        accepted, conflict = symbolic.evaluate(response)
        assert not accepted
        assert 1 <= conflict <= len(sequence)
        checked += 1
        if checked >= 10:
            break
    assert checked > 0


def test_partial_sequence_under_node_limit_is_conservative():
    compiled = compile_circuit(nlfsr(14, seed=5))
    sequence = random_sequence_for(compiled, 40, seed=5)
    symbolic = symbolic_output_sequence(
        compiled, sequence, node_limit=500
    )
    assert not symbolic.exact
    assert symbolic.restarts >= 1
    # genuine responses still accepted (conservativeness direction)
    rng = random.Random(2)
    for _ in range(3):
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(compiled, sequence, state)
        accepted, _ = symbolic.evaluate(response)
        assert accepted


def test_bdd_size_reported():
    compiled = compile_circuit(counter(5))
    sequence = random_sequence_for(compiled, 20, seed=1)
    symbolic = symbolic_output_sequence(compiled, sequence)
    assert symbolic.bdd_size() >= 2
    assert symbolic.exact


def test_response_length_checked():
    compiled = compile_circuit(s27())
    sequence = random_sequence_for(compiled, 5, seed=1)
    symbolic = symbolic_output_sequence(compiled, sequence)
    with pytest.raises(ValueError):
        symbolic.evaluate([[0]] * 3)


def test_known_initial_state_pins_response():
    """With a reset state the symbolic sequence accepts exactly the one
    golden response."""
    compiled = compile_circuit(s27())
    sequence = random_sequence_for(compiled, 10, seed=2)
    reset = [0] * compiled.num_dffs
    symbolic = symbolic_output_sequence(
        compiled, sequence, initial_state=reset
    )
    golden = generate_response(compiled, sequence, reset)
    accepted, _ = symbolic.evaluate(golden)
    assert accepted
    corrupted = [list(f) for f in golden]
    corrupted[4][0] ^= 1
    accepted, conflict = symbolic.evaluate(corrupted)
    assert not accepted and conflict == 5
