"""SymbolicSession mechanics: step atomicity, snapshots, compaction."""

import pytest

from repro.bdd.errors import SpaceLimitExceeded
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, nlfsr
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.logic import threeval as tv
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import SymbolicSession, symbolic_fault_simulate


def make_session(strategy="MOT", node_limit=None, circuit=None):
    compiled = compile_circuit(circuit or s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    session = SymbolicSession(compiled, strategy, node_limit=node_limit)
    session.attach_faults(fs.undetected())
    return compiled, fs, session


def test_step_counts_time():
    compiled, fs, session = make_session()
    sequence = random_sequence_for(compiled, 5, seed=0)
    for vector in sequence:
        session.step(vector)
    assert session.time == 5


def test_step_requires_binary_vectors():
    compiled, fs, session = make_session()
    with pytest.raises(ValueError):
        session.step((tv.X,) * compiled.num_pis)


def test_detected_faults_leave_the_store():
    compiled, fs, session = make_session()
    sequence = random_sequence_for(compiled, 20, seed=1)
    total = len(session.live_records())
    detected = 0
    for vector in sequence:
        detected += len(session.step(vector))
    assert len(session.live_records()) == total - detected
    assert detected == fs.counts()["detected"]


def test_step_is_atomic_under_space_limit():
    compiled, fs, session = make_session(node_limit=200,
                                         circuit=nlfsr(10, seed=3))
    # find the failing step; state before must be intact afterwards
    sequence = random_sequence_for(compiled, 30, seed=2)
    for vector in sequence:
        time_before = session.time
        state_before = list(session.good_state)
        store_before = {
            k: (dict(v[1]), v[2]) for k, v in session._store.items()
        }
        try:
            session.step(vector)
        except SpaceLimitExceeded:
            assert session.time == time_before
            assert session.good_state == state_before
            for k, (diff, acc) in store_before.items():
                assert session._store[k][1] == diff
                assert session._store[k][2] == acc
            break
    else:
        pytest.skip("limit never hit; lower node_limit")


def test_snapshot_3v_roundtrip():
    compiled, fs, session = make_session()
    sequence = random_sequence_for(compiled, 6, seed=3)
    for vector in sequence:
        session.step(vector)
    good_3v, diffs = session.snapshot_3v()
    assert len(good_3v) == compiled.num_dffs
    # constants survive, non-constants become X
    for bdd, v3 in zip(session.good_state, good_3v):
        if session.manager.is_const(bdd):
            assert v3 == session.manager.const_value(bdd)
        else:
            assert v3 == tv.X
    # a fresh session accepts the snapshot
    session2 = SymbolicSession(compiled, "MOT", good_state_3v=good_3v)
    session2.attach_faults(session.live_records(), diffs)
    session2.step(sequence[0])


def test_compact_preserves_future_behaviour():
    compiled1, fs1, s1 = make_session(strategy="rMOT")
    compiled2, fs2, s2 = make_session(strategy="rMOT")
    sequence = random_sequence_for(compiled1, 16, seed=4)
    for i, vector in enumerate(sequence):
        s1.step(vector)
        s2.step(vector)
        if i == 7:
            freed = s2.compact()
            assert freed >= 0
    assert fs1.counts() == fs2.counts()
    d1 = {r.fault.key(): r.detected_at for r in fs1.detected()}
    d2 = {r.fault.key(): r.detected_at for r in fs2.detected()}
    assert d1 == d2


def test_initial_state_mixes_constants_and_variables():
    compiled = compile_circuit(counter(4))
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    # two known bits, two unknown
    initial = [0, tv.X, 1, tv.X]
    result = symbolic_fault_simulate(
        compiled,
        random_sequence_for(compiled, 10, seed=5),
        fs,
        strategy="MOT",
        initial_state=initial,
    )
    assert result.frames_simulated == 10


def test_result_repr():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    result = symbolic_fault_simulate(
        compiled, random_sequence_for(compiled, 4, seed=1), fs,
        strategy="rMOT",
    )
    assert "rMOT" in repr(result)
    assert "exact" in repr(result)
