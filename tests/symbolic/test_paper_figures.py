"""Figures 1-3: the reconstructed circuits must show exactly the
phenomenon each figure illustrates, under both the symbolic simulator
and the enumeration oracle."""

import pytest

from repro.baselines.enumeration import (
    mot_detectable,
    rmot_detectable,
    sot_detectable,
)
from repro.bdd.manager import FALSE
from repro.circuit.compile import compile_circuit
from repro.circuits.figures import (
    figure1_circuit,
    figure2_circuit,
    figure3_circuit,
)
from repro.experiments.figures import run_figure
from repro.faults.model import stem_fault
from repro.faults.status import FaultSet
from repro.symbolic.fault_sim import symbolic_fault_simulate

EXPECTED = {
    # (SOT, rMOT, MOT)
    "fig1": (False, False, True),
    "fig2": (False, True, True),
    "fig3": (False, False, True),
}


@pytest.mark.parametrize("factory", [
    figure1_circuit, figure2_circuit, figure3_circuit,
])
def test_figures_symbolic_verdicts(factory):
    circuit, net, value, sequence = factory()
    compiled = compile_circuit(circuit)
    fault = stem_fault(compiled, net, value)
    expected = EXPECTED[circuit.name]
    for strategy, want in zip(("SOT", "rMOT", "MOT"), expected):
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy=strategy)
        assert (fs.counts()["detected"] == 1) == want, strategy


@pytest.mark.parametrize("factory", [
    figure1_circuit, figure2_circuit, figure3_circuit,
])
def test_figures_oracle_verdicts(factory):
    circuit, net, value, sequence = factory()
    compiled = compile_circuit(circuit)
    fault = stem_fault(compiled, net, value)
    expected = EXPECTED[circuit.name]
    got = (
        sot_detectable(compiled, sequence, fault),
        rmot_detectable(compiled, sequence, fault),
        mot_detectable(compiled, sequence, fault),
    )
    assert got == expected


def test_figure3_output_functions_match_paper():
    """o(x,.) = (x, x) and o^f(y,.) = (~y, y) — the exact functions the
    paper derives before computing D = [x==~y]*[x==y] = 0."""
    text, verdicts, detection = run_figure(
        figure3_circuit, "Figure 3"
    )
    assert "o(x,1) = [x]" in text
    assert "o(x,2) = [x]" in text
    assert "o^f(y,1) = [~y]" in text
    assert "o^f(y,2) = [y]" in text
    assert detection == FALSE
    assert verdicts == {"SOT": False, "rMOT": False, "MOT": True}


def test_figure2_fault_free_circuit_initialises():
    """The defining feature of Fig. 2: the sequence drives the
    fault-free circuit into a defined state, but not the faulty one."""
    from repro.engines.true_value import simulate_sequence

    circuit, net, value, sequence = figure2_circuit()
    compiled = compile_circuit(circuit)
    trace = simulate_sequence(compiled, sequence)
    from repro.logic import threeval as tv

    assert all(v != tv.X for v in trace.states[-1])  # good: initialised
    # faulty machine holds its unknown state forever: check via oracle
    # responses — two distinct faulty responses exist (state-dependent)
    from repro.baselines.enumeration import response_set

    fault = stem_fault(compiled, net, value)
    assert len(response_set(compiled, sequence, fault)) > 1
