"""Consistency between the incremental detection functions accumulated
by the fault simulator and the batch computation of
:func:`repro.symbolic.detection.detection_function` from complete
symbolic output sequences.

This guards the subtle part of the MOT implementation: the event-driven
simulator must account for unreached outputs (whose faulty function
equals the fault-free one but still constrains (x, y)) exactly like the
textbook product over all t and j does.
"""

import pytest

from repro.bdd import BddManager, StateVariables
from repro.bdd.manager import FALSE
from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.detection import detection_function
from repro.symbolic.fault_sim import symbolic_fault_simulate
from tests.util import random_circuit


def batch_detection(compiled, fault, sequence, rename):
    """Full symbolic output sequences -> detection function."""
    state_vars = StateVariables(compiled.num_dffs)
    manager = BddManager(num_vars=compiled.num_dffs)
    algebra = BddAlgebra(manager)
    state = [
        manager.mk_var(state_vars.x(i)) for i in range(compiled.num_dffs)
    ]
    diff = {}
    good_seq, faulty_seq = [], []
    for vector in sequence:
        pi_values = [algebra.const(b) for b in vector]
        values = simulate_frame(compiled, algebra, pi_values, state)
        result = propagate_fault(compiled, algebra, values, fault, diff)
        good_seq.append(outputs_of(compiled, values))
        faulty_seq.append(
            [result.faulty_value(values, sig) for sig in compiled.pos]
        )
        diff = result.next_state_diff
        state = next_state_of(compiled, values)
    mapping = state_vars.x_to_y() if rename else None
    return detection_function(manager, good_seq, faulty_seq, mapping)


@pytest.mark.parametrize("seed", range(6))
def test_mot_verdict_matches_batch(seed):
    compiled = compile_circuit(random_circuit(seed, num_dffs=3))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 6, seed=seed)
    for fault in faults[:30]:
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy="MOT")
        incremental = fs.counts()["detected"] == 1
        batch = batch_detection(compiled, fault, sequence, rename=True)
        assert incremental == (batch == FALSE), fault


def test_mot_verdict_matches_batch_s27():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 8, seed=11)
    for fault in faults:
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy="MOT")
        incremental = fs.counts()["detected"] == 1
        batch = batch_detection(compiled, fault, sequence, rename=True)
        assert incremental == (batch == FALSE), fault.describe(compiled)


@pytest.mark.parametrize("seed", range(4))
def test_rmot_detection_implies_shared_product_zero(seed):
    """rMOT detection means the *shared-variable* product restricted to
    well-defined outputs hits 0 — check against a batch recomputation
    restricted the same way."""
    from repro.bdd.manager import TRUE

    compiled = compile_circuit(random_circuit(seed + 40, num_dffs=3))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 6, seed=seed)

    state_vars = StateVariables(compiled.num_dffs)
    for fault in faults[:20]:
        manager = BddManager(num_vars=compiled.num_dffs)
        algebra = BddAlgebra(manager)
        state = [
            manager.mk_var(state_vars.x(i))
            for i in range(compiled.num_dffs)
        ]
        diff = {}
        product = TRUE
        for vector in sequence:
            pi_values = [algebra.const(b) for b in vector]
            values = simulate_frame(compiled, algebra, pi_values, state)
            result = propagate_fault(compiled, algebra, values, fault,
                                     diff)
            for po_pos, sig in enumerate(compiled.pos):
                good = values[sig]
                if not manager.is_const(good):
                    continue  # rMOT only observes well-defined outputs
                faulty = result.faulty_value(values, sig)
                product = manager.and_(
                    product, manager.xnor(good, faulty)
                )
            diff = result.next_state_diff
            state = next_state_of(compiled, values)
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy="rMOT")
        assert (fs.counts()["detected"] == 1) == (product == FALSE), fault
