"""THE cross-validation: the symbolic fault simulator's SOT/rMOT/MOT
verdicts must equal the explicit-enumeration oracle (Definitions 2/3)
on every fault of randomized small circuits.

This pins the whole Section IV machinery — symbolic true-value
simulation, event-driven propagation over BDDs, the x->y rename, the
per-strategy observation rules and fault dropping — against an
independent, brute-force implementation of the paper's definitions.
"""

import pytest

from repro.baselines.enumeration import (
    mot_detectable,
    rmot_detectable,
    sot_detectable,
)
from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import symbolic_fault_simulate
from tests.util import random_circuit

ORACLES = {
    "SOT": sot_detectable,
    "rMOT": rmot_detectable,
    "MOT": mot_detectable,
}


def assert_all_strategies_match(compiled, faults, sequence):
    for strategy, oracle in ORACLES.items():
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs, strategy=strategy)
        symbolic = {
            r.fault.key() for r in fs.detected()
        }
        expected = {
            f.key() for f in faults if oracle(compiled, sequence, f)
        }
        assert symbolic == expected, (
            f"{strategy}: extra={symbolic - expected} "
            f"missing={expected - symbolic}"
        )


@pytest.mark.parametrize("seed", range(10))
def test_random_circuits_match_oracle(seed):
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=3, num_gates=12, num_pos=2)
    )
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 6, seed=seed)
    assert_all_strategies_match(compiled, faults, sequence)


@pytest.mark.parametrize("seed", (3, 7))
def test_s27_matches_oracle(seed):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 10, seed=seed)
    assert_all_strategies_match(compiled, faults, sequence)


@pytest.mark.parametrize("seed", range(4))
def test_detection_hierarchy_symbolically(seed):
    """detected(SOT) <= detected(rMOT) <= detected(MOT) as sets."""
    compiled = compile_circuit(
        random_circuit(seed + 50, num_dffs=4, num_gates=16)
    )
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 12, seed=seed)
    detected = {}
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs, strategy=strategy)
        detected[strategy] = {r.fault.key() for r in fs.detected()}
    assert detected["SOT"] <= detected["rMOT"] <= detected["MOT"]


@pytest.mark.parametrize("seed", range(4))
def test_longer_sequences_detect_more(seed):
    """Monotonicity in the sequence: detection sets only grow."""
    compiled = compile_circuit(random_circuit(seed + 80, num_dffs=3))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 12, seed=seed)
    for strategy in ("SOT", "rMOT", "MOT"):
        fs_short = FaultSet(faults)
        symbolic_fault_simulate(
            compiled, sequence[:6], fs_short, strategy=strategy
        )
        fs_long = FaultSet(faults)
        symbolic_fault_simulate(
            compiled, sequence, fs_long, strategy=strategy
        )
        short = {r.fault.key() for r in fs_short.detected()}
        long = {r.fault.key() for r in fs_long.detected()}
        assert short <= long


def test_known_reset_state_sot_equals_concrete():
    """With a fully known initial state the machines are concrete; all
    three strategies agree and match plain Boolean comparison."""
    from repro.baselines.enumeration import simulate_concrete

    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 10, seed=5)
    reset = [0] * compiled.num_dffs
    golden = simulate_concrete(compiled, sequence, reset)
    expected = {
        f.key()
        for f in faults
        if simulate_concrete(compiled, sequence, reset, f) != golden
    }
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet(faults)
        symbolic_fault_simulate(
            compiled, sequence, fs, strategy=strategy, initial_state=reset
        )
        assert {r.fault.key() for r in fs.detected()} == expected, strategy
