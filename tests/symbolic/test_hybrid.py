"""Hybrid simulator: fallback protocol and conservativeness."""

import pytest

from repro.baselines.enumeration import mot_detectable
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import nlfsr
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import BY_3V, FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import symbolic_fault_simulate
from repro.symbolic.hybrid import hybrid_fault_simulate
from tests.util import random_circuit


def test_no_limit_hit_equals_pure_symbolic():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 25, seed=1)
    for strategy in ("SOT", "rMOT", "MOT"):
        fs_pure = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs_pure,
                                strategy=strategy)
        fs_hybrid = FaultSet(faults)
        result = hybrid_fault_simulate(
            compiled, sequence, fs_hybrid, strategy=strategy
        )
        assert result.exact
        assert result.frames_three_valued == 0
        d_pure = {(r.fault.key(), r.detected_at) for r in fs_pure.detected()}
        d_hyb = {(r.fault.key(), r.detected_at)
                 for r in fs_hybrid.detected()}
        assert d_pure == d_hyb


def test_fallback_triggers_under_tiny_limit():
    compiled = compile_circuit(nlfsr(10, seed=3))
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    sequence = random_sequence_for(compiled, 30, seed=2)
    result = hybrid_fault_simulate(
        compiled, sequence, fs, strategy="MOT", node_limit=400,
        fallback_frames=3,
    )
    assert not result.exact
    assert result.fallbacks >= 1
    assert result.frames_three_valued >= 3 * 1
    assert result.frames_total == len(sequence)
    assert (
        result.frames_symbolic + result.frames_three_valued
        == result.frames_total
    )


@pytest.mark.parametrize("seed", range(6))
def test_fallback_verdicts_remain_sound(seed):
    """Whatever the node limit does, every detection claimed by the
    hybrid run must be a real MOT detection (oracle-verified)."""
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=4, num_gates=18)
    )
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    sequence = random_sequence_for(compiled, 10, seed=seed)
    hybrid_fault_simulate(
        compiled, sequence, fs, strategy="MOT", node_limit=250,
        fallback_frames=2,
    )
    for record in fs.detected():
        assert mot_detectable(compiled, sequence, record.fault), (
            record.fault.describe(compiled)
        )


@pytest.mark.parametrize("seed", range(4))
def test_hybrid_detects_at_most_pure(seed):
    """Fallbacks may lose detections, never invent them."""
    compiled = compile_circuit(
        random_circuit(seed + 30, num_dffs=4, num_gates=16)
    )
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 10, seed=seed)
    fs_pure = FaultSet(faults)
    symbolic_fault_simulate(compiled, sequence, fs_pure, strategy="rMOT")
    fs_hyb = FaultSet(faults)
    hybrid_fault_simulate(
        compiled, sequence, fs_hyb, strategy="rMOT", node_limit=250,
        fallback_frames=2,
    )
    pure = {r.fault.key() for r in fs_pure.detected()}
    hyb = {r.fault.key() for r in fs_hyb.detected()}
    assert hyb <= pure


def test_gc_can_avoid_fallback():
    """With GC enabled, moderate limits are survivable without any
    three-valued interlude on a BDD-friendly circuit (the peak live
    set of a 6-bit counter stays far below its unbounded-table peak)."""
    from repro.circuits.generators import counter

    compiled = compile_circuit(counter(6))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 60, seed=7)
    fs_unbounded = FaultSet(faults)
    hybrid_fault_simulate(
        compiled, sequence, fs_unbounded, strategy="MOT",
        node_limit=10**9,
    )
    fs = FaultSet(faults)
    result = hybrid_fault_simulate(
        compiled, sequence, fs, strategy="MOT", node_limit=3000,
        try_gc_first=True,
    )
    assert result.gc_runs >= 1
    assert result.exact  # GC alone was enough
    assert fs.counts() == fs_unbounded.counts()


def test_three_valued_detections_are_labelled():
    compiled = compile_circuit(nlfsr(8, seed=1))
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    sequence = random_sequence_for(compiled, 30, seed=4)
    result = hybrid_fault_simulate(
        compiled, sequence, fs, strategy="MOT", node_limit=300,
        fallback_frames=5,
    )
    if result.fallbacks:
        for record in fs.detected(BY_3V):
            assert record.detected_by == BY_3V


def test_fallback_frames_must_be_positive():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    with pytest.raises(ValueError):
        hybrid_fault_simulate(
            compiled, [], FaultSet(faults), fallback_frames=0
        )
