"""ISCAS-89 .bench parsing and writing."""

import pytest

from repro.circuit.bench import (
    BenchParseError,
    parse_bench,
    save_bench,
    load_bench,
    write_bench,
)
from repro.circuits.iscas import S27_BENCH, s27

SIMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(o)
q = DFF(d)
d = AND(a, q)
o = XOR(d, b)
"""


def test_parse_simple():
    c = parse_bench(SIMPLE, name="simple")
    assert c.inputs == ["a", "b"]
    assert c.outputs == ["o"]
    assert c.dffs == {"q": "d"}
    assert c.gates["d"].kind == "AND"
    assert c.gates["o"].fanins == ("d", "b")


def test_parse_s27():
    c = s27()
    assert c.num_inputs == 4
    assert c.num_outputs == 1
    assert c.num_dffs == 3
    assert c.num_gates == 10


def test_roundtrip():
    c = parse_bench(SIMPLE, name="simple")
    text = write_bench(c)
    c2 = parse_bench(text, name="simple")
    assert c2.inputs == c.inputs
    assert c2.outputs == c.outputs
    assert c2.dffs == c.dffs
    assert c2.gates == c.gates


def test_roundtrip_s27():
    c2 = parse_bench(write_bench(s27()))
    assert c2.gates == s27().gates


def test_file_roundtrip(tmp_path):
    path = tmp_path / "simple.bench"
    save_bench(parse_bench(SIMPLE), path)
    c = load_bench(path)
    assert c.name == "simple"
    assert c.num_gates == 2


def test_aliases_and_case():
    c = parse_bench("INPUT(a)\nb = buff(a)\nc = INV(b)\nOUTPUT(c)\n")
    assert c.gates["b"].kind == "BUF"
    assert c.gates["c"].kind == "NOT"


def test_inline_comment_stripped():
    c = parse_bench("INPUT(a)  # the input\nb = NOT(a)\nOUTPUT(b)\n")
    assert c.inputs == ["a"]


def test_errors_carry_line_numbers():
    with pytest.raises(BenchParseError) as exc:
        parse_bench("INPUT(a)\ngibberish here\n")
    assert "line 2" in str(exc.value)


def test_unknown_gate_kind():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nb = FROB(a)\n")


def test_dff_arity_error():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nq = DFF(a, a)\n")


def test_bad_arity_error():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nb = AND(a)\n")


def test_duplicate_definition_names_file_and_line(tmp_path):
    path = tmp_path / "dup.bench"
    path.write_text("INPUT(a)\nINPUT(a)\nb = NOT(a)\nOUTPUT(b)\n")
    with pytest.raises(BenchParseError) as exc:
        load_bench(path)
    message = str(exc.value)
    assert str(path) in message
    assert "line 2" in message


def test_duplicate_gate_output_rejected():
    text = "INPUT(a)\nb = NOT(a)\nb = BUF(a)\nOUTPUT(b)\n"
    with pytest.raises(BenchParseError) as exc:
        parse_bench(text)
    assert "line 3" in str(exc.value)


def test_undefined_gate_fanin_rejected():
    text = "INPUT(a)\nb = AND(a, ghost)\nOUTPUT(b)\n"
    with pytest.raises(BenchParseError) as exc:
        parse_bench(text, name="frag")
    message = str(exc.value)
    assert "'ghost'" in message and "never defined" in message
    assert "line 2" in message


def test_undefined_output_net_rejected():
    with pytest.raises(BenchParseError) as exc:
        parse_bench("INPUT(a)\nOUTPUT(nowhere)\nb = NOT(a)\n")
    assert "'nowhere'" in str(exc.value)
    assert "line 2" in str(exc.value)


def test_forward_references_still_allowed():
    # .bench lists gates in arbitrary order; a use before its
    # definition is fine as long as the definition exists somewhere
    c = parse_bench("INPUT(a)\no = NOT(later)\nlater = BUF(a)\nOUTPUT(o)\n")
    assert c.gates["o"].fanins == ("later",)


def test_parse_error_is_structured():
    from repro.runtime.errors import CircuitFormatError, ReproError

    with pytest.raises(BenchParseError) as exc:
        parse_bench("INPUT(a)\ngibberish\n", source="chip.bench")
    err = exc.value
    assert isinstance(err, CircuitFormatError)
    assert isinstance(err, ReproError)
    assert isinstance(err, ValueError)  # backwards compatibility
    assert err.context() == {
        "source": "chip.bench",
        "line": 2,
        "reason": "cannot parse 'gibberish'",
    }


def test_s27_text_is_stable():
    # the embedded benchmark must stay byte-identical (it is the one
    # piece of real ISCAS-89 data in the repository)
    assert "G11 = NOR(G5, G9)" in S27_BENCH
    assert "G13 = NAND(G2, G12)" in S27_BENCH
