"""Circuit statistics helper."""

from repro.circuit.stats import circuit_stats, format_stats
from repro.circuits.iscas import s27


def test_s27_stats():
    stats = circuit_stats(s27())
    assert stats["inputs"] == 4
    assert stats["outputs"] == 1
    assert stats["dffs"] == 3
    assert stats["gates"] == 10
    assert stats["max_level"] >= 1
    assert sum(stats["gate_kinds"].values()) == 10


def test_format_stats_mentions_name():
    assert "s27" in format_stats(s27())
