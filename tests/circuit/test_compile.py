"""Compilation: levelisation, fanout lists, sink accounting."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.validate import CircuitError
from repro.circuits.iscas import s27
from tests.util import random_circuit


def test_levels_respect_topology(s27_compiled):
    for cg in s27_compiled.gates:
        for src in cg.fanins:
            assert s27_compiled.level[src] < cg.level


def test_gate_order_is_by_level(s27_compiled):
    levels = [cg.level for cg in s27_compiled.gates]
    assert levels == sorted(levels)


def test_sources_at_level_zero(s27_compiled):
    for sig in s27_compiled.pis + s27_compiled.ppis:
        assert s27_compiled.level[sig] == 0


def test_index_roundtrip(s27_compiled):
    for sig, name in enumerate(s27_compiled.names):
        assert s27_compiled.index[name] == sig


def test_fanout_gates_consistent(s27_compiled):
    for cg in s27_compiled.gates:
        for pin, src in enumerate(cg.fanins):
            assert (cg.pos, pin) in s27_compiled.fanout_gates[src]


def test_sink_count_matches_fanout_map(s27_compiled):
    circuit = s27_compiled.circuit
    fanout = circuit.fanout_map()
    for net, sinks in fanout.items():
        sig = s27_compiled.index[net]
        assert s27_compiled.sink_count(sig) == len(sinks)


def test_dff_alignment(s27_compiled):
    circuit = s27_compiled.circuit
    for (q, d), q_sig, d_sig in zip(
        circuit.dffs.items(), s27_compiled.ppis, s27_compiled.dff_d
    ):
        assert s27_compiled.names[q_sig] == q
        assert s27_compiled.names[d_sig] == d


def test_po_order_preserved(s27_compiled):
    circuit = s27_compiled.circuit
    assert [s27_compiled.names[s] for s in s27_compiled.pos] == \
        circuit.outputs


def test_compile_validates():
    c = Circuit("bad")
    c.add_input("a")
    c.add_gate("g1", "AND", ["a", "g2"])
    c.add_gate("g2", "OR", ["g1", "a"])
    c.add_output("g2")
    with pytest.raises(CircuitError):
        compile_circuit(c)


@pytest.mark.parametrize("seed", range(8))
def test_random_circuits_compile(seed):
    compiled = compile_circuit(random_circuit(seed))
    # every gate readable, every level consistent
    for cg in compiled.gates:
        assert cg.level >= 1
        for src in cg.fanins:
            assert compiled.level[src] < cg.level


def test_duplicated_fanin_counts_two_sinks():
    c = Circuit("dup")
    c.add_input("a")
    c.add_gate("g", "XOR", ["a", "a"])
    c.add_output("g")
    compiled = compile_circuit(c)
    a = compiled.index["a"]
    assert compiled.sink_count(a) == 2
    assert compiled.has_fanout_branches(a)
