"""Fanout-free region analysis."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuit.regions import ffr_heads, head_of, is_head, regions
from tests.util import random_circuit


def tree_circuit():
    """A pure tree: one region rooted at the PO."""
    c = Circuit("tree")
    for n in ("a", "b", "c", "d"):
        c.add_input(n)
    c.add_gate("g1", "AND", ["a", "b"])
    c.add_gate("g2", "OR", ["c", "d"])
    c.add_gate("o", "XOR", ["g1", "g2"])
    c.add_output("o")
    return compile_circuit(c)


def test_tree_is_single_region():
    compiled = tree_circuit()
    heads = ffr_heads(compiled)
    o = compiled.index["o"]
    assert o in heads
    # internal gates are not heads
    assert compiled.index["g1"] not in heads
    assert compiled.index["g2"] not in heads
    head = head_of(compiled)
    assert head[compiled.index["g1"]] == o
    assert head[compiled.index["a"]] == o


def test_fanout_stem_is_head():
    c = Circuit("fan")
    c.add_input("a")
    c.add_gate("s", "NOT", ["a"])
    c.add_gate("g1", "NOT", ["s"])
    c.add_gate("g2", "NOT", ["s"])
    c.add_output("g1")
    c.add_output("g2")
    compiled = compile_circuit(c)
    assert is_head(compiled, compiled.index["s"])


def test_dff_boundary_is_head():
    c = Circuit("seq")
    c.add_input("a")
    c.add_dff("q", "d")
    c.add_gate("d", "AND", ["a", "q"])
    c.add_output("q")
    compiled = compile_circuit(c)
    # d feeds only the DFF: that makes it a head
    assert is_head(compiled, compiled.index["d"])


def test_every_signal_has_a_head_or_is_dangling():
    compiled = tree_circuit()
    head = head_of(compiled)
    for sig in range(compiled.num_signals):
        assert head[sig] is not None


@pytest.mark.parametrize("seed", range(6))
def test_regions_partition_signals(seed):
    compiled = compile_circuit(random_circuit(seed, num_gates=20))
    groups = regions(compiled)
    seen = []
    for head, members in groups.items():
        assert head in members
        seen.extend(members)
    # heads cover themselves; a signal appears in exactly one region
    assert len(seen) == len(set(seen))


@pytest.mark.parametrize("seed", range(6))
def test_region_internal_nets_have_single_gate_sink(seed):
    compiled = compile_circuit(random_circuit(seed, num_gates=20))
    head = head_of(compiled)
    for sig in range(compiled.num_signals):
        if head[sig] is not None and head[sig] != sig:
            assert compiled.sink_count(sig) == 1
            assert len(compiled.fanout_gates[sig]) == 1
