"""Circuit netlist model."""

import pytest

from repro.circuit.netlist import Circuit, Gate


def small():
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_dff("q", "d")
    c.add_gate("d", "AND", ["a", "q"])
    c.add_gate("o", "XOR", ["d", "b"])
    c.add_output("o")
    return c


def test_counts():
    c = small()
    assert c.num_inputs == 2
    assert c.num_outputs == 1
    assert c.num_dffs == 1
    assert c.num_gates == 2


def test_all_nets_and_driver_kind():
    c = small()
    assert set(c.all_nets()) == {"a", "b", "q", "d", "o"}
    assert c.driver_kind("a") == "input"
    assert c.driver_kind("d") == "gate"
    assert c.driver_kind("q") == "dff"
    assert c.driver_kind("zzz") is None


def test_double_drive_rejected():
    c = small()
    with pytest.raises(ValueError):
        c.add_gate("a", "AND", ["b", "q"])
    with pytest.raises(ValueError):
        c.add_input("d")
    with pytest.raises(ValueError):
        c.add_dff("o", "d")


def test_gate_arity_checked():
    c = Circuit("t")
    c.add_input("a")
    with pytest.raises(ValueError):
        c.add_gate("g", "NOT", ["a", "a"])
    with pytest.raises(ValueError):
        c.add_gate("g", "AND", ["a"])
    with pytest.raises(ValueError):
        c.add_gate("g", "NOPE", ["a", "a"])


def test_fanout_map():
    c = small()
    fanout = c.fanout_map()
    assert ("gate", "d", 1) in fanout["q"]
    assert ("dff", "q") in fanout["d"]
    assert ("gate", "o", 0) in fanout["d"]
    assert ("po", 0) in fanout["o"]
    assert fanout["b"] == [("gate", "o", 1)]


def test_copy_is_independent():
    c = small()
    c2 = c.copy()
    c2.add_input("z")
    assert "z" not in c.inputs
    assert c2.gates == c.gates


def test_gate_equality_and_hash():
    g1 = Gate("o", "AND", ["a", "b"])
    g2 = Gate("o", "AND", ("a", "b"))
    g3 = Gate("o", "OR", ["a", "b"])
    assert g1 == g2
    assert hash(g1) == hash(g2)
    assert g1 != g3


def test_const_gates_allowed():
    c = Circuit("t")
    c.add_gate("one", "CONST1", [])
    c.add_gate("zero", "CONST0", [])
    c.add_gate("o", "OR", ["one", "zero"])
    c.add_output("o")
    assert c.num_gates == 3


def test_repr_mentions_counts():
    assert "2 PI" in repr(small())
