"""Structural validation."""

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.validate import CircuitError, validate


def test_valid_circuit_passes():
    c = Circuit("ok")
    c.add_input("a")
    c.add_dff("q", "d")
    c.add_gate("d", "AND", ["a", "q"])
    c.add_output("d")
    assert validate(c) is c


def test_undriven_gate_fanin():
    c = Circuit("bad")
    c.add_input("a")
    c.add_gate("g", "AND", ["a", "ghost"])
    c.add_output("g")
    with pytest.raises(CircuitError, match="undriven"):
        validate(c)


def test_undriven_dff_input():
    c = Circuit("bad")
    c.add_dff("q", "ghost")
    with pytest.raises(CircuitError, match="undriven"):
        validate(c)


def test_undriven_output():
    c = Circuit("bad")
    c.add_input("a")
    c.add_output("ghost")
    with pytest.raises(CircuitError, match="undriven"):
        validate(c)


def test_combinational_cycle_detected():
    c = Circuit("bad")
    c.add_input("a")
    c.add_gate("g1", "AND", ["a", "g2"])
    c.add_gate("g2", "OR", ["g1", "a"])
    c.add_output("g2")
    with pytest.raises(CircuitError, match="cycle"):
        validate(c)


def test_self_loop_detected():
    c = Circuit("bad")
    c.add_input("a")
    c.add_gate("g", "OR", ["g", "a"])
    c.add_output("g")
    with pytest.raises(CircuitError, match="cycle"):
        validate(c)


def test_cycle_through_dff_is_fine():
    c = Circuit("ok")
    c.add_input("a")
    c.add_dff("q", "d")
    c.add_gate("d", "XOR", ["q", "a"])
    c.add_output("d")
    validate(c)


def test_long_chain_no_recursion_error():
    c = Circuit("deep")
    c.add_input("a")
    prev = "a"
    for i in range(5000):
        c.add_gate(f"g{i}", "NOT", [prev])
        prev = f"g{i}"
    c.add_output(prev)
    validate(c)  # the DFS is iterative on purpose
