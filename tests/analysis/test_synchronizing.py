"""Synchronizing-sequence search."""

import pytest

from repro.analysis.synchronizing import (
    find_synchronizing_sequence,
    is_synchronizable,
    uncertainty_after,
)
from repro.baselines.enumeration import all_states, simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, shift_register, \
    sync_controller
from repro.circuits.iscas import s27
from repro.engines.algebra import BOOL
from repro.engines.true_value import simulate_sequence


def _verify_synchronizing(compiled, sequence, final_state):
    """Every initial state must land in final_state after the sequence."""
    for p in all_states(compiled.num_dffs):
        trace = simulate_sequence(
            compiled, sequence, initial_state=list(p), algebra=BOOL
        )
        assert tuple(trace.states[-1]) == final_state, p


def test_s27_synchronizes_in_one_step():
    compiled = compile_circuit(s27())
    result = find_synchronizing_sequence(compiled, max_length=4)
    assert result.found
    assert len(result.sequence) == 1
    _verify_synchronizing(compiled, result.sequence, result.final_state)


def test_shift_register_synchronizes_in_exactly_its_depth():
    compiled = compile_circuit(shift_register(5))
    result = find_synchronizing_sequence(compiled, max_length=10)
    assert result.found
    assert len(result.sequence) == 5
    _verify_synchronizing(compiled, result.sequence, result.final_state)


def test_sync_controller_synchronizes():
    compiled = compile_circuit(sync_controller(5))
    result = find_synchronizing_sequence(compiled, max_length=10)
    assert result.found
    _verify_synchronizing(compiled, result.sequence, result.final_state)


def test_counter_is_not_synchronizable():
    """The counter's transition function is a bijection for every
    input, so no sequence can merge two states — the paper's archetype
    of an untestable-by-3V circuit."""
    compiled = compile_circuit(counter(5))
    result = find_synchronizing_sequence(compiled, max_length=16)
    assert not result.found
    assert result.uncertainty_sizes[-1] == 32  # never shrank


def test_is_synchronizable_wrapper():
    assert is_synchronizable(compile_circuit(s27()))
    assert not is_synchronizable(compile_circuit(counter(4)),
                                 max_length=8)


def test_uncertainty_after_matches_enumeration():
    compiled = compile_circuit(s27())
    sequence = [(0, 1, 1, 0), (1, 0, 0, 1)]
    _set, count = uncertainty_after(compiled, sequence)
    explicit = {
        tuple(
            simulate_sequence(
                compiled, sequence, initial_state=list(p), algebra=BOOL
            ).states[-1]
        )
        for p in all_states(compiled.num_dffs)
    }
    assert count == len(explicit)


def test_uncertainty_monotonically_nonincreasing():
    compiled = compile_circuit(sync_controller(4))
    sequence = [(1, 0)] * 6
    previous = 1 << compiled.num_dffs
    for n in range(1, len(sequence) + 1):
        _s, count = uncertainty_after(compiled, sequence[:n])
        assert count <= previous
        previous = count
