"""Miter construction and sequential equivalence checking."""

import pytest

from repro.analysis.equivalence import (
    build_miter,
    check_equivalence,
)
from repro.baselines.enumeration import simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.validate import validate
from repro.circuits.generators import counter, shift_register
from repro.circuits.iscas import s27
from tests.util import random_circuit


def test_miter_structure():
    miter, dff_map = build_miter(counter(3), counter(3))
    validate(miter)
    assert miter.num_inputs == 1
    assert miter.num_outputs == 2  # tc and msb pairs
    assert miter.num_dffs == 6
    assert dff_map == [("a", 0), ("a", 1), ("a", 2),
                       ("b", 0), ("b", 1), ("b", 2)]


def test_miter_interface_mismatch():
    from repro.circuits.generators import traffic_light

    with pytest.raises(ValueError):
        build_miter(counter(3), traffic_light())  # 1/2 vs 2/3 interface


def test_self_equivalence():
    for factory in (lambda: counter(3), lambda: shift_register(4), s27):
        circuit = factory()
        result = check_equivalence(circuit, circuit.copy())
        assert result.equivalent, circuit.name


def test_renamed_copy_equivalent():
    """A structurally renamed netlist is still the same machine."""
    original = s27()
    from repro.circuit.bench import parse_bench, write_bench

    text = write_bench(original)
    for old, new in [("G10", "N10"), ("G11", "N11")]:
        text = text.replace(old, new)
    renamed = parse_bench(text, name="s27r")
    assert check_equivalence(original, renamed).equivalent


def test_mutated_gate_detected_with_counterexample():
    good = counter(3)
    bad = counter(3)
    bad.gates["tc"] = Gate("tc", "NOT", ["c3"])
    result = check_equivalence(good, bad)
    assert not result.equivalent
    assert result.counterexample is not None
    # replay the counterexample on both machines: outputs must differ
    # at the last frame on the reported output
    c_good = compile_circuit(good)
    c_bad = compile_circuit(bad)
    reset = (0,) * 3
    r_good = simulate_concrete(c_good, result.counterexample, reset)
    r_bad = simulate_concrete(c_bad, result.counterexample, reset)
    po = result.output_index
    assert r_good[-1][po] != r_bad[-1][po]


def test_swapped_dff_initialisation_matters():
    """Two counters equivalent from equal resets, inequivalent from
    different resets."""
    a = counter(3)
    b = counter(3)
    assert check_equivalence(a, b, reset1=(0, 0, 0),
                             reset2=(0, 0, 0)).equivalent
    result = check_equivalence(a, b, reset1=(0, 0, 0),
                               reset2=(1, 0, 0))
    assert not result.equivalent


def test_counterexample_replay_on_random_mutations():
    """Flip one gate kind in a random circuit; if the checker says
    'different', the counterexample must really distinguish; if it says
    'equivalent', exhaustive short-sequence search agrees."""
    from itertools import product

    for seed in range(4):
        original = random_circuit(seed, num_dffs=2, num_gates=8)
        mutated = original.copy(name="mut")
        victim = sorted(mutated.gates)[0]
        gate = mutated.gates[victim]
        if len(gate.fanins) == 1:
            new_kind = "BUF" if gate.kind == "NOT" else "NOT"
        else:
            new_kind = "NAND" if gate.kind != "NAND" else "AND"
        mutated.gates[victim] = Gate(victim, new_kind, gate.fanins)
        result = check_equivalence(original, mutated)
        c1 = compile_circuit(original)
        c2 = compile_circuit(mutated)
        reset = (0,) * original.num_dffs
        if not result.equivalent:
            r1 = simulate_concrete(c1, result.counterexample, reset)
            r2 = simulate_concrete(c2, result.counterexample, reset)
            assert r1 != r2
        else:
            # exhaustive check over all sequences of length <= 3
            for length in (1, 2, 3):
                for seq in product(
                    list(product((0, 1), repeat=c1.num_pis)),
                    repeat=length,
                ):
                    assert simulate_concrete(c1, list(seq), reset) == \
                        simulate_concrete(c2, list(seq), reset)


def test_max_steps_bound():
    result = check_equivalence(counter(4), counter(4), max_steps=2)
    assert result.equivalent
    assert result.steps <= 2
