"""Sequence-level observability diagnostics."""

from repro.analysis.observability import (
    observability_summary,
    three_valued_initialised_bits,
    well_defined_output_positions,
)
from repro.baselines.enumeration import well_defined_positions
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, shift_register, \
    sync_controller, traffic_light
from repro.sequences.random_seq import random_sequence_for


def test_counter_never_initialises():
    compiled = compile_circuit(counter(4))
    seq = random_sequence_for(compiled, 20, seed=1)
    init = three_valued_initialised_bits(compiled, seq)
    assert init == [None] * 4


def test_shift_register_initialises_progressively():
    compiled = compile_circuit(shift_register(4))
    seq = [(1,)] * 8
    init = three_valued_initialised_bits(compiled, seq)
    assert init == [1, 2, 3, 4]  # one stage per frame


def test_well_defined_positions_match_enumeration_oracle():
    compiled = compile_circuit(traffic_light())
    seq = [(0, 1)] + [(1, 0)] * 5
    symbolic = well_defined_output_positions(compiled, seq)
    explicit = well_defined_positions(compiled, seq)
    # oracle keys are (t-1, i) 0-based
    translated = {(t + 1, i): b for (t, i), b in explicit.items()}
    assert symbolic == translated


def test_sync_controller_has_defined_outputs_but_no_3v_init():
    compiled = compile_circuit(sync_controller(4))
    seq = [(1, 1)] * 8
    init = three_valued_initialised_bits(compiled, seq)
    assert init == [None] * 4
    defined = well_defined_output_positions(compiled, seq)
    assert defined  # symbolically the outputs DO become well-defined


def test_summary_shape():
    compiled = compile_circuit(traffic_light())
    seq = random_sequence_for(compiled, 10, seed=2)
    summary = observability_summary(compiled, seq)
    assert summary["frames"] == 10
    assert summary["dffs_total"] == 3
    assert 0 <= summary["dffs_initialised_3v"] <= 3
    assert (
        0 <= summary["well_defined_outputs"]
        <= summary["output_positions"]
    )
