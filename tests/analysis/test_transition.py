"""TransitionSystem: image computation vs explicit enumeration."""

import pytest

from repro.analysis.transition import TransitionSystem
from repro.baselines.enumeration import all_states
from repro.bdd.manager import FALSE, TRUE
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, sync_controller
from repro.circuits.iscas import s27
from repro.engines.algebra import BOOL
from repro.engines.evaluate import next_state_of, simulate_frame
from tests.util import random_circuit


def explicit_image(compiled, states, vector):
    result = set()
    for state in states:
        values = simulate_frame(compiled, BOOL, list(vector), list(state))
        result.add(tuple(next_state_of(compiled, values)))
    return result


def bdd_set_to_states(ts, state_set):
    states = set()
    for state in all_states(ts.num_dffs):
        assignment = {
            ts.state_var(i): bit for i, bit in enumerate(state)
        }
        if ts.manager.evaluate(state_set, assignment):
            states.add(state)
    return states


@pytest.mark.parametrize("seed", range(6))
def test_image_matches_enumeration(seed):
    import random

    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed, num_dffs=3))
    ts = TransitionSystem(compiled)
    # random subset of states
    subset = {
        s for s in all_states(3) if rng.random() < 0.5
    } or {(0, 0, 0)}
    state_set = ts.state_set_from_iter(subset)
    vector = tuple(rng.randrange(2) for _ in compiled.pis)
    symbolic = bdd_set_to_states(ts, ts.image(state_set, vector))
    assert symbolic == explicit_image(compiled, subset, vector)


@pytest.mark.parametrize("seed", range(4))
def test_free_input_image_is_union(seed):
    from itertools import product

    compiled = compile_circuit(random_circuit(seed + 20, num_dffs=3))
    ts = TransitionSystem(compiled)
    state_set = ts.state_set_from_iter([(0, 0, 0), (1, 1, 1)])
    free = bdd_set_to_states(ts, ts.image(state_set))
    union = set()
    for vector in product((0, 1), repeat=compiled.num_pis):
        union |= bdd_set_to_states(ts, ts.image(state_set, vector))
    assert free == union


def test_count_and_pick():
    compiled = compile_circuit(counter(3))
    ts = TransitionSystem(compiled)
    s = ts.state_set_from_iter([(0, 0, 0), (1, 0, 1)])
    assert ts.count_states(s) == 2
    assert ts.pick_state(s) in {(0, 0, 0), (1, 0, 1)}
    assert ts.pick_state(FALSE) is None
    assert ts.count_states(ts.all_states()) == 8


def test_counter_image_is_permutation():
    """An enabled counter permutes its state space: the image of the
    full space is the full space."""
    compiled = compile_circuit(counter(4))
    ts = TransitionSystem(compiled)
    assert ts.image(TRUE, (1,)) == TRUE
    # disabled: identity, also full
    assert ts.image(TRUE, (0,)) == TRUE


def test_sync_controller_image_shrinks():
    compiled = compile_circuit(sync_controller(4))
    ts = TransitionSystem(compiled)
    after = ts.image(TRUE, (1, 0))
    assert ts.count_states(after) < 16


def test_reachable_from_reset():
    compiled = compile_circuit(s27())
    ts = TransitionSystem(compiled)
    reset = ts.state_set_from_iter([(0, 0, 0)])
    reached = ts.reachable(reset)
    # the reachable set contains the reset state and is input-closed
    assert ts.manager.and_(reached, reset) == reset
    image = ts.image(reached)
    assert ts.manager.and_(image, ts.manager.not_(reached)) == FALSE


def test_output_function_restriction():
    compiled = compile_circuit(s27())
    ts = TransitionSystem(compiled)
    f_free = ts.output_function(0)
    f_fixed = ts.output_function(0, input_vector=(0, 1, 1, 0))
    support = ts.manager.support(f_fixed)
    assert support <= set(ts.state_vars())
    assert ts.manager.support(f_free) - set(ts.state_vars()) != set()
