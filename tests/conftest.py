"""Shared fixtures."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for


@pytest.fixture
def s27_compiled():
    return compile_circuit(s27())


@pytest.fixture
def s27_faults(s27_compiled):
    faults, _class_map = collapse_faults(s27_compiled)
    return faults


@pytest.fixture
def s27_fault_set(s27_faults):
    return FaultSet(s27_faults)


@pytest.fixture
def s27_sequence(s27_compiled):
    return random_sequence_for(s27_compiled, 40, seed=1)
