"""MOT-guided test generation."""

import pytest

from repro.atpg.generator import generate_mot_tests
from repro.baselines.enumeration import mot_detectable, rmot_detectable, \
    sot_detectable
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import counter, sync_controller
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import symbolic_fault_simulate

ORACLES = {
    "SOT": sot_detectable,
    "rMOT": rmot_detectable,
    "MOT": mot_detectable,
}


@pytest.mark.parametrize("strategy", ["SOT", "rMOT", "MOT"])
def test_generated_detections_are_oracle_sound(strategy):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    result = generate_mot_tests(
        compiled, faults, strategy=strategy, max_length=20, seed=2
    )
    oracle = ORACLES[strategy]
    for record in result.fault_set.detected():
        assert oracle(compiled, result.sequence, record.fault), (
            record.fault.describe(compiled)
        )


def test_detected_at_frames_within_sequence():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    result = generate_mot_tests(compiled, faults, max_length=16, seed=1)
    for record in result.fault_set.detected():
        assert 1 <= record.detected_at <= len(result.sequence)


def test_beats_random_at_equal_length_on_counter():
    """The MOT-guided generator's raison d'etre: on the circuit class
    where conventional generation is hopeless, guided beats random."""
    compiled = compile_circuit(counter(6))
    faults, _ = collapse_faults(compiled)
    result = generate_mot_tests(
        compiled, faults, strategy="MOT", max_length=40, seed=3,
        candidates=4,
    )
    fs_random = FaultSet(faults)
    symbolic_fault_simulate(
        compiled,
        random_sequence_for(compiled, len(result.sequence), seed=3),
        fs_random,
        strategy="MOT",
    )
    assert (
        result.fault_set.counts()["detected"]
        >= fs_random.counts()["detected"]
    )


def test_stops_when_everything_detected():
    compiled = compile_circuit(sync_controller(4))
    faults, _ = collapse_faults(compiled)
    result = generate_mot_tests(
        compiled, faults, strategy="rMOT", max_length=200, seed=1,
        patience=30,
    )
    # generation must terminate well before max_length once the live
    # list empties or goes stale
    assert len(result.sequence) < 200
    assert result.coverage() > 0.5


def test_respects_max_length():
    compiled = compile_circuit(counter(8))
    faults, _ = collapse_faults(compiled)
    result = generate_mot_tests(compiled, faults, max_length=10, seed=1)
    assert len(result.sequence) <= 10


def test_reproducible():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    a = generate_mot_tests(compiled, faults, max_length=12, seed=9)
    b = generate_mot_tests(compiled, faults, max_length=12, seed=9)
    assert a.sequence == b.sequence


def test_accepts_fault_set_with_preclassified_faults():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    fs.records[0].mark_detected("3-valued", 1)
    before = fs.counts()["detected"]
    result = generate_mot_tests(compiled, fs, max_length=10, seed=4)
    assert result.fault_set is fs
    assert fs.counts()["detected"] >= before
    # the preclassified fault kept its original attribution
    assert fs.records[0].detected_by == "3-valued"
