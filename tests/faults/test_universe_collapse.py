"""Fault-universe enumeration and equivalence collapsing.

The crucial collapsing property: equivalent faults are behaviourally
indistinguishable — every member of a class has exactly the same set of
output sequences (over all initial states) as its representative.  This
is verified with the explicit-enumeration baseline on small circuits.
"""

import pytest

from repro.baselines.enumeration import all_states, simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults, equivalence_classes
from repro.faults.model import BRANCH, DBRANCH, STEM
from repro.faults.universe import enumerate_faults, enumerate_leads
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit


def test_every_lead_both_polarities(s27_compiled):
    faults = enumerate_faults(s27_compiled)
    leads = enumerate_leads(s27_compiled)
    assert len(faults) == 2 * len(leads)
    keys = {f.key() for f in faults}
    assert len(keys) == len(faults)


def test_branch_leads_only_on_fanout_stems(s27_compiled):
    for lead in enumerate_leads(s27_compiled):
        if lead[0] == BRANCH:
            gate_pos, pin = lead[1], lead[2]
            src = s27_compiled.gates[gate_pos].fanins[pin]
            assert s27_compiled.has_fanout_branches(src)
        elif lead[0] == DBRANCH:
            src = s27_compiled.dff_d[lead[1]]
            assert s27_compiled.has_fanout_branches(src)


def test_s27_collapsed_count(s27_compiled):
    faults, _ = collapse_faults(s27_compiled)
    assert len(faults) == 32  # the canonical s27 collapsed fault count


def test_class_map_covers_universe(s27_compiled):
    faults, class_map = collapse_faults(s27_compiled)
    universe = enumerate_faults(s27_compiled)
    reps = {f.key() for f in faults}
    for fault in universe:
        assert fault.key() in class_map
        assert class_map[fault.key()].key() in reps


def test_representative_is_own_representative(s27_compiled):
    faults, class_map = collapse_faults(s27_compiled)
    for rep in faults:
        assert class_map[rep.key()] == rep


@pytest.mark.parametrize("seed", range(4))
def test_equivalent_faults_behave_identically(seed):
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=3, num_gates=10)
    )
    _faults, class_map = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 6, seed=seed)
    states = all_states(compiled.num_dffs)

    def behaviour(fault):
        return frozenset(
            simulate_concrete(compiled, sequence, q, fault) for q in states
        )

    by_rep = {}
    for fault in enumerate_faults(compiled):
        rep = class_map[fault.key()].key()
        expected = by_rep.setdefault(rep, behaviour(fault))
        assert behaviour(fault) == expected, (
            f"fault {fault!r} differs from its class"
        )


def test_collapse_is_deterministic(s27_compiled):
    f1, _ = collapse_faults(s27_compiled)
    f2, _ = collapse_faults(s27_compiled)
    assert [f.key() for f in f1] == [f.key() for f in f2]


def test_union_find_path_compression():
    uf = equivalence_classes(compile_circuit(s27()))
    # idempotent finds
    some = next(iter(uf.parent))
    assert uf.find(some) == uf.find(some)
