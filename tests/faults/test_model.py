"""Fault model basics."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.faults.model import (
    BRANCH,
    DBRANCH,
    STEM,
    Fault,
    stem_fault,
    stem_signal,
)


def test_fault_identity():
    f1 = Fault((STEM, 3), 0)
    f2 = Fault((STEM, 3), 0)
    f3 = Fault((STEM, 3), 1)
    assert f1 == f2 and hash(f1) == hash(f2)
    assert f1 != f3
    assert f1.key() == ((STEM, 3), 0)


def test_bad_value_rejected():
    with pytest.raises(ValueError):
        Fault((STEM, 0), 2)


def test_bad_lead_kind_rejected():
    with pytest.raises(ValueError):
        Fault(("wire", 0), 1)


def test_describe_stem(s27_compiled):
    f = stem_fault(s27_compiled, "G10", 1)
    assert f.describe(s27_compiled) == "G10 s-a-1"


def test_describe_branch(s27_compiled):
    # G11 fans out; find a branch lead into some gate
    g11 = s27_compiled.index["G11"]
    gate_pos, pin = s27_compiled.fanout_gates[g11][0]
    f = Fault((BRANCH, gate_pos, pin), 0)
    desc = f.describe(s27_compiled)
    assert desc.startswith("G11->") and desc.endswith("s-a-0")


def test_describe_dbranch(s27_compiled):
    # G11 feeds DFF G6 and other gates -> a D-branch lead exists
    dff_idx = s27_compiled.ppis.index(s27_compiled.index["G6"])
    f = Fault((DBRANCH, dff_idx), 1)
    assert "DFF(G6)" in f.describe(s27_compiled)


def test_stem_signal(s27_compiled):
    f = stem_fault(s27_compiled, "G10", 1)
    assert stem_signal(s27_compiled, f) == s27_compiled.index["G10"]
    g11 = s27_compiled.index["G11"]
    gate_pos, pin = s27_compiled.fanout_gates[g11][0]
    fb = Fault((BRANCH, gate_pos, pin), 0)
    assert stem_signal(s27_compiled, fb) == g11
