"""Dominance collapsing.

Safety property: any test sequence detecting every KEPT fault (under a
fixed known initial state, where dominance theory applies cleanly)
also detects every REMOVED fault.
"""

import pytest

from repro.baselines.enumeration import simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.faults.dominance import dominance_collapse, dominance_pairs
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit


def test_and_gate_pair():
    c = Circuit("and")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", "AND", ["a", "b"])
    c.add_output("g")
    compiled = compile_circuit(c)
    pairs = dominance_pairs(compiled)
    g = compiled.index["g"]
    a = compiled.index["a"]
    # output s-a-1 dominates input s-a-1
    assert ((("stem", g), 1), (("stem", a), 1)) in pairs


def test_nand_polarity():
    c = Circuit("nand")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", "NAND", ["a", "b"])
    c.add_output("g")
    compiled = compile_circuit(c)
    pairs = dominance_pairs(compiled)
    g = compiled.index["g"]
    a = compiled.index["a"]
    assert ((("stem", g), 0), (("stem", a), 1)) in pairs


def test_collapse_shrinks_s27():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    kept, removed = dominance_collapse(compiled, faults)
    assert len(kept) < len(faults)
    assert len(kept) + len(removed) == len(faults)


@pytest.mark.parametrize("seed", range(6))
def test_per_frame_dominance_property(seed):
    """The sound, per-time-frame statement of dominance: with the two
    machines in the SAME present state, whenever the dominated fault
    corrupts any signal, the dominator corrupts exactly the same
    signals with the same values (its corruption events are a
    superset).  This is what combinational dominance guarantees; its
    multi-frame extension is famously not valid in general for
    sequential circuits, which is why ``dominance_collapse`` is
    reserved for test-generation heuristics (see module docstring)."""
    import random as random_module

    from repro.engines.algebra import BOOL
    from repro.engines.evaluate import simulate_frame
    from repro.engines.propagate import propagate_fault

    rng = random_module.Random(seed)
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=2, num_gates=10)
    )
    faults, _ = collapse_faults(compiled)
    _kept, removed = dominance_collapse(compiled, faults)
    _, class_map = collapse_faults(compiled)

    def find_by_rep(rep_key):
        for fault in faults:
            if class_map[fault.key()].key() == rep_key:
                return fault
        return None

    def boundary_diff(result):
        """Observable per-frame corruption: POs and next-state bits."""
        po = {
            po_pos: result.diff[sig]
            for sig in result.diff
            for po_pos in compiled.po_sinks[sig]
        }
        return po, dict(result.next_state_diff)

    for trial in range(8):
        vector = [rng.randrange(2) for _ in compiled.pis]
        state = [rng.randrange(2) for _ in compiled.ppis]
        good = simulate_frame(compiled, BOOL, vector, state)
        for dominator_key, dominated in removed.items():
            dominator = find_by_rep(dominator_key)
            if dominator is None:
                continue
            po_b, ns_b = boundary_diff(
                propagate_fault(compiled, BOOL, good, dominated, {})
            )
            po_a, ns_a = boundary_diff(
                propagate_fault(compiled, BOOL, good, dominator, {})
            )
            for key, value in po_b.items():
                assert po_a.get(key) == value, (dominator, dominated)
            for key, value in ns_b.items():
                assert ns_a.get(key) == value, (dominator, dominated)


def test_removed_map_points_to_kept_faults():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    kept, removed = dominance_collapse(compiled, faults)
    kept_keys = {f.key() for f in kept}
    for justification in removed.values():
        assert justification.key() in kept_keys


def test_only_safe_direction_supported():
    compiled = compile_circuit(s27())
    with pytest.raises(ValueError):
        dominance_collapse(compiled, keep="dominators")
