"""FaultSet bookkeeping."""

from repro.faults.model import STEM, Fault
from repro.faults.status import (
    BY_3V,
    BY_MOT,
    DETECTED,
    UNDETECTED,
    X_REDUNDANT,
    FaultSet,
)


def make_set(n=6):
    return FaultSet([Fault((STEM, i), i % 2) for i in range(n)])


def test_initial_counts():
    fs = make_set()
    assert fs.counts() == {
        "total": 6, "detected": 0, "undetected": 6, "x_redundant": 0,
        "quarantined": 0,
    }
    assert fs.coverage() == 0.0


def test_transitions():
    fs = make_set()
    fs.records[0].mark_detected(BY_3V, 4)
    fs.records[1].mark_x_redundant()
    counts = fs.counts()
    assert counts["detected"] == 1
    assert counts["x_redundant"] == 1
    assert counts["undetected"] == 4
    assert fs.records[0].detected_by == BY_3V
    assert fs.records[0].detected_at == 4


def test_symbolic_candidates_include_x_redundant():
    fs = make_set()
    fs.records[0].mark_detected(BY_MOT, 1)
    fs.records[1].mark_x_redundant()
    candidates = fs.symbolic_candidates()
    assert fs.records[1] in candidates
    assert fs.records[0] not in candidates
    assert len(candidates) == 5


def test_detected_filter_by_strategy():
    fs = make_set()
    fs.records[0].mark_detected(BY_3V, 1)
    fs.records[1].mark_detected(BY_MOT, 2)
    assert len(fs.detected()) == 2
    assert [r.fault for r in fs.detected(BY_MOT)] == [fs.records[1].fault]


def test_record_lookup():
    fs = make_set()
    fault = fs.records[3].fault
    assert fs.record(fault) is fs.records[3]


def test_clone_is_independent():
    fs = make_set()
    fs.records[0].mark_detected(BY_3V, 1)
    other = fs.clone()
    assert other.counts() == fs.counts()
    other.records[1].mark_x_redundant()
    assert fs.counts()["x_redundant"] == 0
    assert other.records[0].detected_by == BY_3V


def test_coverage():
    fs = make_set(4)
    fs.records[0].mark_detected(BY_3V, 1)
    assert fs.coverage() == 0.25
    assert FaultSet([]).coverage() == 0.0


def test_iteration_and_len():
    fs = make_set(3)
    assert len(fs) == 3
    assert len(list(fs)) == 3
