"""sat_count / pick_assignment / size / collect (GC)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager
from repro.bdd.manager import FALSE, TRUE

N = 4
tables = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


def build(m, bits):
    f = FALSE
    for idx in range(1 << N):
        if (bits >> idx) & 1:
            term = TRUE
            for var in range(N):
                lit = (
                    m.mk_var(var)
                    if (idx >> var) & 1
                    else m.not_(m.mk_var(var))
                )
                term = m.and_(term, lit)
            f = m.or_(f, term)
    return f


@given(tables)
@settings(max_examples=60, deadline=None)
def test_sat_count_matches_popcount(bits):
    m = BddManager(num_vars=N)
    f = build(m, bits)
    assert m.sat_count(f, range(N)) == bin(bits).count("1")


def test_sat_count_with_extra_vars():
    m = BddManager(num_vars=3)
    f = m.mk_var(0)
    assert m.sat_count(f, range(3)) == 4


def test_sat_count_missing_support_raises():
    m = BddManager(num_vars=3)
    f = m.and_(m.mk_var(0), m.mk_var(2))
    with pytest.raises(ValueError):
        m.sat_count(f, [0, 1])


@given(tables)
@settings(max_examples=60, deadline=None)
def test_pick_assignment_satisfies(bits):
    m = BddManager(num_vars=N)
    f = build(m, bits)
    a = m.pick_assignment(f, variables=range(N))
    if bits == 0:
        assert a is None
    else:
        assert m.evaluate(f, a) == 1


def test_support():
    m = BddManager(num_vars=5)
    f = m.xor(m.mk_var(1), m.and_(m.mk_var(3), m.mk_var(4)))
    assert m.support(f) == {1, 3, 4}
    assert m.support(TRUE) == set()


def test_size_shared():
    m = BddManager(num_vars=3)
    f = m.xor(m.mk_var(0), m.mk_var(1))
    g = m.not_(f)
    # g shares nothing with f structurally except terminals in this
    # complement-edge-free representation, but size() must count the
    # union of reachable nodes without double counting
    both = m.size([f, g])
    assert both <= m.size(f) + m.size(g)
    assert m.size(FALSE) == 1
    assert m.size([FALSE, TRUE]) == 2


@given(tables, tables)
@settings(max_examples=40, deadline=None)
def test_collect_preserves_semantics(bits1, bits2):
    m = BddManager(num_vars=N)
    f = build(m, bits1)
    g = build(m, bits2)
    junk = build(m, (bits1 * 2654435761) % (1 << (1 << N)))  # dead root
    del junk
    translate = m.collect([f, g])
    f2, g2 = translate[f], translate[g]
    for assignment in itertools.product((0, 1), repeat=N):
        a = dict(enumerate(assignment))
        idx = sum(b << v for v, b in a.items())
        assert m.evaluate(f2, a) == (bits1 >> idx) & 1
        assert m.evaluate(g2, a) == (bits2 >> idx) & 1


def test_collect_shrinks_store():
    m = BddManager(num_vars=8)
    keep = m.and_(m.mk_var(0), m.mk_var(1))
    for i in range(2, 8):
        m.xor(m.mk_var(i), m.mk_var(i - 1))  # garbage
    before = m.num_nodes
    translate = m.collect([keep])
    assert m.num_nodes < before
    kept = translate[keep]
    assert m.evaluate(kept, {0: 1, 1: 1}) == 1
    # manager stays functional after a collection
    assert m.and_(kept, m.mk_var(5)) != kept


def test_collect_keeps_canonicity():
    m = BddManager(num_vars=4)
    f = m.or_(m.mk_var(0), m.mk_var(2))
    translate = m.collect([f])
    f2 = translate[f]
    assert m.or_(m.mk_var(0), m.mk_var(2)) == f2
