"""BDD manager basics: terminals, canonicity, node accounting."""

import pytest

from repro.bdd import FALSE, TRUE, BddManager, SpaceLimitExceeded


def test_terminals():
    m = BddManager()
    assert m.is_terminal(FALSE) and m.is_terminal(TRUE)
    assert m.const(0) == FALSE and m.const(1) == TRUE
    assert m.const_value(FALSE) == 0
    assert m.const_value(TRUE) == 1
    assert m.num_nodes == 2


def test_mk_var_canonical():
    m = BddManager(num_vars=3)
    a = m.mk_var(0)
    assert m.mk_var(0) == a  # unique table hit
    assert m.var(a) == 0
    assert m.low(a) == FALSE and m.high(a) == TRUE


def test_reduction_low_equals_high():
    m = BddManager(num_vars=2)
    a = m.mk_var(0)
    assert m.mk(1, a, a) == a  # redundant test dropped


def test_negation_involution():
    m = BddManager(num_vars=3)
    f = m.xor(m.mk_var(0), m.mk_var(2))
    assert m.not_(m.not_(f)) == f


def test_structural_equality_is_id_equality():
    m = BddManager(num_vars=3)
    a, b, c = (m.mk_var(i) for i in range(3))
    f1 = m.or_(m.and_(a, b), m.and_(a, c))
    f2 = m.and_(a, m.or_(b, c))  # distributivity
    assert f1 == f2


def test_constants_fold():
    m = BddManager(num_vars=1)
    a = m.mk_var(0)
    assert m.and_(a, FALSE) == FALSE
    assert m.and_(a, TRUE) == a
    assert m.or_(a, TRUE) == TRUE
    assert m.or_(a, FALSE) == a
    assert m.xor(a, a) == FALSE
    assert m.xnor(a, a) == TRUE
    assert m.implies(FALSE, a) == TRUE


def test_ite_basic_identities():
    m = BddManager(num_vars=2)
    a, b = m.mk_var(0), m.mk_var(1)
    assert m.ite(TRUE, a, b) == a
    assert m.ite(FALSE, a, b) == b
    assert m.ite(a, TRUE, FALSE) == a
    assert m.ite(a, b, b) == b


def test_node_limit_enforced():
    m = BddManager(num_vars=64, node_limit=10)
    with pytest.raises(SpaceLimitExceeded) as exc:
        f = TRUE
        for i in range(64):
            f = m.and_(f, m.mk_var(i))
    assert exc.value.limit == 10


def test_peak_nodes_tracks_growth():
    m = BddManager(num_vars=4)
    before = m.peak_nodes
    m.and_(m.mk_var(0), m.mk_var(1))
    assert m.peak_nodes > before


def test_fresh_var_extends_order():
    m = BddManager(num_vars=2)
    v = m.fresh_var()
    assert v == 2
    assert m.num_vars == 3


def test_mk_nvar():
    m = BddManager(num_vars=1)
    na = m.mk_nvar(0)
    assert na == m.not_(m.mk_var(0))


def test_and_or_many():
    m = BddManager(num_vars=4)
    vs = [m.mk_var(i) for i in range(4)]
    f = m.and_many(vs)
    assert m.evaluate(f, {0: 1, 1: 1, 2: 1, 3: 1}) == 1
    assert m.evaluate(f, {0: 1, 1: 0, 2: 1, 3: 1}) == 0
    g = m.or_many(vs)
    assert m.evaluate(g, {0: 0, 1: 0, 2: 0, 3: 0}) == 0
    assert m.evaluate(g, {0: 0, 1: 0, 2: 1, 3: 0}) == 1
