"""Pressure monitor mechanics: eviction, hook chaining, RSS surrender."""

import pytest

from repro.bdd import (
    BddManager,
    MemoryPressureExceeded,
    PressureConfig,
    PressureMonitor,
    SpaceLimitExceeded,
)


def populate_cache(manager, n_pairs=6):
    f = manager.const(1)
    for i in range(n_pairs):
        f = manager.and_(
            f, manager.xor(manager.mk_var(2 * i), manager.mk_var(2 * i + 1))
        )
    return f


# ----------------------------------------------------------------------
# manager primitives the monitor builds on
# ----------------------------------------------------------------------
def test_evict_cache_full_and_partial():
    manager = BddManager(num_vars=12)
    populate_cache(manager)
    full = manager.cache_size
    assert full > 0

    dropped = manager.evict_cache(0.5)
    assert dropped == full // 2
    assert manager.cache_size == full - dropped

    remaining = manager.cache_size
    dropped = manager.evict_cache(1.0)
    assert dropped == remaining
    assert manager.cache_size == 0


def test_eviction_never_changes_results():
    manager = BddManager(num_vars=12)
    f = populate_cache(manager)
    count_before = manager.sat_count(f)
    manager.evict_cache(1.0)
    g = populate_cache(manager)  # recompute with a cold cache
    assert g == f
    assert manager.sat_count(f) == count_before


def test_collect_suspends_alloc_hook():
    manager = BddManager(num_vars=8)
    f = populate_cache(manager, n_pairs=3)

    def exploding_hook():
        raise AssertionError("hook fired during collect()")

    manager.alloc_hook = exploding_hook
    translate, (f2,) = manager.collect([f], return_roots=True)
    assert translate[f] == f2
    # the hook is restored afterwards, not dropped
    assert manager.alloc_hook is exploding_hook


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
def test_monitor_evicts_cache_over_budget():
    manager = BddManager(num_vars=16)
    monitor = PressureMonitor(cache_budget=4, check_stride=1)
    monitor.attach(manager)
    populate_cache(manager, n_pairs=8)
    assert monitor.cache_evictions > 0
    assert monitor.entries_evicted > 0
    assert any(e["action"] == "evict" for e in monitor.events)
    assert monitor.accounting()["cache_evictions"] == monitor.cache_evictions


def test_monitor_chains_after_existing_hook():
    manager = BddManager(num_vars=16)
    fired = []
    manager.alloc_hook = lambda: fired.append(1)
    monitor = PressureMonitor(cache_budget=4, check_stride=1)
    monitor.attach(manager)
    populate_cache(manager, n_pairs=6)
    # the pre-existing (governor-style) hook kept firing on every
    # allocation while the monitor also did its work
    assert len(fired) > 0
    assert monitor.cache_evictions > 0


def test_hard_rss_surrenders_with_space_limit_subclass():
    manager = BddManager(num_vars=16)
    monitor = PressureMonitor(
        rss_soft=70, rss_hard=90, check_stride=1,
        rss_sampler=lambda: 100,
    )
    monitor.attach(manager)
    with pytest.raises(MemoryPressureExceeded) as exc:
        populate_cache(manager, n_pairs=8)
    # the surrender reuses the space-limit unwind path
    assert isinstance(exc.value, SpaceLimitExceeded)
    assert exc.value.limit == 90
    assert exc.value.requested == 100
    assert monitor.peak_rss == 100
    # the last cheap shot emptied the computed table first
    assert manager.cache_size == 0


def test_soft_rss_requests_frame_relief():
    manager = BddManager(num_vars=8, node_limit=10_000)
    monitor = PressureMonitor(
        rss_soft=50, rss_hard=1_000_000, check_stride=1,
        live_fraction=1.0, rss_sampler=lambda: 60,
    )
    monitor.attach(manager)
    populate_cache(manager, n_pairs=3)
    assert monitor._rss_pending

    class FakeSession:
        def __init__(self):
            self.compacted = 0

        def live_nodes(self):
            return 0

        def compact(self):
            self.compacted += 1
            return 5

        def reorder_rescue(self, window, passes):  # pragma: no cover
            return 0

    session = FakeSession()
    monitor.frame_relief(session)
    assert session.compacted == 1
    assert monitor.gc_runs == 1
    assert monitor.nodes_freed == 5
    assert not monitor._rss_pending  # consumed


def test_frame_relief_noop_without_trigger():
    manager = BddManager(num_vars=4, node_limit=10_000)
    monitor = PressureMonitor()
    monitor.attach(manager)

    class NoSession:
        def live_nodes(self):  # pragma: no cover
            raise AssertionError("relief ran without a trigger")

        compact = reorder_rescue = live_nodes

    monitor.frame_relief(NoSession())
    assert monitor.gc_runs == 0


def test_rescue_runs_when_gc_not_enough():
    manager = BddManager(num_vars=8, node_limit=200)
    # keep the store over the (tiny) watermark no matter what
    populate_cache(manager, n_pairs=2)
    monitor = PressureMonitor(
        gc_watermark=0.02, live_fraction=1.0, reorder_rescue=True,
        rescue_window=2, rescue_passes=1,
    )
    monitor.attach(manager)

    calls = []

    class StubbornSession:
        def live_nodes(self):
            return 0

        def compact(self):
            calls.append("gc")
            return 0

        def reorder_rescue(self, window, passes):
            calls.append(("rescue", window, passes))
            return 3

    monitor.frame_relief(StubbornSession())
    assert calls == ["gc", ("rescue", 2, 1)]
    assert monitor.reorder_rescues == 1


# ----------------------------------------------------------------------
# the config
# ----------------------------------------------------------------------
def test_config_json_round_trip():
    config = PressureConfig(
        gc_watermark=0.5, live_fraction=0.9, cache_budget=128,
        rss_budget=1 << 30, reorder_rescue=True, rescue_window=3,
        check_stride=64,
    )
    restored = PressureConfig.from_json(config.to_json())
    assert restored.to_json() == config.to_json()


def test_config_monitor_derives_watermarks():
    config = PressureConfig(
        rss_budget=1000, rss_soft_fraction=0.7, rss_hard_fraction=0.9,
        rss_sampler=lambda: 0,
    )
    monitor = config.monitor()
    assert monitor.rss_soft == 700
    assert monitor.rss_hard == 900


def test_config_validation():
    with pytest.raises(ValueError):
        PressureConfig(gc_watermark=0.0)
    with pytest.raises(ValueError):
        PressureConfig(live_fraction=1.5)
    with pytest.raises(ValueError):
        PressureConfig(rss_soft_fraction=0.9, rss_hard_fraction=0.5)
    with pytest.raises(ValueError):
        PressureConfig(check_stride=0)


def test_sampler_not_serialized():
    config = PressureConfig(rss_budget=100, rss_sampler=lambda: 1)
    assert "rss_sampler" not in config.to_json()
