"""StateVariables numbering schemes and DOT export."""

import pytest

from repro.bdd import BddManager, StateVariables, to_dot


def test_interleaved_scheme():
    sv = StateVariables(3, scheme="interleaved")
    assert sv.x_vars() == [0, 2, 4]
    assert sv.y_vars() == [1, 3, 5]
    assert sv.num_vars == 6
    assert sv.x_to_y() == {0: 1, 2: 3, 4: 5}


def test_blocked_scheme():
    sv = StateVariables(3, scheme="blocked")
    assert sv.x_vars() == [0, 1, 2]
    assert sv.y_vars() == [3, 4, 5]
    assert sv.x_to_y() == {0: 3, 1: 4, 2: 5}


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        StateVariables(2, scheme="diagonal")


def test_index_bounds():
    sv = StateVariables(2)
    with pytest.raises(IndexError):
        sv.x(2)
    with pytest.raises(IndexError):
        sv.y(-1)


def test_interleaving_keeps_pairs_adjacent():
    sv = StateVariables(4, scheme="interleaved")
    for i in range(4):
        assert sv.y(i) == sv.x(i) + 1


def test_dot_export():
    m = BddManager(num_vars=2)
    f = m.and_(m.mk_var(0), m.mk_var(1))
    text = to_dot(m, {"f": f}, var_names={0: "a", 1: "b"})
    assert "digraph" in text
    assert '"a"' in text and '"b"' in text
    assert "r_f" in text
    # dashed edge for the low branch
    assert "style=dashed" in text


def test_dot_export_single_root():
    m = BddManager(num_vars=1)
    text = to_dot(m, m.mk_var(0))
    assert "digraph" in text
