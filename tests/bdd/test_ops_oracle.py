"""Property-based check of every Boolean operation against a
truth-table oracle on random expressions (hypothesis)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager

NUM_VARS = 5


class Expr:
    """Tiny expression tree evaluated both as truth table and as BDD."""

    def __init__(self, op, args):
        self.op = op
        self.args = args

    def truth(self, assignment):
        if self.op == "var":
            return assignment[self.args[0]]
        if self.op == "const":
            return self.args[0]
        if self.op == "not":
            return 1 - self.args[0].truth(assignment)
        a = self.args[0].truth(assignment)
        b = self.args[1].truth(assignment)
        if self.op == "and":
            return a & b
        if self.op == "or":
            return a | b
        if self.op == "xor":
            return a ^ b
        if self.op == "xnor":
            return 1 - (a ^ b)
        if self.op == "implies":
            return (1 - a) | b
        raise AssertionError(self.op)

    def bdd(self, manager):
        if self.op == "var":
            return manager.mk_var(self.args[0])
        if self.op == "const":
            return manager.const(self.args[0])
        if self.op == "not":
            return manager.not_(self.args[0].bdd(manager))
        a = self.args[0].bdd(manager)
        b = self.args[1].bdd(manager)
        return getattr(
            manager,
            {"and": "and_", "or": "or_", "xor": "xor", "xnor": "xnor",
             "implies": "implies"}[self.op],
        )(a, b)


def exprs():
    leaves = st.one_of(
        st.integers(0, NUM_VARS - 1).map(lambda v: Expr("var", (v,))),
        st.integers(0, 1).map(lambda b: Expr("const", (b,))),
    )

    def extend(children):
        unary = children.map(lambda e: Expr("not", (e,)))
        binary = st.tuples(
            st.sampled_from(["and", "or", "xor", "xnor", "implies"]),
            children,
            children,
        ).map(lambda t: Expr(t[0], (t[1], t[2])))
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=12)


def all_assignments():
    for bits in itertools.product((0, 1), repeat=NUM_VARS):
        yield dict(enumerate(bits))


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_bdd_matches_truth_table(expr):
    manager = BddManager(num_vars=NUM_VARS)
    node = expr.bdd(manager)
    for assignment in all_assignments():
        assert manager.evaluate(node, assignment) == expr.truth(assignment)


@given(exprs(), exprs())
@settings(max_examples=100, deadline=None)
def test_canonicity(e1, e2):
    """Two expressions get the same node iff they are the same function."""
    manager = BddManager(num_vars=NUM_VARS)
    n1, n2 = e1.bdd(manager), e2.bdd(manager)
    semantically_equal = all(
        e1.truth(a) == e2.truth(a) for a in all_assignments()
    )
    assert (n1 == n2) == semantically_equal


@given(exprs())
@settings(max_examples=100, deadline=None)
def test_ite_shannon_expansion(expr):
    """f == ite(x, f|x=1, f|x=0) for every variable x."""
    manager = BddManager(num_vars=NUM_VARS)
    f = expr.bdd(manager)
    for var in range(NUM_VARS):
        hi = manager.restrict(f, var, 1)
        lo = manager.restrict(f, var, 0)
        assert manager.ite(manager.mk_var(var), hi, lo) == f
