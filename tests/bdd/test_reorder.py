"""Variable reordering: semantics preservation and size improvement."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.bdd.reorder import reorder, transfer, window_search


def dependent_pairs_function(manager, n_pairs, interleaved):
    """AND of XNOR pairs — the textbook order-sensitivity example:
    linear when partners are adjacent, exponential when separated."""
    f = manager.const(1)
    for i in range(n_pairs):
        if interleaved:
            a, b = 2 * i, 2 * i + 1
        else:
            a, b = i, n_pairs + i
        f = manager.and_(
            f, manager.xnor(manager.mk_var(a), manager.mk_var(b))
        )
    return f


def test_transfer_preserves_semantics():
    src = BddManager(num_vars=4)
    f = src.or_(
        src.and_(src.mk_var(0), src.mk_var(3)),
        src.xor(src.mk_var(1), src.mk_var(2)),
    )
    dst = BddManager(num_vars=4)
    var_map = {0: 3, 1: 2, 2: 1, 3: 0}  # reverse the order
    (g,) = transfer(src, [f], dst, var_map)
    for bits in itertools.product((0, 1), repeat=4):
        a_src = dict(enumerate(bits))
        a_dst = {var_map[v]: bit for v, bit in a_src.items()}
        assert src.evaluate(f, a_src) == dst.evaluate(g, a_dst)


def test_reorder_pairs_function_shrinks():
    n = 5
    bad = BddManager(num_vars=2 * n)
    f_bad = dependent_pairs_function(bad, n, interleaved=False)
    size_bad = bad.size(f_bad)
    # bring partners together: order a0,b0,a1,b1,...
    new_order = []
    for i in range(n):
        new_order += [i, n + i]
    good, (f_good,), var_map = reorder(bad, [f_bad], new_order)
    size_good = good.size(f_good)
    assert size_good < size_bad
    assert size_good <= 3 * n + 2  # linear in n
    # semantics preserved
    for bits in itertools.product((0, 1), repeat=2 * n):
        a_old = dict(enumerate(bits))
        a_new = {var_map[v]: bit for v, bit in a_old.items()}
        assert bad.evaluate(f_bad, a_old) == good.evaluate(f_good, a_new)


def test_reorder_rejects_bad_orders():
    m = BddManager(num_vars=3)
    f = m.and_(m.mk_var(0), m.mk_var(2))
    with pytest.raises(ValueError, match="duplicates"):
        reorder(m, [f], [0, 0, 2])
    with pytest.raises(ValueError, match="misses"):
        reorder(m, [f], [0, 1])


def test_window_search_finds_good_order():
    n = 4
    bad = BddManager(num_vars=2 * n)
    f = dependent_pairs_function(bad, n, interleaved=False)
    before = bad.size(f)
    new_manager, (g,), order = window_search(
        bad, [f], window=3, passes=4
    )
    after = new_manager.size([g])
    assert after <= before
    # the pairs function has huge blocked-order BDDs; the heuristic
    # must make real progress
    assert after < before


def test_window_search_identity_on_optimal_input():
    m = BddManager(num_vars=6)
    f = dependent_pairs_function(m, 3, interleaved=True)
    new_manager, (g,), order = window_search(m, [f], window=2)
    assert new_manager.size([g]) <= m.size(f)


def test_window_search_constant_function():
    m = BddManager(num_vars=4)
    manager, roots, order = window_search(m, [m.const(1)])
    assert roots == [1]
    assert order == []


def test_multiple_roots_share_after_transfer():
    src = BddManager(num_vars=4)
    f = src.xor(src.mk_var(0), src.mk_var(2))
    g = src.not_(f)
    dst, (f2, g2), _ = reorder(src, [f, g], [2, 0])
    assert dst.not_(f2) == g2  # canonicity carried over


def test_transfer_survives_deep_chains():
    # a conjunction of a few thousand literals is one long low-chain;
    # the recursive transfer used to hit Python's recursion limit here
    n = 3000
    src = BddManager(num_vars=n)
    f = src.and_many([src.mk_var(v) for v in range(n)])
    dst = BddManager(num_vars=n)
    (g,) = transfer(src, [f], dst, {})
    assert dst.size(g) == src.size(f) == n + 2
    assert dst.evaluate(g, {v: 1 for v in range(n)}) == 1
    assert dst.evaluate(g, {0: 0, **{v: 1 for v in range(1, n)}}) == 0


def test_block_window_search_improves_blocked_pairs():
    from repro.bdd.reorder import block_window_search

    n = 4
    bad = BddManager(num_vars=2 * n)
    f = dependent_pairs_function(bad, n, interleaved=False)
    before = bad.size(f)
    # singleton blocks make the block search equivalent to plain
    # window search, which must fix the blocked pairs layout
    blocks = [(v,) for v in range(2 * n)]
    found = block_window_search(bad, [f], blocks, window=3, passes=4)
    assert found is not None
    new_manager, (g,), var_map = found
    assert new_manager.size(g) < before
    # semantics preserved under the returned renumbering
    for bits in itertools.product((0, 1), repeat=2 * n):
        a_old = dict(enumerate(bits))
        a_new = {var_map[v]: bit for v, bit in a_old.items()}
        assert bad.evaluate(f, a_old) == new_manager.evaluate(g, a_new)


def test_block_window_search_keeps_blocks_contiguous():
    from repro.bdd.reorder import block_window_search

    n = 3
    m = BddManager(num_vars=2 * n)
    # partners straddle pair blocks: (0, 4) and (1, 5); moving whole
    # pairs can bring them closer, splitting a pair could do better
    # but is forbidden
    f = m.and_(
        m.xnor(m.mk_var(0), m.mk_var(4)),
        m.xnor(m.mk_var(1), m.mk_var(5)),
    )
    blocks = [(0, 1), (2, 3), (4, 5)]
    found = block_window_search(m, [f], blocks, window=3, passes=2)
    if found is None:
        return  # nothing beat the input — allowed
    _, _, var_map = found
    for a, b in blocks:
        # each pair stays adjacent and internally ordered
        assert var_map[b] == var_map[a] + 1


def test_block_window_search_none_on_optimal_input():
    from repro.bdd.reorder import block_window_search

    n = 3
    m = BddManager(num_vars=2 * n)
    f = dependent_pairs_function(m, n, interleaved=True)
    blocks = [(2 * i, 2 * i + 1) for i in range(n)]
    assert block_window_search(m, [f], blocks, window=2) is None


def test_block_window_search_skips_overflowing_candidates():
    from repro.bdd.reorder import block_window_search

    n = 4
    m = BddManager(num_vars=2 * n)
    f = dependent_pairs_function(m, n, interleaved=False)
    # a node limit no candidate can satisfy: every rebuild overflows,
    # is skipped, and the search reports no improvement
    found = block_window_search(
        m, [f], [(v,) for v in range(2 * n)], window=3, passes=2,
        node_limit=3,
    )
    assert found is None
