"""restrict / compose / rename / quantification laws."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, StateVariables, VariableOrderError
from repro.bdd.manager import FALSE, TRUE

N = 4


def random_function(manager, rng_bits):
    """Build a function from a 2^N-bit truth table encoded as int."""
    f = FALSE
    for idx in range(1 << N):
        if (rng_bits >> idx) & 1:
            term = TRUE
            for var in range(N):
                lit = (
                    manager.mk_var(var)
                    if (idx >> var) & 1
                    else manager.not_(manager.mk_var(var))
                )
                term = manager.and_(term, lit)
            f = manager.or_(f, term)
    return f


def evaluate_table(bits, assignment):
    idx = sum(assignment[v] << v for v in range(N))
    return (bits >> idx) & 1


tables = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


@given(tables, st.integers(0, N - 1), st.integers(0, 1))
@settings(max_examples=60, deadline=None)
def test_restrict_matches_semantics(bits, var, value):
    m = BddManager(num_vars=N)
    f = random_function(m, bits)
    g = m.restrict(f, var, value)
    for assignment in itertools.product((0, 1), repeat=N):
        a = dict(enumerate(assignment))
        a_fixed = dict(a)
        a_fixed[var] = value
        assert m.evaluate(g, a) == evaluate_table(bits, a_fixed)


@given(tables, tables, st.integers(0, N - 1))
@settings(max_examples=60, deadline=None)
def test_compose_matches_semantics(f_bits, g_bits, var):
    m = BddManager(num_vars=N)
    f = random_function(m, f_bits)
    g = random_function(m, g_bits)
    h = m.compose(f, var, g)
    for assignment in itertools.product((0, 1), repeat=N):
        a = dict(enumerate(assignment))
        a_sub = dict(a)
        a_sub[var] = evaluate_table(g_bits, a)
        assert m.evaluate(h, a) == evaluate_table(f_bits, a_sub)


def test_compose_with_var_is_rename():
    m = BddManager(num_vars=6)
    f = m.xor(m.mk_var(0), m.and_(m.mk_var(2), m.mk_var(4)))
    via_compose = f
    for old, new in ((4, 5), (2, 3), (0, 1)):
        via_compose = m.compose(via_compose, old, m.mk_var(new))
    via_rename = m.rename(f, {0: 1, 2: 3, 4: 5})
    assert via_compose == via_rename


@given(tables)
@settings(max_examples=40, deadline=None)
def test_interleaved_x_to_y_rename(bits):
    sv = StateVariables(N, scheme="interleaved")
    m = BddManager(num_vars=sv.num_vars)
    # build f over the x variables
    f = FALSE
    for idx in range(1 << N):
        if (bits >> idx) & 1:
            term = TRUE
            for i in range(N):
                var = m.mk_var(sv.x(i))
                lit = var if (idx >> i) & 1 else m.not_(var)
                term = m.and_(term, lit)
            f = m.or_(f, term)
    g = m.rename(f, sv.x_to_y())
    for assignment in itertools.product((0, 1), repeat=N):
        a = {sv.y(i): b for i, b in enumerate(assignment)}
        for i in range(N):
            a[sv.x(i)] = 0  # must be irrelevant after the rename
        idx = sum(b << i for i, b in enumerate(assignment))
        assert m.evaluate(g, a) == (bits >> idx) & 1


def test_blocked_x_to_y_rename():
    sv = StateVariables(3, scheme="blocked")
    m = BddManager(num_vars=sv.num_vars)
    f = m.and_(m.mk_var(sv.x(0)), m.mk_var(sv.x(2)))
    g = m.rename(f, sv.x_to_y())
    assert m.support(g) == {sv.y(0), sv.y(2)}


def test_rename_rejects_non_monotone():
    m = BddManager(num_vars=4)
    f = m.and_(m.mk_var(0), m.mk_var(1))
    with pytest.raises(VariableOrderError):
        m.rename(f, {0: 3, 1: 2})


def test_rename_rejects_order_violation():
    m = BddManager(num_vars=4)
    f = m.and_(m.mk_var(0), m.mk_var(1))
    # renaming 1 -> 3 while 0 stays put is monotone as a mapping but ok;
    # renaming 0 -> 2 while keeping 1 puts 2 below 1: violation
    with pytest.raises(VariableOrderError):
        m.rename(f, {0: 2})


@given(tables, st.integers(0, N - 1))
@settings(max_examples=40, deadline=None)
def test_quantification(bits, var):
    m = BddManager(num_vars=N)
    f = random_function(m, bits)
    ex = m.exists(f, [var])
    fa = m.forall(f, [var])
    assert ex == m.or_(m.restrict(f, var, 0), m.restrict(f, var, 1))
    assert fa == m.and_(m.restrict(f, var, 0), m.restrict(f, var, 1))
    assert m.support(ex).isdisjoint({var})
    # forall f -> f -> exists f
    assert m.implies(fa, f) == TRUE
    assert m.implies(f, ex) == TRUE


def test_quantify_many_vars():
    m = BddManager(num_vars=4)
    f = m.and_many([m.mk_var(i) for i in range(4)])
    assert m.exists(f, range(4)) == TRUE
    assert m.forall(f, range(4)) == FALSE
