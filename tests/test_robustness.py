"""Failure injection and edge-case robustness across module boundaries."""

import pytest

from repro.bdd import BddManager, SpaceLimitExceeded
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.iscas import s27
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import symbolic_fault_simulate
from repro.symbolic.hybrid import hybrid_fault_simulate


def test_empty_sequence_is_a_noop():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    fault_simulate_3v(compiled, [], fs)
    assert fs.counts()["detected"] == 0
    result = symbolic_fault_simulate(compiled, [], fs, strategy="MOT")
    assert result.frames_simulated == 0


def test_empty_fault_set():
    compiled = compile_circuit(s27())
    fs = FaultSet([])
    sequence = random_sequence_for(compiled, 5, seed=1)
    fault_simulate_3v(compiled, sequence, fs)
    hybrid_fault_simulate(compiled, sequence, fs)
    assert fs.counts()["total"] == 0


def test_circuit_without_flipflops():
    """Purely combinational circuits are a degenerate sequential case
    (m = 0): everything must still work, and with no unknown state the
    three strategies coincide with plain response comparison."""
    c = Circuit("comb")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", "AND", ["a", "b"])
    c.add_gate("o", "XOR", ["g", "a"])
    c.add_output("o")
    compiled = compile_circuit(c)
    faults, _ = collapse_faults(compiled)
    sequence = [(0, 0), (0, 1), (1, 0), (1, 1)]  # exhaustive
    detected = {}
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs,
                                strategy=strategy)
        detected[strategy] = {r.fault.key() for r in fs.detected()}
    assert detected["SOT"] == detected["rMOT"] == detected["MOT"]
    fs3 = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs3)
    assert {r.fault.key() for r in fs3.detected()} == detected["SOT"]


def test_circuit_without_primary_outputs():
    """No observation points: nothing is ever detectable."""
    c = Circuit("blind")
    c.add_input("a")
    c.add_dff("q", "d")
    c.add_gate("d", "XOR", ["q", "a"])
    compiled = compile_circuit(c)
    faults, _ = collapse_faults(compiled)
    sequence = [(1,), (0,), (1,)]
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs,
                                strategy=strategy)
        assert fs.counts()["detected"] == 0


def test_single_input_wire_circuit():
    c = Circuit("wire")
    c.add_input("a")
    c.add_gate("o", "BUF", ["a"])
    c.add_output("o")
    compiled = compile_circuit(c)
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    fault_simulate_3v(compiled, [(0,), (1,)], fs)
    assert fs.counts()["detected"] == fs.counts()["total"]


def test_manager_survives_space_limit():
    """After SpaceLimitExceeded the manager still answers queries on
    the nodes it already holds."""
    m = BddManager(num_vars=32, node_limit=20)
    f = m.and_(m.mk_var(0), m.mk_var(1))
    with pytest.raises(SpaceLimitExceeded):
        g = f
        for i in range(2, 32):
            g = m.and_(g, m.mk_var(i))
    assert m.evaluate(f, {0: 1, 1: 1}) == 1
    # reachable: node over var0, node over var1, TRUE, FALSE
    assert m.size(f) == 4


def test_zero_node_limit_rejected_gracefully():
    m = BddManager(num_vars=2, node_limit=2)
    with pytest.raises(SpaceLimitExceeded):
        m.mk_var(0)


def test_sequence_width_mismatch_symbolic():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    with pytest.raises((ValueError, IndexError)):
        symbolic_fault_simulate(compiled, [(0, 1)], fs)


def test_duplicate_fault_records_are_independent():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet([faults[0], faults[0]])
    sequence = random_sequence_for(compiled, 30, seed=1)
    fault_simulate_3v(compiled, sequence, fs)
    statuses = {r.status for r in fs.records}
    assert len(statuses) == 1  # both copies classified identically
