"""Public-API surface checks: everything advertised importable and in
__all__, docstrings on every public module."""

import importlib
import pkgutil

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


PACKAGES = [
    "repro",
    "repro.circuit",
    "repro.logic",
    "repro.bdd",
    "repro.faults",
    "repro.engines",
    "repro.xred",
    "repro.symbolic",
    "repro.baselines",
    "repro.circuits",
    "repro.sequences",
    "repro.experiments",
    "repro.analysis",
    "repro.atpg",
    "repro.diagnosis",
    "repro.runtime",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_every_module_has_a_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, package_name
    if hasattr(package, "__path__"):
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(
                f"{package_name}.{info.name}"
            )
            assert module.__doc__, module.__name__


def test_quickstart_from_docstring_runs():
    """The package docstring's quickstart must actually work."""
    from repro import (
        FaultSet,
        collapse_faults,
        compile_circuit,
        eliminate_x_redundant,
        fault_simulate_3v,
        hybrid_fault_simulate,
        random_sequence_for,
    )
    from repro.circuits import s27

    circuit = s27()
    compiled = compile_circuit(circuit)
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 30, seed=1)
    eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v(compiled, sequence, fault_set)
    hybrid_fault_simulate(compiled, sequence, fault_set, strategy="MOT")
    counts = fault_set.counts()
    assert counts["total"] == 32
    assert counts["detected"] > 0
