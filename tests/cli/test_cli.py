"""Command-line interface (driven in-process through main())."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run(capsys, "list")
    assert code == 0
    assert "s27" in out
    assert "stands in for s208.1" in out


def test_stats(capsys):
    code, out = run(capsys, "stats", "s27")
    assert code == 0
    assert "dffs: 3" in out


def test_stats_from_bench_file(tmp_path, capsys):
    from repro.circuits.iscas import S27_BENCH

    path = tmp_path / "c.bench"
    path.write_text(S27_BENCH)
    code, out = run(capsys, "stats", str(path))
    assert code == 0
    assert "gates: 10" in out


def test_faults(capsys):
    code, out = run(capsys, "faults", "s27")
    assert code == 0
    assert "32 collapsed stuck-at faults" in out
    assert "s-a-0" in out and "s-a-1" in out


def test_generate_to_file_and_simulate(tmp_path, capsys):
    seq_path = tmp_path / "t.seq"
    code, out = run(
        capsys, "generate", "s27", "--kind", "random",
        "--length", "30", "--seed", "2", "-o", str(seq_path),
    )
    assert code == 0
    assert seq_path.exists()
    code, out = run(
        capsys, "simulate", "s27", "--sequence", str(seq_path),
        "--strategy", "all",
    )
    assert code == 0
    assert "fault coverage report" in out


def test_generate_deterministic_stdout(capsys):
    code, out = run(
        capsys, "generate", "tlc", "--kind", "deterministic",
        "--length", "40",
    )
    assert code == 0
    assert "# deterministic sequence" in out


def test_generate_mot_atpg(tmp_path, capsys):
    out_path = tmp_path / "atpg.seq"
    code, out = run(
        capsys, "generate", "s27", "--kind", "mot-atpg",
        "--length", "16", "-o", str(out_path),
    )
    assert code == 0
    assert out_path.exists()
    # the generated file is loadable and well-formed
    from repro.sequences.io import load_sequence

    seq = load_sequence(out_path)
    assert all(len(v) == 4 for v in seq)


def test_simulate_json(capsys):
    code, out = run(
        capsys, "simulate", "s27", "--length", "20", "--strategy", "3v",
        "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["total_faults"] == 32


def test_xred(capsys):
    code, out = run(capsys, "xred", "ctr8", "--length", "50")
    assert code == 0
    assert "X-redundant" in out


def test_evaluate_pass_and_fail(tmp_path, capsys):
    from repro.circuit.compile import compile_circuit
    from repro.circuits.iscas import s27
    from repro.sequences.io import save_response, save_sequence
    from repro.sequences.random_seq import random_sequence_for
    from repro.symbolic.evaluation import generate_response

    compiled = compile_circuit(s27())
    sequence = random_sequence_for(compiled, 15, seed=3)
    seq_path = tmp_path / "t.seq"
    save_sequence(sequence, seq_path)
    response = generate_response(compiled, sequence,
                                 [0] * compiled.num_dffs)
    resp_path = tmp_path / "r.seq"
    save_response(response, resp_path)
    code, out = run(
        capsys, "evaluate", "s27", "--sequence", str(seq_path),
        "--response", str(resp_path),
    )
    assert code == 0 and "PASS" in out

    corrupted = [list(f) for f in response]
    corrupted[10][0] ^= 1
    corrupted[12][0] ^= 1
    save_response(corrupted, resp_path)
    code, out = run(
        capsys, "evaluate", "s27", "--sequence", str(seq_path),
        "--response", str(resp_path),
    )
    # a corrupted response is rejected unless it coincides with the
    # behaviour from some other initial state
    if code == 1:
        assert "FAIL" in out


def test_sync_found_and_not_found(capsys):
    code, out = run(capsys, "sync", "syncc6")
    assert code == 0
    assert "synchronizing sequence" in out
    code, out = run(capsys, "sync", "ctr8", "--length", "6")
    assert code == 1
    assert "no synchronizing sequence" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def _make_seq_and_faulty_response(tmp_path):
    import random

    from repro.circuit.compile import compile_circuit
    from repro.circuits.iscas import s27
    from repro.faults.collapse import collapse_faults
    from repro.sequences.io import save_response, save_sequence
    from repro.sequences.random_seq import random_sequence_for
    from repro.symbolic.evaluation import generate_response

    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 20, seed=8)
    seq_path = tmp_path / "t.seq"
    save_sequence(sequence, seq_path)
    rng = random.Random(8)
    state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
    response = generate_response(compiled, sequence, state,
                                 fault=faults[6])
    resp_path = tmp_path / "r.seq"
    save_response(response, resp_path)
    return seq_path, resp_path, faults[6], compiled


def test_diagnose(tmp_path, capsys):
    seq_path, resp_path, fault, compiled = \
        _make_seq_and_faulty_response(tmp_path)
    code, out = run(
        capsys, "diagnose", "s27", "--sequence", str(seq_path),
        "--response", str(resp_path), "--top", "40",
    )
    assert code == 0
    assert "candidate faults" in out
    assert fault.describe(compiled) in out


def test_compact(tmp_path, capsys):
    seq_path, _resp, _fault, _compiled = \
        _make_seq_and_faulty_response(tmp_path)
    out_path = tmp_path / "c.seq"
    code, out = run(
        capsys, "compact", "s27", "--sequence", str(seq_path),
        "--strategy", "MOT", "-o", str(out_path),
    )
    assert code == 0
    assert "compacted" in out
    assert out_path.exists()


def test_equiv(tmp_path, capsys):
    code, out = run(capsys, "equiv", "s27", "s27")
    assert code == 0 and "EQUIVALENT" in out
    # a mutated copy must be caught
    from repro.circuits.iscas import S27_BENCH

    path = tmp_path / "bad.bench"
    path.write_text(S27_BENCH.replace("G17 = NOT(G11)",
                                      "G17 = BUF(G11)"))
    code, out = run(capsys, "equiv", "s27", str(path))
    assert code == 1 and "DIFFERENT" in out


# ----------------------------------------------------------------------
# failure modes: bad inputs exit 2 with a one-line message
# ----------------------------------------------------------------------
def run_err(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_missing_bench_file_exits_2(capsys):
    code, out, err = run_err(capsys, "simulate", "no/such/file.bench")
    assert code == 2
    assert err.startswith("error:")
    assert err.strip().count("\n") == 0  # one line, no traceback


def test_unknown_circuit_exits_2(capsys):
    code, _out, err = run_err(capsys, "stats", "not-a-circuit")
    assert code == 2
    assert "unknown circuit" in err


def test_malformed_bench_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.bench"
    path.write_text("INPUT(a)\nTOTAL NONSENSE\n")
    code, _out, err = run_err(capsys, "faults", str(path))
    assert code == 2
    assert str(path) in err and "line 2" in err


def test_invalid_strategy_rejected():
    with pytest.raises(SystemExit) as exc:
        main(["simulate", "s27", "--strategy", "bogus"])
    assert exc.value.code == 2


def test_missing_sequence_file_exits_2(capsys):
    code, _out, err = run_err(
        capsys, "simulate", "s27", "--sequence", "missing.seq"
    )
    assert code == 2
    assert err.startswith("error:")


# ----------------------------------------------------------------------
# the campaign subcommand and the simulate runtime flags
# ----------------------------------------------------------------------
def test_campaign_and_resume(tmp_path, capsys):
    ck = tmp_path / "run.ckpt"
    code, out, _err = run_err(
        capsys, "campaign", "s27", "--length", "30",
        "--checkpoint", str(ck), "--checkpoint-every", "10",
    )
    assert code == 0
    assert "campaign: completed" in out
    assert ck.exists()
    code, out, _err = run_err(capsys, "campaign", "--resume", str(ck))
    assert code == 0
    assert "resumed from frame 30" in out


def test_campaign_without_circuit_or_resume_exits_2(capsys):
    code, _out, err = run_err(capsys, "campaign")
    assert code == 2
    assert "circuit" in err


def test_campaign_json_runtime_block(capsys):
    code, out, _err = run_err(
        capsys, "campaign", "s27", "--length", "20", "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["runtime"]["stopped"] == "completed"
    assert payload["runtime"]["exact"] is True
    assert payload["runtime"]["ladder"] == ["MOT", "rMOT", "SOT", "3v"]


def test_simulate_deadline_routes_through_campaign(capsys):
    code, out, _err = run_err(
        capsys, "simulate", "s27", "--length", "20",
        "--deadline", "0.0",
    )
    assert code == 0
    assert "campaign: deadline" in out


def test_simulate_checkpoint_flag(tmp_path, capsys):
    ck = tmp_path / "sim.ckpt"
    code, out, _err = run_err(
        capsys, "simulate", "s27", "--length", "20",
        "--checkpoint", str(ck),
    )
    assert code == 0
    assert "campaign: completed" in out
    assert ck.exists()


def test_simulate_deadline_rejects_strategy_all(capsys):
    code, _out, err = run_err(
        capsys, "simulate", "s27", "--deadline", "5",
        "--strategy", "all",
    )
    assert code == 2
    assert "strategy" in err


def test_resume_missing_checkpoint_exits_2(capsys):
    code, _out, err = run_err(
        capsys, "campaign", "--resume", "absent.ckpt"
    )
    assert code == 2
    assert "checkpoint" in err


def test_campaign_trace_and_metrics_flags(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    metrics = tmp_path / "metrics.json"
    code, out, err = run_err(
        capsys, "campaign", "s27", "--length", "16", "--seed", "3",
        "--trace", str(trace), "--metrics", str(metrics),
    )
    assert code == 0
    assert "campaign: completed" in out
    from repro.obs.schema import validate_trace_file

    assert validate_trace_file(trace) > 0
    first = json.loads(trace.read_text().splitlines()[0])
    assert first["kind"] == "trace-header"
    assert first["source"] == "campaign"
    assert first["circuit"] == "s27"
    payload = json.loads(metrics.read_text())
    assert payload["counters"]
    assert "wrote metrics" in err


def test_profile_command_reconciles(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    code, _out = run(
        capsys, "campaign", "s27", "--length", "16", "--seed", "3",
        "--trace", str(trace),
    )
    assert code == 0
    code, out = run(capsys, "profile", str(trace))
    assert code == 0
    assert "reconciliation: OK" in out
    assert "hot faults" in out
    code, out = run(capsys, "profile", str(trace), "--json", "--top", "3")
    assert code == 0
    profile = json.loads(out)
    assert profile["reconciliation"]["ok"] is True
    assert len(profile["hot_faults"]) <= 3


def test_profile_rejects_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "mystery"}\n')
    code, _out, err = run_err(capsys, "profile", str(bad))
    assert code == 2
    assert "trace line 1" in err


def test_simulate_trace_routes_through_campaign(tmp_path, capsys):
    trace = tmp_path / "sim.jsonl"
    code, out = run(
        capsys, "simulate", "s27", "--length", "16",
        "--trace", str(trace),
    )
    assert code == 0
    assert "campaign: completed" in out
    assert trace.exists()


def test_sharded_cli_trace_is_reproducible(tmp_path, capsys):
    traces = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        code, _out = run(
            capsys, "campaign", "s27", "--length", "16", "--seed", "3",
            "--workers", "0", "--trace", str(path),
        )
        assert code == 0
        traces.append(path.read_bytes())
    assert traces[0] == traces[1]
    first = json.loads(traces[0].decode().splitlines()[0])
    assert first["source"] == "fabric"
