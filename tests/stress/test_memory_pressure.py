"""Memory-pressure stress: blowup-prone circuits under tiny watermarks.

These are the CI memory-stress scenarios: a campaign on an
order-hostile circuit with watermarks far below anything sensible must
still complete, classify every fault, surface its relief work in the
accounting, and never detect a fault the unconstrained baseline does
not (relief is semantics-preserving; surrender is conservative).
"""

from repro.bdd import PressureConfig
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import nlfsr
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import run_campaign
from repro.sequences.random_seq import random_sequence_for


def classified(fault_set):
    counts = fault_set.counts()
    return (
        counts["detected"]
        + counts["undetected"]
        + counts["x_redundant"]
        + counts.get("quarantined", 0)
    ) == counts["total"]


def detected_keys(fault_set):
    return {r.fault.key() for r in fault_set.detected()}


def test_tight_watermarks_complete_and_stay_conservative():
    compiled = compile_circuit(nlfsr(9, seed=4))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 30, seed=5)

    baseline_set = FaultSet(faults)
    baseline = run_campaign(
        compiled, sequence, baseline_set, node_limit=200_000
    )
    assert baseline.stopped == "completed"

    pressured_set = FaultSet(faults)
    pressured = run_campaign(
        compiled, sequence, pressured_set,
        node_limit=3_000,
        pressure=PressureConfig(
            gc_watermark=0.2, live_fraction=1.0, cache_budget=128,
            reorder_rescue=True, check_stride=32,
        ),
    )
    assert pressured.stopped == "completed"
    assert classified(pressured_set)
    accounting = pressured.pressure
    assert accounting is not None
    assert accounting["events"] > 0
    assert accounting["gc_runs"] > 0
    assert pressured.runtime_summary()["pressure"] is accounting
    # conservatism: pressure can lose detections, never invent them
    assert detected_keys(pressured_set) <= detected_keys(baseline_set)


def test_hard_rss_surrender_degrades_through_the_ladder():
    # a sampler stuck above the hard watermark forces every symbolic
    # rung to surrender; the campaign must degrade conservatively
    # (per-fault "pressure" demotions when the blowup is attributable,
    # whole-group 3v fallbacks when it is not) and still finish
    compiled = compile_circuit(nlfsr(6, seed=2))
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 12, seed=3)
    result = run_campaign(
        compiled, sequence, fault_set,
        node_limit=10_000,
        pressure=PressureConfig(
            rss_budget=1_000, check_stride=8,
            rss_sampler=lambda: 1_000_000,
        ),
    )
    assert result.stopped == "completed"
    assert classified(fault_set)
    assert result.pressure["rss_surrenders"] > 0
    reasons = {entry[4] for entry in result.demotion_log}
    assert "pressure" in reasons or result.fallbacks > 0
    assert not result.exact  # surrender is a degradation


def test_worker_rss_cap_recycles_and_completes():
    from repro.runtime.fabric import run_sharded_campaign

    compiled = compile_circuit(nlfsr(10, seed=6))
    faults, _ = collapse_faults(compiled)
    subset = FaultSet([f for f in faults][:2])
    sequence = random_sequence_for(compiled, 400, seed=7)
    # a 1-byte cap condemns every worker at its first heartbeat; the
    # retry -> bisect -> quarantine chain must terminate the campaign
    # instead of looping on respawns
    result = run_sharded_campaign(
        compiled, sequence, subset,
        workers=1, shard_size=2, max_retries=1,
        worker_rss_cap=1,
        heartbeat_timeout=30.0, shard_timeout=30.0,
    )
    fabric = result.runtime_summary()["fabric"]
    assert fabric["rss_recycles"] >= 1
    assert fabric["peak_worker_rss"] > 1
    assert result.stopped == "completed"
    assert subset.counts()["quarantined"] == 2
