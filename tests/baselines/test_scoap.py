"""SCOAP testability analysis."""

import math

import pytest

from repro.baselines.scoap import (
    INF,
    controllabilities,
    observabilities,
    scoap_x_redundant,
)
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.generators import counter, shift_register
from repro.circuits.iscas import s27
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.status import FaultSet
from repro.faults.universe import enumerate_faults
from repro.sequences.random_seq import random_sequence_for


def test_primary_inputs_fully_controllable():
    compiled = compile_circuit(s27())
    cc = controllabilities(compiled)
    for sig in compiled.pis:
        assert cc[sig] == (1, 1)


def test_and_gate_rules():
    c = Circuit("and")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", "AND", ["a", "b"])
    c.add_output("g")
    compiled = compile_circuit(c)
    cc = controllabilities(compiled)
    g = compiled.index["g"]
    assert cc[g] == (2, 3)  # CC0 = min+1, CC1 = sum+1


def test_const_gate_controllability():
    c = Circuit("const")
    c.add_gate("one", "CONST1", [])
    c.add_gate("o", "BUF", ["one"])
    c.add_output("o")
    compiled = compile_circuit(c)
    cc = controllabilities(compiled)
    one = compiled.index["one"]
    assert cc[one][0] == INF  # cannot make it 0
    assert cc[one][1] == 1


def test_uncontrollable_counter_state():
    """A counter without reset: state bits are XOR-fed from themselves
    only, so no value is ever *establishable* from the inputs."""
    compiled = compile_circuit(counter(4))
    cc = controllabilities(compiled)
    for q in compiled.ppis:
        assert cc[q] == (INF, INF)


def test_shift_register_fully_controllable_and_observable():
    compiled = compile_circuit(shift_register(4))
    cc = controllabilities(compiled)
    co, _ = observabilities(compiled, cc)
    for q in compiled.ppis:
        assert cc[q][0] != INF and cc[q][1] != INF
        assert co[q] != INF
    assert not scoap_x_redundant(compiled, enumerate_faults(compiled))


def test_unobservable_net():
    c = Circuit("dangle")
    c.add_input("a")
    c.add_gate("dead", "NOT", ["a"])
    c.add_gate("o", "BUF", ["a"])
    c.add_output("o")
    compiled = compile_circuit(c)
    co, _ = observabilities(compiled)
    assert co[compiled.index["dead"]] == INF
    red = scoap_x_redundant(compiled, enumerate_faults(compiled))
    from repro.faults.model import Fault, STEM

    dead = compiled.index["dead"]
    assert Fault((STEM, dead), 0).key() in red
    assert Fault((STEM, dead), 1).key() in red


@pytest.mark.parametrize("factory", [s27, lambda: counter(6),
                                     lambda: shift_register(5)])
def test_scoap_redundant_faults_truly_undetectable(factory):
    """SCOAP-X-redundancy claims 'no sequence detects this fault under
    three-valued logic' — so no random sequence may detect one."""
    compiled = compile_circuit(factory())
    faults = enumerate_faults(compiled)
    red = scoap_x_redundant(compiled, faults)
    victims = [f for f in faults if f.key() in red]
    if not victims:
        pytest.skip("no SCOAP-redundant faults in this circuit")
    for seed in range(3):
        sequence = random_sequence_for(compiled, 30, seed=seed)
        fs = FaultSet(victims)
        fault_simulate_3v(compiled, sequence, fs)
        assert fs.counts()["detected"] == 0


def test_idxred_exploits_the_given_sequence():
    """Neither identifier subsumes the other: SCOAP reasons globally
    about controllability (any sequence), ID_X-red about the concrete
    sequence with FFR-local observability.  What ID_X-red must win on
    is sequence-specific redundancy: a perfectly testable fault whose
    activation value simply never occurs in *this* sequence."""
    from repro.faults.model import Fault, STEM
    from repro.xred.idxred import id_x_red

    c = Circuit("seqred")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", "AND", ["a", "b"])
    c.add_gate("o", "BUF", ["g"])
    c.add_output("o")
    compiled = compile_circuit(c)
    faults = enumerate_faults(compiled)
    # g never goes to 1 under this sequence -> s-a-0 at g never
    # activated, even though the fault is perfectly testable in general
    sequence = [(0, 1), (1, 0), (0, 0)]
    g_sa0 = Fault((STEM, compiled.index["g"]), 0)
    assert g_sa0.key() not in scoap_x_redundant(compiled, faults)
    assert id_x_red(compiled, sequence, faults).is_x_redundant(g_sa0)
    # with an activating sequence ID_X-red keeps the fault too
    active = [(1, 1), (0, 0)]
    assert not id_x_red(compiled, active, faults).is_x_redundant(g_sa0)
