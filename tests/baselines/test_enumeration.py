"""Explicit-enumeration baseline: internal consistency and hand-checked
cases."""

import pytest

from repro.baselines.enumeration import (
    all_states,
    mot_detectable,
    response_set,
    rmot_detectable,
    simulate_concrete,
    sot_detectable,
    well_defined_positions,
)
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.figures import figure3_circuit
from repro.faults.model import stem_fault
from repro.faults.universe import enumerate_faults
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit


def test_all_states_count():
    assert len(all_states(3)) == 8
    assert len(set(all_states(3))) == 8


def test_simulate_concrete_matches_hand_computation():
    c = Circuit("toggler")
    c.add_input("en")
    c.add_dff("q", "nq")
    c.add_gate("nq", "XOR", ["q", "en"])
    c.add_gate("o", "BUF", ["q"])
    c.add_output("o")
    compiled = compile_circuit(c)
    seq = [(1,), (1,), (0,), (1,)]
    # start at 0: outputs show the PRE-frame state
    assert simulate_concrete(compiled, seq, (0,)) == \
        ((0,), (1,), (0,), (0,))
    assert simulate_concrete(compiled, seq, (1,)) == \
        ((1,), (0,), (1,), (1,))


def test_response_set_size_bounded_by_states():
    compiled = compile_circuit(random_circuit(1, num_dffs=3))
    seq = random_sequence_for(compiled, 8, seed=1)
    responses = response_set(compiled, seq)
    assert 1 <= len(responses) <= 8


def test_figure3_oracle():
    circuit, net, value, sequence = figure3_circuit()
    compiled = compile_circuit(circuit)
    fault = stem_fault(compiled, net, value)
    assert mot_detectable(compiled, sequence, fault)
    assert not sot_detectable(compiled, sequence, fault)
    assert not rmot_detectable(compiled, sequence, fault)


@pytest.mark.parametrize("seed", range(8))
def test_detection_hierarchy(seed):
    """SOT-detectable => rMOT-detectable => MOT-detectable."""
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=3, num_gates=12)
    )
    seq = random_sequence_for(compiled, 8, seed=seed)
    for fault in enumerate_faults(compiled)[:40]:
        sot = sot_detectable(compiled, seq, fault)
        rmot = rmot_detectable(compiled, seq, fault)
        mot = mot_detectable(compiled, seq, fault)
        if sot:
            assert rmot, fault
        if rmot:
            assert mot, fault


def test_well_defined_positions_really_are():
    compiled = compile_circuit(random_circuit(5, num_dffs=3))
    seq = random_sequence_for(compiled, 6, seed=5)
    positions = well_defined_positions(compiled, seq)
    for p in all_states(compiled.num_dffs):
        resp = simulate_concrete(compiled, seq, p)
        for (t, i), b in positions.items():
            assert resp[t][i] == b


def test_refuses_large_state_spaces():
    from repro.circuits.generators import counter

    compiled = compile_circuit(counter(20))
    with pytest.raises(ValueError, match="refused"):
        response_set(compiled, [(1,)])


def test_undetectable_fault_stays_undetectable():
    # stuck-at matching a constant driver is a true redundancy
    c = Circuit("red")
    c.add_input("a")
    c.add_gate("one", "CONST1", [])
    c.add_gate("o", "AND", ["a", "one"])
    c.add_output("o")
    compiled = compile_circuit(c)
    fault = stem_fault(compiled, "one", 1)
    seq = [(0,), (1,), (0,), (1,)]
    assert not mot_detectable(compiled, seq, fault)
