"""Test-sequence compaction."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.generators import sync_controller
from repro.circuits.iscas import s27
from repro.faults.collapse import collapse_faults
from repro.sequences.compaction import (
    compact_sequence,
    detected_set,
    truncate_to_last_detection,
)
from repro.sequences.random_seq import random_sequence_for


@pytest.mark.parametrize("strategy", ["SOT", "rMOT", "MOT"])
def test_compaction_preserves_coverage(strategy):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 30, seed=1)
    result = compact_sequence(compiled, sequence, faults,
                              strategy=strategy)
    original = set(detected_set(compiled, sequence, faults, strategy))
    compacted = set(
        detected_set(compiled, result.compacted, faults, strategy)
    )
    assert original <= compacted
    assert result.compacted_length <= result.original_length


def test_truncation_cuts_dead_suffix():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 20, seed=2)
    detections = detected_set(compiled, sequence, faults, "MOT")
    truncated, _ = truncate_to_last_detection(
        compiled, sequence, faults, "MOT"
    )
    if detections:
        assert len(truncated) == max(detections.values())
    else:
        assert truncated == []


def test_empty_when_nothing_detected():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    # the all-zero vector repeated rarely detects anything on s27
    sequence = [(0, 0, 0, 0)]
    result = compact_sequence(compiled, sequence, faults)
    if not result.detected:
        assert result.compacted == []


def test_greedy_can_be_disabled():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 25, seed=3)
    no_greedy = compact_sequence(compiled, sequence, faults,
                                 greedy=False)
    assert no_greedy.removals == []


def test_max_trials_bounds_work():
    compiled = compile_circuit(sync_controller(4))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 20, seed=4)
    result = compact_sequence(compiled, sequence, faults, max_trials=3)
    assert len(result.removals) <= 3


def test_compaction_result_repr():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 15, seed=5)
    result = compact_sequence(compiled, sequence, faults)
    assert "->" in repr(result)
