"""Test-sequence generators."""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.generators import shift_register, traffic_light
from repro.circuits.iscas import s27
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.deterministic import deterministic_sequence
from repro.sequences.random_seq import random_sequence, random_sequence_for


def test_random_sequence_shape():
    seq = random_sequence(3, 10, seed=1)
    assert len(seq) == 10
    assert all(len(v) == 3 for v in seq)
    assert all(bit in (0, 1) for v in seq for bit in v)


def test_random_sequence_deterministic_per_seed():
    assert random_sequence(4, 20, seed=7) == random_sequence(4, 20, seed=7)
    assert random_sequence(4, 20, seed=7) != random_sequence(4, 20, seed=8)


def test_random_sequence_for_accepts_both_views():
    circuit = s27()
    compiled = compile_circuit(circuit)
    a = random_sequence_for(circuit, 5, seed=1)
    b = random_sequence_for(compiled, 5, seed=1)
    assert a == b
    assert all(len(v) == 4 for v in a)


def test_deterministic_sequence_detects_fast():
    compiled = compile_circuit(shift_register(6))
    faults, _ = collapse_faults(compiled)
    seq = deterministic_sequence(compiled, faults, seed=1)
    fs = FaultSet(faults)
    fault_simulate_3v(compiled, seq, fs)
    # a shift register is fully testable; the greedy sequence gets all
    assert fs.counts()["detected"] == len(faults)
    # and it is much shorter than the random default workload
    assert len(seq) < 100


def test_deterministic_sequence_is_reproducible():
    compiled = compile_circuit(traffic_light())
    faults, _ = collapse_faults(compiled)
    a = deterministic_sequence(compiled, faults, seed=3)
    b = deterministic_sequence(compiled, faults, seed=3)
    assert a == b


def test_deterministic_sequence_does_not_mutate_inputs():
    compiled = compile_circuit(traffic_light())
    faults, _ = collapse_faults(compiled)
    fs = FaultSet(faults)
    deterministic_sequence(compiled, fs, seed=1)
    assert fs.counts()["detected"] == 0  # statuses untouched


def test_deterministic_sequence_respects_max_length():
    compiled = compile_circuit(traffic_light())
    faults, _ = collapse_faults(compiled)
    seq = deterministic_sequence(compiled, faults, max_length=7, seed=1)
    assert len(seq) <= 7


def test_deterministic_beats_random_at_equal_length():
    """The point of a fault-oriented sequence: at the same length it
    covers at least as much as a random one (on an initialisable
    circuit)."""
    compiled = compile_circuit(traffic_light())
    faults, _ = collapse_faults(compiled)
    det = deterministic_sequence(compiled, faults, seed=2)
    rnd = random_sequence_for(compiled, len(det), seed=2)
    fs_det = FaultSet(faults)
    fault_simulate_3v(compiled, det, fs_det)
    fs_rnd = FaultSet(faults)
    fault_simulate_3v(compiled, rnd, fs_rnd)
    assert fs_det.counts()["detected"] >= fs_rnd.counts()["detected"]
