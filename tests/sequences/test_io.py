"""Sequence/response file format."""

import pytest

from repro.logic import threeval as tv
from repro.sequences.io import (
    dumps_sequence,
    load_response,
    load_sequence,
    loads_sequence,
    save_response,
    save_sequence,
)


def test_roundtrip_text():
    seq = [(1, 0, 1), (0, 0, 0), (1, 1, 1)]
    assert loads_sequence(dumps_sequence(seq)) == seq


def test_roundtrip_file(tmp_path):
    seq = [(1, 0), (0, 1)]
    path = tmp_path / "t.seq"
    save_sequence(seq, path, comment="two vectors\nfor a test")
    assert load_sequence(path) == seq
    text = path.read_text()
    assert text.startswith("# two vectors\n# for a test\n")


def test_comments_and_blank_lines_ignored():
    text = "# header\n\n10  # trailing\n\n01\n"
    assert loads_sequence(text) == [(1, 0), (0, 1)]


def test_x_only_when_allowed():
    with pytest.raises(ValueError, match="X not allowed"):
        loads_sequence("1X\n")
    assert loads_sequence("1X\n", allow_x=True) == [(1, tv.X)]


def test_width_mismatch_rejected():
    with pytest.raises(ValueError, match="width"):
        loads_sequence("10\n101\n")


def test_bad_character_rejected():
    with pytest.raises(ValueError):
        loads_sequence("12\n")


def test_response_roundtrip(tmp_path):
    response = [[1, 0], [0, 0], [1, 1]]
    path = tmp_path / "r.seq"
    save_response(response, path)
    assert load_response(path) == response
