"""Coverage reports."""

import json

from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.reporting import coverage_report
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.hybrid import hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant


def full_run():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 40, seed=1)
    eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v(compiled, sequence, fault_set)
    result = hybrid_fault_simulate(compiled, sequence, fault_set,
                                   strategy="MOT")
    return compiled, fault_set, sequence, result


def test_summary_consistency():
    compiled, fault_set, sequence, result = full_run()
    report = coverage_report(compiled, fault_set, sequence,
                             exact_mot=result.exact)
    s = report.summary()
    assert s["total_faults"] == 32
    assert (
        s["conventional_detected"] + s["symbolic_extra_detected"]
        == s["detected"]
    )
    assert sum(s["detected_by"].values()) == s["detected"]
    assert s["sequence_length"] == 40
    assert 0.0 <= s["coverage"] <= 1.0


def test_render_mentions_the_exactness_guarantee():
    compiled, fault_set, sequence, result = full_run()
    report = coverage_report(compiled, fault_set, sequence,
                             exact_mot=result.exact)
    text = report.render()
    assert "fault coverage report" in text
    assert "by 3-valued SOT" in text
    if result.exact:
        assert "PROVED undetectable" in text


def test_json_roundtrip():
    compiled, fault_set, sequence, result = full_run()
    report = coverage_report(compiled, fault_set, sequence)
    payload = json.loads(report.to_json())
    assert payload["total_faults"] == 32
    assert len(payload["faults"]) == 32
    statuses = {f["status"] for f in payload["faults"]}
    assert statuses <= {"detected", "undetected", "x-redundant"}
    detected = [f for f in payload["faults"] if f["status"] == "detected"]
    assert all(f["detected_at"] is not None for f in detected)
