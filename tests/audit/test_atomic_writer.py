"""write_json_atomic: no torn tails, no stray temp files."""

import json
import os

import pytest

from repro.runtime import write_json_atomic


def test_round_trip(tmp_path):
    path = tmp_path / "summary.json"
    payload = {"detected": 11, "faults": [["stem", 0], ["branch", 2, 1]]}
    write_json_atomic(str(path), payload)
    assert json.loads(path.read_text()) == payload
    # pretty-printed with a trailing newline, keys sorted
    assert path.read_text().endswith("}\n")
    assert os.listdir(tmp_path) == ["summary.json"]


def test_failed_write_preserves_previous_contents(tmp_path):
    path = tmp_path / "summary.json"
    write_json_atomic(str(path), {"ok": True})
    before = path.read_text()

    with pytest.raises(TypeError):
        write_json_atomic(str(path), {"bad": object()})

    # the old file survives byte-identical and the temp file is gone
    assert path.read_text() == before
    assert os.listdir(tmp_path) == ["summary.json"]


def test_overwrite_replaces_whole_file(tmp_path):
    path = tmp_path / "summary.json"
    write_json_atomic(str(path), {"long": "x" * 4096})
    write_json_atomic(str(path), {"short": 1})
    assert json.loads(path.read_text()) == {"short": 1}
