"""Round-trip properties of the witness-replay audit.

Hypothesis explores the circuit space (the same generator as the
engine property tests) and checks the load-bearing soundness claim:
an honest campaign is NEVER refuted by its own audit.  Every audited
detection must replay concretely — two runs of the independent
three-valued engine, with and without the fault — and diverge at an
observed output no later than the claimed detection frame.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.audit import (
    CONFIRMED,
    EXTRACTION_FAILED,
    REFUTED,
    AuditOptions,
    run_audit,
)
from repro.circuit.compile import compile_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import BY_MOT, BY_RMOT, FaultSet
from repro.runtime import run_campaign
from tests.util import random_circuit


@st.composite
def campaign_setups(draw):
    seed = draw(st.integers(0, 5000))
    compiled = compile_circuit(
        random_circuit(
            seed,
            num_pis=draw(st.integers(1, 3)),
            num_dffs=draw(st.integers(1, 3)),
            num_gates=draw(st.integers(3, 10)),
            num_pos=draw(st.integers(1, 2)),
        )
    )
    rng = random_module.Random(draw(st.integers(0, 5000)))
    length = draw(st.integers(3, 8))
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis)
        for _ in range(length)
    ]
    return compiled, sequence


@settings(max_examples=25, deadline=None)
@given(campaign_setups(), st.integers(0, 100))
def test_full_audit_never_refutes_honest_campaign(setup, audit_seed):
    compiled, sequence = setup
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    result = run_campaign(compiled, sequence, fault_set)

    report = run_audit(
        compiled,
        sequence,
        fault_set,
        options=AuditOptions(mode="full", seed=audit_seed),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed",
        exact=result.exact,
    )

    counts = report.counts()
    assert counts[REFUTED] == 0, report.render()
    assert counts[EXTRACTION_FAILED] == 0, report.render()
    assert report.ok

    for finding in report.findings:
        if finding.side != "detected":
            continue
        # a clean, completed campaign leaves nothing inconclusive on
        # the detected side: every verdict replays
        assert finding.classification == CONFIRMED, finding.to_json()
        if finding.detected_by in (BY_MOT, BY_RMOT):
            # the exact rebuild may collapse earlier than the claimed
            # frame (the campaign rung was conservative), never later
            assert finding.audited_at <= finding.detected_at


@settings(max_examples=10, deadline=None)
@given(campaign_setups(), st.integers(0, 100))
def test_audit_is_deterministic(setup, audit_seed):
    compiled, sequence = setup
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    result = run_campaign(compiled, sequence, fault_set)

    def one():
        report = run_audit(
            compiled,
            sequence,
            fault_set,
            options=AuditOptions(mode="sample", seed=audit_seed,
                                 sample_detected=4,
                                 sample_undetected=4),
            strategy=result.ladder[0] if result.ladder else "MOT",
            complete=result.stopped == "completed",
            exact=result.exact,
        )
        return report.to_json()

    assert one() == one()
