"""The audit must catch tampered verdicts.

The refuted classification is only reachable by deliberate corruption:
a detection claim the independent engines cannot reproduce, or (on an
exact, completed campaign) an erased detection the exact rebuild still
finds.  These tests tamper on purpose and demand refutation — the
exact mirror image of the round-trip property.
"""

import json

import pytest

from repro.audit import AuditOptions, run_audit
from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.cli import main
from repro.faults.collapse import collapse_faults
from repro.faults.status import (
    BY_MOT,
    DETECTED,
    UNDETECTED,
    FaultSet,
)
from repro.runtime import run_campaign
from repro.runtime.checkpoint import record_crc
from repro.sequences.random_seq import random_sequence_for


@pytest.fixture(scope="module")
def s27():
    compiled = compile_circuit(get_circuit("s27"))
    sequence = random_sequence_for(compiled, 40, seed=7)
    return compiled, sequence


def fresh_campaign(s27):
    compiled, sequence = s27
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    result = run_campaign(compiled, sequence, fault_set)
    assert result.exact, "test premise: s27 MOT campaign runs exactly"
    return fault_set, result


def run_full_audit(s27, fault_set, result, quarantine=False):
    compiled, sequence = s27
    return run_audit(
        compiled,
        sequence,
        fault_set,
        options=AuditOptions(mode="full"),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed",
        exact=True,
        quarantine=quarantine,
    )


def test_fake_detection_is_refuted(s27):
    fault_set, result = fresh_campaign(s27)
    victim = next(r for r in fault_set if r.status == UNDETECTED)
    victim.mark_detected(BY_MOT, 3)

    report = run_full_audit(s27, fault_set, result, quarantine=True)

    assert not report.ok
    assert victim.fault.key() in report.refuted_keys()
    # refuted faults are quarantined out of the coverage figures
    assert victim.status not in (DETECTED, UNDETECTED)


def test_erased_detection_is_refuted(s27):
    fault_set, result = fresh_campaign(s27)
    victim = next(r for r in fault_set if r.status == DETECTED)
    victim.status = UNDETECTED
    victim.detected_by = None
    victim.detected_at = None

    report = run_full_audit(s27, fault_set, result)

    assert not report.ok
    assert victim.fault.key() in report.refuted_keys()


def test_honest_campaign_audits_clean(s27):
    fault_set, result = fresh_campaign(s27)
    report = run_full_audit(s27, fault_set, result)
    assert report.ok
    assert report.refuted_keys() == []


def test_cli_audit_flags_corrupted_checkpoint(s27, tmp_path, capsys):
    path = tmp_path / "run.ckpt"
    rc = main([
        "campaign", "s27", "--length", "40", "--seed", "7",
        "--checkpoint", str(path),
    ])
    capsys.readouterr()
    assert rc == 0

    # flip one undetected fault to "detected" in every snapshot record,
    # re-sealing each record's CRC: a well-formed but semantically wrong
    # checkpoint is exactly what the audit (not the CRC layer) catches
    corrupted = []
    flipped = False
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "checkpoint":
            for entry in record["faults"]:
                if entry["state"][0] == "undetected":
                    entry["state"] = ["detected", "MOT", 3]
                    flipped = True
                    break
        record.pop("crc", None)
        body = json.dumps(record, sort_keys=True)
        corrupted.append(f'{body[:-1]}, "crc": {record_crc(body)}}}')
    assert flipped, "campaign left no undetected fault to corrupt"
    bad = tmp_path / "bad.ckpt"
    bad.write_text("\n".join(corrupted) + "\n")

    rc = main(["audit", str(bad)])
    out = capsys.readouterr().out
    assert rc == 4
    assert "REFUTED" in out

    # the untampered checkpoint still audits clean through the CLI
    rc = main(["audit", str(path)])
    capsys.readouterr()
    assert rc == 0
