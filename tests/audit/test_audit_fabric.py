"""Sharded audits are byte-identical to serial; partial audits resume.

The fabric shards only the detected-side replays; every finding is
computed from the same seeded streams regardless of which worker runs
it, so serial, inline-fabric (workers=0) and multi-process (workers=2)
audits must produce the *same bytes* — not merely the same verdicts.
"""

import json

import pytest

from repro.audit import AuditOptions, run_audit
from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import run_campaign
from repro.sequences.random_seq import random_sequence_for


@pytest.fixture(scope="module")
def audited():
    compiled = compile_circuit(get_circuit("ctr8"))
    sequence = random_sequence_for(compiled, 30, seed=11)
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    result = run_campaign(compiled, sequence, fault_set)
    return compiled, sequence, fault_set, result


def audit_bytes(audited, options=None, **kw):
    compiled, sequence, fault_set, result = audited
    report = run_audit(
        compiled,
        sequence,
        fault_set,
        options=options or AuditOptions(mode="full", seed=3),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed",
        exact=result.exact,
        **kw,
    )
    return json.dumps(report.to_json(), sort_keys=True)


def test_sharded_audit_matches_serial(audited):
    serial = audit_bytes(audited)
    inline = audit_bytes(audited, workers=0)
    sharded = audit_bytes(audited, workers=2)
    assert serial == inline
    assert serial == sharded


def test_audit_checkpoint_resume(audited, tmp_path):
    path = str(tmp_path / "audit.ckpt")
    options = AuditOptions(mode="full", seed=3, checkpoint_path=path)
    expected = audit_bytes(audited, options=options)

    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert json.loads(lines[0])["type"] == "audit-header"
    assert len(lines) > 5, "need enough findings to truncate"

    # keep the header and three findings; end on a torn partial line,
    # as a SIGKILL mid-write would
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:4]) + "\n")
        handle.write(lines[4][: len(lines[4]) // 2])

    resumed = audit_bytes(
        audited,
        options=AuditOptions(mode="full", seed=3, checkpoint_path=path),
    )
    assert resumed == expected


def test_resume_refuses_mismatched_knobs(audited, tmp_path):
    from repro.runtime import CheckpointError

    path = str(tmp_path / "audit.ckpt")
    audit_bytes(
        audited,
        options=AuditOptions(mode="full", seed=3, checkpoint_path=path),
    )
    with pytest.raises(CheckpointError):
        audit_bytes(
            audited,
            options=AuditOptions(mode="full", seed=4,
                                 checkpoint_path=path),
        )
