"""Job spec validation: strict parsing of ``POST /jobs`` bodies."""

import pytest

from repro.service.jobs import JobSpec, JobSpecError


def test_minimal_spec_gets_defaults():
    spec = JobSpec.from_json({"circuit": "ctr8"})
    assert spec.strategy == "MOT"
    assert spec.length == 100
    assert spec.workers == 0  # inline-sharded: exact crash recovery
    assert spec.shard_size == 16
    assert spec.xred is True
    assert spec.deadline is None


def test_round_trip_through_json():
    spec = JobSpec.from_json(
        {"circuit": "ctr8", "strategy": "SOT", "length": 42,
         "deadline": 1.5, "workers": 2}
    )
    again = JobSpec.from_json(spec.to_json())
    assert again.to_json() == spec.to_json()


@pytest.mark.parametrize("body, match", [
    ("not-a-dict", "must be a JSON object"),
    ({}, "'circuit' is required"),
    ({"circuit": "ctr8", "typo_knob": 1}, "unknown job spec fields"),
    ({"circuit": "ctr8", "strategy": "MOTT"}, "strategy must be"),
    ({"circuit": "no-such-circuit-xyz"}, "unknown circuit"),
    ({"circuit": "ctr8", "length": 0}, "must be >= 1"),
    ({"circuit": "ctr8", "length": "100"}, "must be int"),
    ({"circuit": "ctr8", "deadline": -1}, "must be positive"),
    ({"circuit": "ctr8", "workers": -1}, "'workers' must be >= 0"),
    ({"circuit": "ctr8", "sequence": ["01", "0x"]}, "'01' string"),
    ({"circuit": "ctr8", "sequence": [3]}, "'01' string"),
])
def test_invalid_specs_rejected(body, match):
    with pytest.raises(JobSpecError, match=match):
        JobSpec.from_json(body)


def test_bool_is_not_an_int():
    """``"length": true`` must not sneak through bool's int subclassing."""
    with pytest.raises(JobSpecError, match="'length' must be"):
        JobSpec.from_json({"circuit": "ctr8", "length": True})
    with pytest.raises(JobSpecError, match="'deadline' must be"):
        JobSpec.from_json({"circuit": "ctr8", "deadline": True})
    # and the one genuinely boolean field still accepts booleans
    spec = JobSpec.from_json({"circuit": "ctr8", "xred": False})
    assert spec.xred is False


def test_explicit_sequence_accepted():
    spec = JobSpec.from_json({"circuit": "ctr8", "sequence": ["1", "0"]})
    assert spec.sequence == ["1", "0"]
