"""Unit coverage of the job journal: state machine, replay, torn tails."""

import json

import pytest

from repro.service import journal as states
from repro.service.journal import (
    JobJournal,
    JournalStateError,
    replay_journal,
)


def _journal(tmp_path):
    return JobJournal(str(tmp_path / "journal.jsonl"))


def test_happy_path_transitions(tmp_path):
    journal = _journal(tmp_path)
    journal.job_event("j1", states.SUBMITTED, spec={"circuit": "ctr8"})
    journal.job_event("j1", states.RUNNING, attempt=1)
    journal.job_event("j1", states.DONE, result_file="result.json")
    journal.close()
    jobs, _ = replay_journal(journal.path)
    assert jobs["j1"]["state"] == states.DONE
    assert jobs["j1"]["spec"] == {"circuit": "ctr8"}
    assert jobs["j1"]["result_file"] == "result.json"


@pytest.mark.parametrize("first, second", [
    (states.DONE, states.RUNNING),        # terminal states are final
    (states.FAILED, states.SUBMITTED),
    (states.CANCELLED, states.RUNNING),
])
def test_terminal_states_reject_followups(tmp_path, first, second):
    journal = _journal(tmp_path)
    journal.job_event("j1", states.SUBMITTED)
    journal.job_event("j1", states.RUNNING)
    journal.job_event("j1", first)
    with pytest.raises(JournalStateError, match="illegal transition"):
        journal.job_event("j1", second)
    journal.close()


def test_first_record_must_be_submitted(tmp_path):
    journal = _journal(tmp_path)
    with pytest.raises(JournalStateError):
        journal.job_event("j1", states.RUNNING)
    journal.close()


def test_restart_requeue_transitions(tmp_path):
    """Every recoverable state may be requeued as ``submitted``."""
    journal = _journal(tmp_path)
    journal.job_event("never-picked-up", states.SUBMITTED)
    journal.job_event("died-mid-run", states.SUBMITTED)
    journal.job_event("died-mid-run", states.RUNNING)
    journal.job_event("drained", states.SUBMITTED)
    journal.job_event("drained", states.RUNNING)
    journal.job_event("drained", states.INTERRUPTED)
    for job_id in ("never-picked-up", "died-mid-run", "drained"):
        journal.job_event(job_id, states.SUBMITTED, recovered=True)
    journal.close()
    jobs, _ = replay_journal(journal.path)
    assert all(v["state"] == states.SUBMITTED for v in jobs.values())
    assert all(v["recovered"] for v in jobs.values())


def test_replay_preserves_submit_order_and_skips_torn_tail(tmp_path):
    journal = _journal(tmp_path)
    journal.service_event("start", pid=123)
    for job_id in ("a", "b", "c"):
        journal.job_event(job_id, states.SUBMITTED)
    journal.job_event("a", states.RUNNING)
    journal.close()
    # simulate a kill -9 mid-append: a torn, unparseable final line
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "job", "id": "c", "sta')
    jobs, events = replay_journal(journal.path)
    assert list(jobs) == ["a", "b", "c"]
    assert events == 1
    assert jobs["a"]["state"] == states.RUNNING
    assert jobs["c"]["state"] == states.SUBMITTED  # torn record dropped


def test_note_replayed_state_seeds_checker(tmp_path):
    """A restarted journal continues the dead daemon's state machine."""
    journal = _journal(tmp_path)
    journal.job_event("j1", states.SUBMITTED)
    journal.job_event("j1", states.RUNNING)
    journal.close()

    reopened = JobJournal(journal.path)
    jobs, _ = replay_journal(journal.path)
    reopened.note_replayed_state("j1", jobs["j1"]["state"])
    # RUNNING -> DONE legal, RUNNING -> SUBMITTED (requeue) legal...
    reopened.job_event("j1", states.SUBMITTED, recovered=True)
    # ...but the requeued job cannot jump straight to DONE
    with pytest.raises(JournalStateError):
        reopened.job_event("j1", states.DONE)
    reopened.close()


def test_journal_records_are_versioned_and_appended(tmp_path):
    journal = _journal(tmp_path)
    journal.service_event("start", pid=1)
    journal.job_event("j1", states.SUBMITTED)
    journal.close()
    with open(journal.path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert [r["type"] for r in records] == ["service", "job"]
    assert all("version" in r for r in records)
