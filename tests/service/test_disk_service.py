"""Bounded-disk service behavior: journal snapshots, artifact GC,
terminal-job deletion and the 507 disk-pressure shed.

The retention contract: artifacts (bytes on disk) are expendable,
metadata (journal history, digests, counts) is not.  GC and deletion
remove files; the journal — and after compaction, its single snapshot
record — keeps the story.
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.service import CampaignService, ServiceConfig
from repro.service import journal as states
from repro.service.journal import (
    JobJournal,
    compact_journal,
    replay_journal,
    replay_journal_state,
)

SPEC = {"circuit": "ctr8", "length": 20, "seed": 3, "shard_size": 8}


def _request(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _poll(base, job_id, until, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = _request(base, "GET", f"/jobs/{job_id}")
        if body.get("state") in until:
            return body
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {until}; last: {body}"
    )


def _records(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ----------------------------------------------------------------------
# journal snapshots and deletion records
# ----------------------------------------------------------------------
def test_snapshot_replaces_history_and_preserves_replay(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.service_event("start", pid=1)
    journal.job_event("job-000001", states.SUBMITTED,
                      spec={"circuit": "ctr8"})
    journal.job_event("job-000001", states.RUNNING, attempt=1)
    journal.job_event("job-000001", states.DONE, result_file="result.json",
                      digest="abc")
    journal.job_event("job-000002", states.SUBMITTED,
                      spec={"circuit": "ctr8", "seed": 2})
    journal.close()
    before_jobs, before_events = replay_journal(path)

    stats = compact_journal(path)
    assert stats["records_before"] == 5
    assert stats["records_after"] == 1
    after_jobs, after_events = replay_journal(path)
    assert after_jobs == before_jobs
    assert after_events == before_events
    # the surviving record is a single snapshot carrying the id
    # high-water mark, so a restart never reuses job-000002
    records = _records(path)
    assert [r["type"] for r in records] == ["snapshot"]
    assert records[0]["next_id"] == 3
    assert replay_journal_state(path).next_id == 3


def test_snapshot_keeps_appending_after_compaction(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.job_event("j1", states.SUBMITTED, spec={})
    journal.snapshot()
    # the reopened writer still enforces transitions vs snapshot state
    journal.job_event("j1", states.RUNNING)
    journal.job_event("j1", states.DONE)
    journal.close()
    jobs, _ = replay_journal(path)
    assert jobs["j1"]["state"] == states.DONE


def test_job_deleted_drops_job_and_snapshot_forgets_it(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.job_event("job-000001", states.SUBMITTED, spec={})
    journal.job_event("job-000001", states.RUNNING)
    journal.job_event("job-000001", states.DONE)
    journal.job_event("job-000002", states.SUBMITTED, spec={})
    journal.job_deleted("job-000001")
    journal.close()
    jobs, _ = replay_journal(path)
    assert "job-000001" not in jobs and "job-000002" in jobs
    compact_journal(path)
    record = _records(path)[0]
    assert "job-000001" not in record["jobs"]
    # ...but the high-water mark survives the deletion
    assert record["next_id"] == 3


def test_maybe_snapshot_threshold_bounds_file(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path, snapshot_every=10)
    for i in range(1, 40):
        journal.job_event(f"j{i}", states.SUBMITTED, spec={})
        journal.job_event(f"j{i}", states.RUNNING)
        journal.job_event(f"j{i}", states.DONE)
        journal.maybe_snapshot()
    journal.close()
    assert journal.snapshots_taken >= 3
    # the file never holds more than live-jobs + threshold records
    assert len(_records(path)) <= 11


def test_snapshot_refuses_corrupt_journal(tmp_path):
    from repro.runtime.errors import CheckpointError

    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.job_event("j1", states.SUBMITTED, spec={})
    journal.job_event("j2", states.SUBMITTED, spec={})
    journal.close()
    lines = open(path).read().splitlines(keepends=True)
    damaged = lines[0].replace('"j1"', '"jX"')
    with open(path, "w") as handle:
        handle.writelines([damaged] + lines[1:])
    original = open(path).read()
    journal = JobJournal(path)
    with pytest.raises(CheckpointError):
        journal.snapshot()
    journal.close()
    # the damaged file is untouched: fsck/repair gets first look
    assert open(path).read() == original


# ----------------------------------------------------------------------
# service integration: DELETE, GC, 507 shed, bounded restarts
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        queue_limit=4, executors=1,
    )
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    yield svc, f"http://{host}:{port}"
    if not svc.draining:
        svc.drain(reason="test-teardown")


def test_delete_terminal_job_removes_artifacts(service):
    svc, base = service
    svc.start_executors()
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    job_id = body["id"]
    _poll(base, job_id, until=("done",))
    job_dir = svc.job_dir(job_id)
    assert os.path.isdir(job_dir) and os.listdir(job_dir)

    status, _, body = _request(base, "DELETE", f"/jobs/{job_id}")
    assert status == 200
    assert body["deleted"] is True
    assert body["reclaimed_bytes"] > 0
    assert not os.path.exists(job_dir)
    assert _request(base, "GET", f"/jobs/{job_id}")[0] == 404
    # the journal recorded the deletion: replay drops the job
    jobs, _ = replay_journal(svc.journal.path)
    assert job_id not in jobs


def test_deleted_job_stays_gone_after_restart(tmp_path):
    state_dir = str(tmp_path / "state")
    config = ServiceConfig(port=0, state_dir=state_dir, executors=1)
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    base = f"http://{host}:{port}"
    svc.start_executors()
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    job_id = body["id"]
    _poll(base, job_id, until=("done",))
    assert _request(base, "DELETE", f"/jobs/{job_id}")[0] == 200
    svc.drain(reason="restart")

    svc2 = CampaignService(ServiceConfig(port=0, state_dir=state_dir))
    svc2.recover()
    host, port = svc2.start_http()
    base = f"http://{host}:{port}"
    assert _request(base, "GET", f"/jobs/{job_id}")[0] == 404
    # recovery compacted the journal; the id is still never reused
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    assert body["id"] != job_id
    svc2.drain(reason="test-teardown")


def test_artifact_quota_gc_ages_out_oldest_terminal(tmp_path):
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        artifact_quota=8 * 1024,
    )
    svc = CampaignService(config)
    svc.recover()
    # fabricate three terminal jobs with on-disk artifacts, oldest first
    from repro.service.jobs import Job, JobSpec

    for index, job_id in enumerate(
        ("job-000001", "job-000002", "job-000003"), 1
    ):
        job = Job(job_id, JobSpec(circuit="ctr8"), states.DONE,
                  submitted_at=float(index))
        svc._jobs[job_id] = job
        os.makedirs(svc.job_dir(job_id))
        with open(os.path.join(svc.job_dir(job_id), "blob.bin"),
                  "wb") as handle:
            handle.write(b"x" * 6 * 1024)
    with svc._lock:
        reclaimed = svc._gc_artifacts()
    assert reclaimed >= 2 * 6 * 1024
    # oldest two went; the newest survives under the quota
    assert not os.path.exists(svc.job_dir("job-000001"))
    assert not os.path.exists(svc.job_dir("job-000002"))
    assert os.path.exists(svc.job_dir("job-000003"))
    svc.drain(reason="test-teardown")


def test_gc_never_touches_non_terminal_jobs(tmp_path):
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"), artifact_quota=1,
    )
    svc = CampaignService(config)
    svc.recover()
    from repro.service.jobs import Job, JobSpec

    job = Job("job-000001", JobSpec(circuit="ctr8"), states.RUNNING,
              submitted_at=1.0)
    svc._jobs["job-000001"] = job
    os.makedirs(svc.job_dir("job-000001"))
    with open(os.path.join(svc.job_dir("job-000001"), "campaign.ckpt"),
              "wb") as handle:
        handle.write(b"x" * 4096)
    with svc._lock:
        svc._gc_artifacts()
    assert os.path.exists(svc.job_dir("job-000001")), \
        "running jobs' artifacts are never GC targets"
    svc.drain(reason="test-teardown")


def test_disk_budget_sheds_507_and_recovers(tmp_path):
    state_dir = tmp_path / "state"
    state_dir.mkdir()
    ballast = state_dir / "ballast.bin"
    ballast.write_bytes(b"x" * 64 * 1024)
    config = ServiceConfig(
        port=0, state_dir=str(state_dir),
        disk_budget=32 * 1024, retry_after=7,
    )
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    base = f"http://{host}:{port}"
    status, headers, body = _request(base, "POST", "/jobs", SPEC)
    assert status == 507, body
    assert headers.get("Retry-After") == "7"
    assert "disk budget" in body["error"]
    assert svc.metrics.flat()["service.disk_sheds"] == 1
    # pressure relieved: the next submission is admitted
    ballast.unlink()
    status, _, body = _request(base, "POST", "/jobs", SPEC)
    assert status == 202, body
    svc.drain(reason="test-teardown")


def test_restart_cycles_keep_journal_bounded(tmp_path):
    """Repeated submit/complete/restart cycles: replay cost stays
    bounded by the live-job population, not lifetime history."""
    state_dir = str(tmp_path / "state")
    record_counts = []
    job_total = 0
    for cycle in range(5):
        config = ServiceConfig(
            port=0, state_dir=state_dir, executors=1,
            journal_snapshot_every=8,
        )
        svc = CampaignService(config)
        svc.recover()
        host, port = svc.start_http()
        base = f"http://{host}:{port}"
        svc.start_executors()
        for seed in (1, 2):
            _, _, body = _request(
                base, "POST", "/jobs", dict(SPEC, seed=seed)
            )
            _poll(base, body["id"], until=("done",))
            job_total += 1
        svc.drain(reason="cycle")
        record_counts.append(len(_records(
            os.path.join(state_dir, "journal.jsonl")
        )))
    assert job_total == 10
    # without snapshots the journal would hold ~4 records per job plus
    # service events — monotone growth past 40 records by cycle 5.
    # Snapshot-on-recover and the threshold keep every cycle bounded.
    assert max(record_counts) < 30
    # terminal history still replays: all ten jobs visible, all done
    jobs, _ = replay_journal(
        os.path.join(state_dir, "journal.jsonl")
    )
    assert len(jobs) == 10
    assert all(v["state"] == states.DONE for v in jobs.values())
