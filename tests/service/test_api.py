"""In-process HTTP API tests for the campaign service.

The ``start_http()`` / ``start_executors()`` split is what makes
admission behavior deterministic to test: fill the queue before any
executor can drain it, assert the shed, then start the executors and
demand that every *admitted* job still completes — overload must only
ever refuse new work, never degrade accepted work.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import CampaignService, ServiceConfig


def _request(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _poll(base, job_id, until, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = _request(base, "GET", f"/jobs/{job_id}")
        if body.get("state") in until:
            return body
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {until}; last: {body}"
    )


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        queue_limit=2, executors=1,
    )
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    yield svc, f"http://{host}:{port}"
    if not svc.draining:
        svc.drain(reason="test-teardown")


SPEC = {"circuit": "ctr8", "length": 20, "seed": 3, "shard_size": 8}


def test_full_queue_sheds_but_admitted_jobs_complete(service):
    svc, base = service
    # no executors yet: the queue cannot drain under us
    admitted = []
    for seed in (1, 2):
        status, _, body = _request(
            base, "POST", "/jobs", dict(SPEC, seed=seed)
        )
        assert status == 202, body
        admitted.append(body["id"])
    status, headers, body = _request(
        base, "POST", "/jobs", dict(SPEC, seed=3)
    )
    assert status == 429
    assert headers.get("Retry-After") == "5"
    assert body["error"] == "admission queue full"

    svc.start_executors()
    for job_id in admitted:
        final = _poll(base, job_id, until=("done",))
        assert final["result"]["stopped"] == "completed"
        assert final["result"]["counts"]["total"] > 0
        assert final["result"]["verdicts"]
    _, _, metrics = _request(base, "GET", "/metrics")
    assert metrics["service.sheds"] == 1
    assert metrics["service.done"] == 2
    # room again: the next submission is admitted
    status, _, _ = _request(base, "POST", "/jobs", dict(SPEC, seed=4))
    assert status == 202


def test_health_ready_and_errors(service):
    svc, base = service
    assert _request(base, "GET", "/healthz")[0] == 200
    status, _, body = _request(base, "GET", "/readyz")
    assert (status, body["status"]) == (200, "ready")
    assert _request(base, "GET", "/jobs/job-999999")[0] == 404
    assert _request(base, "GET", "/nope")[0] == 404
    assert _request(base, "POST", "/jobs", {"circuit": "ctr8",
                                            "bogus": 1})[0] == 400
    status, _, body = _request(base, "POST", "/jobs")
    assert status == 400 and "bad JSON body" in body["error"]


def test_cancel_queued_job(service):
    svc, base = service
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    job_id = body["id"]
    status, _, body = _request(base, "DELETE", f"/jobs/{job_id}")
    assert status == 200
    assert body["state"] == "cancelled"
    # terminal: a second DELETE is deletion — artifacts and the job
    # table entry go, later GETs 404
    status, _, body = _request(base, "DELETE", f"/jobs/{job_id}")
    assert status == 200
    assert body["deleted"] is True
    svc.start_executors()
    time.sleep(0.3)
    assert _request(base, "GET", f"/jobs/{job_id}")[0] == 404


def test_cancel_running_job_stops_cooperatively(service):
    svc, base = service
    svc.start_executors()
    # a long job with tiny shards: many cancellation points
    spec = dict(SPEC, length=4000, shard_size=2, seed=9)
    _, _, body = _request(base, "POST", "/jobs", spec)
    job_id = body["id"]
    _poll(base, job_id, until=("running",), timeout=60)
    status, _, _ = _request(base, "DELETE", f"/jobs/{job_id}")
    assert status in (200, 202)
    final = _poll(base, job_id, until=("cancelled", "done"), timeout=120)
    # "done" is a legal race (last shard finished first); the common
    # path is a cooperative stop at the next shard boundary
    if final["state"] == "cancelled":
        assert final["result"]["stopped"] == "signal"


def test_restart_serves_results_idempotently(tmp_path):
    state_dir = str(tmp_path / "state")
    config = ServiceConfig(port=0, state_dir=state_dir, queue_limit=4)
    first = CampaignService(config)
    first.recover()
    host, port = first.start_http()
    base = f"http://{host}:{port}"
    first.start_executors()
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    job_id = body["id"]
    done = _poll(base, job_id, until=("done",))
    first.drain(reason="test")

    second = CampaignService(
        ServiceConfig(port=0, state_dir=state_dir, queue_limit=4)
    )
    requeued = second.recover()
    assert requeued == 0  # terminal jobs are not re-run
    host, port = second.start_http()
    base = f"http://{host}:{port}"
    _, _, replayed = _request(base, "GET", f"/jobs/{job_id}")
    assert replayed["state"] == "done"
    assert replayed["result"]["verdicts"] == done["result"]["verdicts"]
    # new submissions on the restarted service get fresh ids
    _, _, body = _request(base, "POST", "/jobs", SPEC)
    assert body["id"] != job_id
    second.drain(reason="test")


def test_drain_flips_readyz_and_refuses_submissions(service):
    svc, base = service
    svc.start_executors()
    svc.drain(reason="test")
    # the HTTP server is shut down by drain; state checks are direct
    status, _, body = svc.ready()
    assert status == 503 and body["status"] == "draining"
    status, _, body = svc.submit(SPEC)
    assert status == 503
