"""Event streaming and metrics exposition on the campaign service.

Two layers under test.  The :class:`JobEventBuffer` unit tests pin the
bounded-buffer contract the executor depends on: ``push`` never
blocks, a slow consumer costs dropped events (accounted), never a
stalled campaign.  The HTTP tests run a real service end-to-end and
check the wire formats: ``/metrics`` content negotiation (JSON stays
the default; ``Accept: text/plain`` switches to Prometheus
exposition) and ``/jobs/<id>/events`` long-poll and SSE framing.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import CampaignService, ServiceConfig
from repro.service.events import JobEventBuffer


# -- JobEventBuffer ----------------------------------------------------


def test_push_assigns_monotonic_seq():
    buf = JobEventBuffer()
    assert buf.push("state", {"state": "submitted"}) == 1
    assert buf.push("progress", {"frame": 1}) == 2
    events, dropped, closed = buf.after(0)
    assert [e["seq"] for e in events] == [1, 2]
    assert events[0]["kind"] == "state"
    assert events[0]["state"] == "submitted"
    assert dropped == 0 and not closed


def test_after_returns_only_newer_events():
    buf = JobEventBuffer()
    for i in range(5):
        buf.push("progress", {"frame": i})
    events, _, _ = buf.after(3)
    assert [e["seq"] for e in events] == [4, 5]


def test_bounded_buffer_evicts_oldest_and_accounts_drops():
    buf = JobEventBuffer(capacity=4)
    for i in range(10):
        buf.push("progress", {"frame": i})
    events, dropped, _ = buf.after(0)
    assert len(events) == 4
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    assert dropped == 6
    assert buf.dropped == 6


def test_push_never_blocks_with_no_consumer():
    buf = JobEventBuffer(capacity=2)
    start = time.monotonic()
    for i in range(10_000):
        buf.push("progress", {"frame": i})
    assert time.monotonic() - start < 5.0
    assert buf.dropped == 9_998


def test_after_blocks_until_push():
    buf = JobEventBuffer()
    got = []

    def consumer():
        got.append(buf.after(0, timeout=10.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.05)
    buf.push("state", {"state": "running"})
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    events, _, _ = got[0]
    assert events and events[0]["state"] == "running"


def test_after_timeout_returns_empty():
    buf = JobEventBuffer()
    events, dropped, closed = buf.after(0, timeout=0.05)
    assert events == [] and dropped == 0 and not closed


def test_close_wakes_waiters_and_drops_late_pushes():
    buf = JobEventBuffer()
    buf.push("state", {"state": "done"})
    got = []

    def consumer():
        got.append(buf.after(1, timeout=10.0))

    thread = threading.Thread(target=consumer)
    thread.start()
    time.sleep(0.05)
    buf.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    _, _, closed = got[0]
    assert closed
    assert buf.push("progress", {"frame": 9}) is None
    events, _, _ = buf.after(0)
    assert len(events) == 1  # the late push vanished


# -- HTTP: /metrics content negotiation and /jobs/<id>/events ----------


def _request(base, method, path, body=None, headers=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                dict(response.headers),
                response.read(),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _poll_done(base, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    body = {}
    while time.monotonic() < deadline:
        _, _, raw = _request(base, "GET", f"/jobs/{job_id}")
        body = json.loads(raw)
        if body.get("state") in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished; last: {body}")


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        queue_limit=2, executors=1,
    )
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    yield svc, f"http://{host}:{port}"
    if not svc.draining:
        svc.drain(reason="test-teardown")


SPEC = {"circuit": "ctr8", "length": 12, "seed": 3, "shard_size": 8}


def test_metrics_default_stays_json(service):
    _, base = service
    status, headers, raw = _request(base, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    snapshot = json.loads(raw)
    assert "service.queue_depth" in snapshot  # the legacy flat body


def test_metrics_negotiates_prometheus_exposition(service):
    _, base = service
    status, headers, raw = _request(
        base, "GET", "/metrics", headers={"Accept": "text/plain"}
    )
    assert status == 200
    assert headers["Content-Type"] == (
        "text/plain; version=0.0.4; charset=utf-8"
    )
    text = raw.decode("utf-8")
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name.split("{", 1)[0].replace("_", "").replace(
                ":", ""
            ).isalnum()
    assert "# TYPE repro_service_queue_depth gauge" in text


def test_metrics_exposition_reflects_job_counters(service):
    svc, base = service
    svc.start_executors()
    _, _, raw = _request(base, "POST", "/jobs", SPEC)
    job_id = json.loads(raw)["id"]
    _poll_done(base, job_id)
    _, _, raw = _request(
        base, "GET", "/metrics", headers={"Accept": "text/plain"}
    )
    text = raw.decode("utf-8")
    assert "repro_service_submitted_total 1" in text
    assert "repro_service_done_total 1" in text


def test_events_long_poll_sees_lifecycle_and_progress(service):
    svc, base = service
    svc.start_executors()
    _, _, raw = _request(base, "POST", "/jobs", SPEC)
    job_id = json.loads(raw)["id"]
    _poll_done(base, job_id)

    events = []
    after = 0
    for _ in range(50):
        status, headers, raw = _request(
            base, "GET", f"/jobs/{job_id}/events?after={after}&timeout=5"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        body = json.loads(raw)
        assert body["job"] == job_id
        events.extend(body["events"])
        if body["closed"] and not body["events"]:
            break
        if body["events"]:
            after = body["events"][-1]["seq"]
    else:
        raise AssertionError("event stream never closed")

    kinds = [e["kind"] for e in events]
    states = [e["state"] for e in events if e["kind"] == "state"]
    assert states[0] == "submitted"
    assert "running" in states
    assert states[-1] == "done"
    assert "progress" in kinds
    progress = [e for e in events if e["kind"] == "progress"]
    assert any("faults_done" in e for e in progress)
    # every event passes the stream-record schema
    from repro.obs.schema import validate_stream_record

    for i, event in enumerate(events, 1):
        validate_stream_record(event, line_no=i)
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)


def test_events_unknown_job_404(service):
    _, base = service
    status, _, raw = _request(base, "GET", "/jobs/job-999999/events")
    assert status == 404
    assert "no such job" in json.loads(raw)["error"]


def test_events_bad_after_parameter_400(service):
    svc, base = service
    _, _, raw = _request(base, "POST", "/jobs", SPEC)
    job_id = json.loads(raw)["id"]
    status, _, _ = _request(
        base, "GET", f"/jobs/{job_id}/events?after=banana"
    )
    assert status == 400


def test_events_sse_frames(service):
    svc, base = service
    svc.start_executors()
    _, _, raw = _request(base, "POST", "/jobs", SPEC)
    job_id = json.loads(raw)["id"]
    _poll_done(base, job_id)

    request = urllib.request.Request(
        base + f"/jobs/{job_id}/events",
        headers={"Accept": "text/event-stream"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "text/event-stream"
        )
        payload = response.read().decode("utf-8")

    frames = [f for f in payload.split("\n\n") if f.strip()]
    data_frames = [f for f in frames if "data:" in f]
    assert data_frames, payload
    first = data_frames[0]
    assert "id: 1" in first
    assert "event: state" in first
    body = json.loads(
        next(l for l in first.splitlines() if l.startswith("data:"))
        [len("data:"):].strip()
    )
    assert body["state"] == "submitted"
    last = json.loads(
        next(l for l in data_frames[-1].splitlines()
             if l.startswith("data:"))[len("data:"):].strip()
    )
    assert last["state"] == "done"


def test_terminal_job_recovers_with_closed_stream(tmp_path):
    # restart the service over the same state dir: replayed terminal
    # jobs must expose a closed event stream carrying their fate
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        queue_limit=2, executors=1,
    )
    svc = CampaignService(config)
    svc.recover()
    host, port = svc.start_http()
    base = f"http://{host}:{port}"
    svc.start_executors()
    _, _, raw = _request(base, "POST", "/jobs", SPEC)
    job_id = json.loads(raw)["id"]
    _poll_done(base, job_id)
    svc.drain(reason="test-restart")

    svc2 = CampaignService(ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"),
        queue_limit=2, executors=1,
    ))
    svc2.recover()
    host2, port2 = svc2.start_http()
    base2 = f"http://{host2}:{port2}"
    try:
        status, _, raw = _request(
            base2, "GET", f"/jobs/{job_id}/events?after=0&timeout=1"
        )
        assert status == 200
        body = json.loads(raw)
        assert body["closed"]
        states = [e.get("state") for e in body["events"]]
        assert states == ["done"]
        assert body["events"][0].get("recovered") is True
    finally:
        if not svc2.draining:
            svc2.drain(reason="test-teardown")
