"""End-to-end flows across module boundaries."""

import pytest

from repro import (
    FaultSet,
    collapse_faults,
    compile_circuit,
    eliminate_x_redundant,
    fault_simulate_3v,
    fault_simulate_3v_parallel,
    hybrid_fault_simulate,
    parse_bench,
    random_sequence_for,
    symbolic_fault_simulate,
    write_bench,
)
from repro.circuits import get_circuit, s27
from repro.faults.status import BY_3V, UNDETECTED, X_REDUNDANT


def full_flow(circuit, length=60, seed=1, strategy="MOT", **hybrid_kw):
    compiled = compile_circuit(circuit)
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, length, seed=seed)
    eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v_parallel(compiled, sequence, fault_set)
    result = hybrid_fault_simulate(
        compiled, sequence, fault_set, strategy=strategy, **hybrid_kw
    )
    return compiled, fault_set, result


def test_full_flow_accounting_s27():
    _compiled, fs, result = full_flow(s27())
    counts = fs.counts()
    assert counts["total"] == 32
    assert (
        counts["detected"] + counts["undetected"] + counts["x_redundant"]
        == counts["total"]
    )
    # the symbolic pass can only add detections
    assert counts["detected"] >= len(fs.detected(BY_3V))


@pytest.mark.parametrize("name", ["ctr8", "syncc6", "tlc", "lfsr8"])
def test_full_flow_runs_on_suite(name):
    _compiled, fs, result = full_flow(get_circuit(name), length=40)
    counts = fs.counts()
    assert counts["total"] > 0
    assert result.frames_total == 40


def test_three_valued_subset_of_symbolic_sot():
    """Detection hierarchy across engines: anything the three-valued
    simulator detects, the symbolic SOT simulator detects too."""
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 30, seed=5)
    fs_3v = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs_3v)
    fs_sym = FaultSet(faults)
    symbolic_fault_simulate(compiled, sequence, fs_sym, strategy="SOT")
    d3 = {r.fault.key() for r in fs_3v.detected()}
    ds = {r.fault.key() for r in fs_sym.detected()}
    assert d3 <= ds


def test_bench_roundtrip_preserves_fault_behaviour():
    circuit = get_circuit("tlc")
    reparsed = parse_bench(write_bench(circuit), name="tlc")
    _c1, fs1, _r1 = full_flow(circuit, length=30)
    _c2, fs2, _r2 = full_flow(reparsed, length=30)
    assert fs1.counts() == fs2.counts()


def test_x_redundant_faults_can_be_detected_symbolically():
    """The headline of the paper: faults hopeless for the conventional
    flow are detected by the MOT strategies."""
    _compiled, fs, _result = full_flow(get_circuit("syncc6"), length=60)
    recovered = [
        r for r in fs.detected()
        if r.detected_by in ("SOT", "rMOT", "MOT")
    ]
    assert recovered, "symbolic pass recovered nothing on syncc6"


def test_sequential_runs_are_idempotent():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 30, seed=2)
    eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v(compiled, sequence, fault_set)
    before = fault_set.counts()
    # running the 3-valued pass again must not change anything
    fault_simulate_3v(compiled, sequence, fault_set)
    assert fault_set.counts() == before


def test_statuses_partition():
    _compiled, fs, _result = full_flow(get_circuit("ctr8"), length=40)
    for record in fs:
        assert record.status in (UNDETECTED, X_REDUNDANT, "detected")
        if record.status == "detected":
            assert record.detected_by is not None
