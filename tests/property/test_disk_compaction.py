"""Hypothesis properties: compaction never changes what a reader sees.

Disk-pressure relief rewrites persistence artifacts (campaign
checkpoints, the service journal) keeping only what a reader folds
into state.  Three properties pin that down on random inputs:

1. resuming from a compacted mid-run checkpoint classifies every
   fault exactly like resuming from the original (and like an
   uninterrupted baseline run),
2. compaction is idempotent — compacting a compacted artifact is a
   byte-level no-op,
3. a journal that snapshots at arbitrary thresholds replays to the
   same job views and event count as one that never compacts, under
   any legal operation sequence (including deletions).
"""

import random as random_module
import shutil

from hypothesis import given, settings, strategies as st

from repro.circuit.compile import compile_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import resume_campaign, run_campaign
from repro.runtime.disk import compact_checkpoint
from repro.runtime.fsck import fsck_file
from repro.service import journal as journal_mod
from repro.service.journal import JobJournal, compact_journal, replay_journal
from tests.util import random_circuit


@st.composite
def circuit_and_sequence(draw, length=8, max_dffs=3, max_gates=10):
    seed = draw(st.integers(0, 10_000))
    compiled = compile_circuit(
        random_circuit(
            seed,
            num_pis=draw(st.integers(1, 3)),
            num_dffs=draw(st.integers(1, max_dffs)),
            num_gates=draw(st.integers(3, max_gates)),
            num_pos=draw(st.integers(1, 2)),
        )
    )
    rng = random_module.Random(draw(st.integers(0, 10_000)))
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis)
        for _ in range(length)
    ]
    return compiled, sequence


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


class _StopAfter:
    """A signal-guard stand-in the progress hook trips at a frame."""

    def __init__(self, frame):
        self.frame = frame
        self.stop_requested = None

    def hook(self, payload):
        if payload.get("frame", 0) >= self.frame:
            self.stop_requested = "property-test interrupt"


@given(circuit_and_sequence(), st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_compacted_checkpoint_resumes_identically(tmp_path_factory,
                                                  pair, stop_frame):
    compiled, sequence = pair
    tmp_path = tmp_path_factory.mktemp("ckpt")
    faults, _ = collapse_faults(compiled)

    baseline = FaultSet(faults)
    run_campaign(compiled, sequence, baseline, node_limit=300_000)

    # interrupt mid-run so the checkpoint is genuinely partial; the
    # guard trips at the checkpoint after *stop_frame*
    guard = _StopAfter(stop_frame)
    interrupted = FaultSet(faults)
    original = str(tmp_path / "run.ckpt")
    result = run_campaign(
        compiled, sequence, interrupted, node_limit=300_000,
        checkpoint_path=original, checkpoint_every=1,
        signal_guard=guard, progress_hook=guard.hook,
    )
    compacted = str(tmp_path / "compacted.ckpt")
    shutil.copyfile(original, compacted)
    stats = compact_checkpoint(compacted)
    assert stats["records_after"] <= stats["records_before"]
    assert fsck_file(compacted).ok

    # whether the guard tripped mid-run (stopped == "signal") or the
    # run outpaced it (stopped == "completed"), both copies must
    # restore the same verdict state
    assert result.stopped in ("signal", "completed")
    from_original = FaultSet(faults)
    resume_campaign(original, compiled=compiled, fault_set=from_original)
    from_compacted = FaultSet(faults)
    resume_campaign(compacted, compiled=compiled,
                    fault_set=from_compacted)
    assert signature(from_compacted) == signature(from_original)
    # vs the uninterrupted baseline, resume is exact=False under MOT:
    # the multiple-observation window restarts at the interrupt, so
    # detections that needed observations straddling the boundary are
    # conservatively lost (and never invented).  That is a pre-existing
    # resume semantic, not a compaction one — compaction must not make
    # it any worse, so the resumed detections are a sound subset
    detected = {r.fault.key() for r in from_compacted.detected()}
    assert detected <= {r.fault.key() for r in baseline.detected()}


@given(circuit_and_sequence(length=6))
@settings(max_examples=10, deadline=None)
def test_checkpoint_compaction_is_idempotent(tmp_path_factory, pair):
    compiled, sequence = pair
    tmp_path = tmp_path_factory.mktemp("idem")
    faults, _ = collapse_faults(compiled)
    path = str(tmp_path / "run.ckpt")
    run_campaign(
        compiled, sequence, FaultSet(faults), node_limit=300_000,
        checkpoint_path=path, checkpoint_every=1,
    )
    compact_checkpoint(path)
    once = open(path, "rb").read()
    stats = compact_checkpoint(path)
    assert open(path, "rb").read() == once
    assert stats["records_after"] == stats["records_before"]


_PATHS = (
    ("submitted",),
    ("submitted", "cancelled"),
    ("submitted", "running"),
    ("submitted", "running", "done"),
    ("submitted", "running", "failed"),
    ("submitted", "running", "cancelled"),
    ("submitted", "running", "interrupted"),
    ("submitted", "running", "interrupted", "submitted",
     "running", "done"),
)


@st.composite
def journal_script(draw):
    """A legal operation script: (op, job_id, state) tuples."""
    ops = []
    n_jobs = draw(st.integers(1, 5))
    for index in range(1, n_jobs + 1):
        job_id = f"job-{index:06d}"
        path = draw(st.sampled_from(_PATHS))
        for step, state in enumerate(path):
            if step == 0:
                ops.append(("job", job_id, state, {"spec": {
                    "circuit": "x", "seed": index,
                }}))
            else:
                ops.append(("job", job_id, state, {}))
            if draw(st.booleans()):
                ops.append(("service", None, None, {}))
        if path[-1] in journal_mod.TERMINAL and draw(st.booleans()):
            ops.append(("delete", job_id, None, {}))
    return ops


@given(journal_script(), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_snapshotting_journal_replays_like_plain(tmp_path_factory,
                                                 ops, snapshot_every):
    tmp_path = tmp_path_factory.mktemp("journal")
    plain_path = str(tmp_path / "plain.jsonl")
    snap_path = str(tmp_path / "snap.jsonl")
    plain = JobJournal(plain_path)
    snapping = JobJournal(snap_path, snapshot_every=snapshot_every)
    for op, job_id, state, fields in ops:
        for journal in (plain, snapping):
            if op == "job":
                journal.job_event(job_id, state, **fields)
            elif op == "delete":
                journal.job_deleted(job_id)
            else:
                journal.service_event("tick")
        snapping.maybe_snapshot()
    plain.close()
    snapping.close()

    assert replay_journal(snap_path) == replay_journal(plain_path)
    # both artifacts stay fsck-clean, snapshots included
    assert fsck_file(plain_path).ok
    assert fsck_file(snap_path).ok
    # offline compaction of either file is again replay-preserving
    # and idempotent at the byte level
    before = replay_journal(plain_path)
    compact_journal(plain_path)
    assert replay_journal(plain_path) == before
    once = open(plain_path, "rb").read()
    compact_journal(plain_path)
    assert open(plain_path, "rb").read() == once
