"""Hypothesis property: pressure relief never changes BDD semantics.

The escalation ladder's first three rungs — computed-table eviction,
root-preserving GC and reorder rescue — are supposed to be purely
spatial: any interleaving of them with ordinary BDD construction must
leave every root's truth table (checked via ``sat_count`` and point
evaluations) untouched.  Only the fourth rung (surrender) may alter
results, and it reuses the conservative fallback paths tested
elsewhere.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, PressureConfig
from repro.circuit.compile import compile_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import run_campaign
from tests.util import random_circuit

NUM_VARS = 6


def build_roots(manager, seed, count=3, depth=8):
    """A few random expressions over the manager's variables."""
    rng = random_module.Random(seed)
    roots = []
    for _ in range(count):
        node = manager.mk_var(rng.randrange(NUM_VARS))
        for _ in range(depth):
            other = manager.mk_var(rng.randrange(NUM_VARS))
            op = rng.choice(
                (manager.and_, manager.or_, manager.xor, manager.xnor)
            )
            node = op(node, other)
            if rng.random() < 0.3:
                node = manager.not_(node)
        roots.append(node)
    return roots


@given(
    seed=st.integers(0, 10_000),
    actions=st.lists(
        st.sampled_from(["evict", "evict_half", "collect", "build"]),
        min_size=1, max_size=8,
    ),
)
@settings(max_examples=40, deadline=None)
def test_relief_interleavings_preserve_truth_tables(seed, actions):
    manager = BddManager(num_vars=NUM_VARS)
    roots = build_roots(manager, seed)
    expected = [manager.sat_count(r, range(NUM_VARS)) for r in roots]
    probe = {v: (seed >> v) & 1 for v in range(NUM_VARS)}
    expected_points = [manager.evaluate(r, probe) for r in roots]

    extra_seed = seed
    for action in actions:
        if action == "evict":
            manager.evict_cache(1.0)
        elif action == "evict_half":
            manager.evict_cache(0.5)
        elif action == "collect":
            _, roots = manager.collect(roots, return_roots=True)
        else:  # interleave fresh construction (dirties the cache)
            extra_seed += 1
            build_roots(manager, extra_seed, count=1)

    assert [
        manager.sat_count(r, range(NUM_VARS)) for r in roots
    ] == expected
    assert [manager.evaluate(r, probe) for r in roots] == expected_points


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_pressured_campaign_matches_unconstrained(seed):
    """End-to-end: constant relief, identical classifications.

    The node limit is generous (no overflow, no surrender) while the
    watermarks are absurdly tight, so every relief rung fires without
    any fault ever degrading — verdicts must be identical to a
    pressure-free run, and the result stays exact.
    """
    compiled = compile_circuit(random_circuit(seed))
    faults, _ = collapse_faults(compiled)
    rng = random_module.Random(seed + 1)
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis) for _ in range(6)
    ]

    baseline_set = FaultSet(faults)
    baseline = run_campaign(
        compiled, sequence, baseline_set, node_limit=50_000
    )

    pressured_set = FaultSet(faults)
    pressured = run_campaign(
        compiled, sequence, pressured_set, node_limit=50_000,
        pressure=PressureConfig(
            gc_watermark=0.01, live_fraction=1.0, cache_budget=32,
            reorder_rescue=True, check_stride=16,
        ),
    )

    def signature(fault_set):
        return [
            (r.fault.key(), r.status, r.detected_by, r.detected_at)
            for r in fault_set
        ]

    assert signature(pressured_set) == signature(baseline_set)
    assert pressured.exact == baseline.exact
    assert pressured.stopped == "completed"
