"""Hypothesis-driven end-to-end properties on generated circuits.

The seeds-based tests elsewhere pin specific circuits; here hypothesis
explores the circuit space itself (gate kinds, arities, fanout shapes,
duplicate fanins, state feedback) and shrinks failures to minimal
netlists.  The properties are the load-bearing ones:

1. event-driven propagation == full re-evaluation (Boolean),
2. symbolic SOT/rMOT/MOT == explicit-enumeration oracle,
3. ID_X-red never eliminates a three-valued-detectable fault,
4. detection hierarchy SOT <= rMOT <= MOT.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.baselines.enumeration import (
    mot_detectable,
    rmot_detectable,
    sot_detectable,
)
from repro.circuit.compile import compile_circuit
from repro.engines.algebra import BOOL
from repro.engines.evaluate import simulate_frame
from repro.engines.propagate import propagate_fault
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.faults.universe import enumerate_faults
from repro.symbolic.fault_sim import symbolic_fault_simulate
from repro.xred.idxred import id_x_red
from tests.util import random_circuit, reference_faulty_values


@st.composite
def circuits(draw, max_dffs=3, max_gates=12):
    seed = draw(st.integers(0, 10_000))
    num_pis = draw(st.integers(1, 3))
    num_dffs = draw(st.integers(1, max_dffs))
    num_gates = draw(st.integers(3, max_gates))
    num_pos = draw(st.integers(1, 2))
    return compile_circuit(
        random_circuit(
            seed,
            num_pis=num_pis,
            num_dffs=num_dffs,
            num_gates=num_gates,
            num_pos=num_pos,
        )
    )


@st.composite
def circuit_and_sequence(draw, length=5, **kw):
    compiled = draw(circuits(**kw))
    seq_seed = draw(st.integers(0, 10_000))
    rng = random_module.Random(seq_seed)
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis)
        for _ in range(length)
    ]
    return compiled, sequence


@given(circuits(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_propagation_equals_reference(compiled, value_seed):
    rng = random_module.Random(value_seed)
    pi_values = [rng.randrange(2) for _ in compiled.pis]
    good_state = [rng.randrange(2) for _ in compiled.ppis]
    faulty_state = [
        b if rng.random() < 0.7 else 1 - b for b in good_state
    ]
    good = simulate_frame(compiled, BOOL, pi_values, good_state)
    diff = {
        i: fv
        for i, (gv, fv) in enumerate(zip(good_state, faulty_state))
        if gv != fv
    }
    for fault in enumerate_faults(compiled):
        result = propagate_fault(compiled, BOOL, good, fault, diff)
        reference = reference_faulty_values(
            compiled, BOOL, pi_values, faulty_state, fault
        )
        for sig in range(compiled.num_signals):
            assert result.faulty_value(good, sig) == reference[sig]


@given(circuit_and_sequence(length=4))
@settings(max_examples=15, deadline=None)
def test_strategies_match_oracle(pair):
    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)
    oracles = {
        "SOT": sot_detectable,
        "rMOT": rmot_detectable,
        "MOT": mot_detectable,
    }
    for strategy, oracle in oracles.items():
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs,
                                strategy=strategy)
        got = {r.fault.key() for r in fs.detected()}
        want = {
            f.key() for f in faults if oracle(compiled, sequence, f)
        }
        assert got == want, strategy


@given(circuit_and_sequence(length=6, max_gates=16))
@settings(max_examples=20, deadline=None)
def test_idxred_soundness(pair):
    compiled, sequence = pair
    faults = enumerate_faults(compiled)
    result = id_x_red(compiled, sequence, faults)
    victims = [f for f in faults if result.is_x_redundant(f)]
    if not victims:
        return
    fs = FaultSet(victims)
    fault_simulate_3v(compiled, sequence, fs)
    assert fs.counts()["detected"] == 0


@given(circuit_and_sequence(length=5))
@settings(max_examples=15, deadline=None)
def test_detection_hierarchy(pair):
    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)
    detected = {}
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet(faults)
        symbolic_fault_simulate(compiled, sequence, fs,
                                strategy=strategy)
        detected[strategy] = {r.fault.key() for r in fs.detected()}
    assert detected["SOT"] <= detected["rMOT"] <= detected["MOT"]
