"""Hypothesis property: sharding and packing never change verdicts.

Fault simulation is per-fault independent, so three pipelines must
classify every fault identically on any circuit and sequence:

1. the serial three-valued engine,
2. the word-parallel engine at any ``pack_width`` (including the
   degenerate width 1 and widths that do not divide the fault count),
3. the shard fabric's inline mode (``workers=0``), which exercises the
   full shard/merge path — planning, ``run_shard``, payload
   serialization, deterministic merge — without process overhead.

A multiprocess pool is the same code path plus pickling, covered by
the integration tests in ``tests/runtime/test_fabric.py``.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.circuit.compile import compile_circuit
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime.fabric import run_sharded_campaign
from repro.runtime.ladder import THREE_VALUED_RUNG, DegradationLadder
from tests.util import random_circuit


@st.composite
def circuit_and_sequence(draw, length=6, max_dffs=3, max_gates=12):
    seed = draw(st.integers(0, 10_000))
    num_pis = draw(st.integers(1, 3))
    num_dffs = draw(st.integers(1, max_dffs))
    num_gates = draw(st.integers(3, max_gates))
    num_pos = draw(st.integers(1, 2))
    compiled = compile_circuit(
        random_circuit(
            seed,
            num_pis=num_pis,
            num_dffs=num_dffs,
            num_gates=num_gates,
            num_pos=num_pos,
        )
    )
    seq_seed = draw(st.integers(0, 10_000))
    rng = random_module.Random(seq_seed)
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis)
        for _ in range(length)
    ]
    return compiled, sequence


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


@given(circuit_and_sequence(), st.sampled_from([1, 3, 8, 256]))
@settings(max_examples=25, deadline=None)
def test_packed_parallel_matches_serial(pair, pack_width):
    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)

    serial = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, serial)

    packed = FaultSet(faults)
    fault_simulate_3v_parallel(
        compiled, sequence, packed, pack_width=pack_width
    )
    assert signature(packed) == signature(serial)


@given(circuit_and_sequence(), st.integers(1, 7))
@settings(max_examples=15, deadline=None)
def test_fabric_sharding_matches_serial(pair, shard_size):
    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)

    serial = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, serial)

    # a pure-3v ladder keeps the comparison engine-for-engine; shard
    # sizes 1..7 rarely divide the fault count, covering ragged tails
    # and singleton shards
    sharded = FaultSet(faults)
    result = run_sharded_campaign(
        compiled, sequence, sharded,
        workers=0, shard_size=shard_size,
        ladder=DegradationLadder([THREE_VALUED_RUNG]),
        xred=False,
    )
    assert signature(sharded) == signature(serial)
    assert result.stopped == "completed"
    fabric = result.runtime_summary()["fabric"]
    assert fabric["shards_completed"] == fabric["shards_planned"]


@given(circuit_and_sequence(), st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_pressure_settings_preserve_sharding_equivalence(pair, shard_size):
    """Serial vs sharded under identical pressure settings.

    Relief rungs are per-session and semantics-preserving, so a
    pressured serial campaign and a pressured inline-sharded campaign
    must classify every fault identically (nothing surrenders here:
    the node limit is generous and no RSS budget is set).
    """
    from repro.bdd import PressureConfig
    from repro.runtime import run_campaign

    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)
    pressure = PressureConfig(
        gc_watermark=0.05, live_fraction=1.0, cache_budget=64,
        reorder_rescue=True, check_stride=64,
    )

    serial = FaultSet(faults)
    run_campaign(
        compiled, sequence, serial,
        node_limit=20_000, pressure=pressure,
    )

    sharded = FaultSet(faults)
    result = run_sharded_campaign(
        compiled, sequence, sharded,
        workers=0, shard_size=shard_size,
        node_limit=20_000, pressure=pressure,
    )
    assert signature(sharded) == signature(serial)
    assert result.stopped == "completed"
