"""Event-driven single-fault propagation vs full faulty re-evaluation.

The reference implementation in tests.util fully evaluates the faulty
machine frame (no events, no diffs); the engine must agree on every
signal, for every fault, in every algebra, on randomized circuits and
states.  This is the property that protects the entire fault simulator.
"""

import random

import pytest

from repro.bdd import BddManager, StateVariables
from repro.circuit.compile import compile_circuit
from repro.engines.algebra import BOOL, THREE_VALUED, BddAlgebra
from repro.engines.evaluate import simulate_frame
from repro.engines.propagate import propagate_fault
from repro.faults.universe import enumerate_faults
from repro.logic import threeval as tv
from tests.util import (
    random_circuit,
    reference_faulty_next_state,
    reference_faulty_values,
)


def check_circuit(compiled, algebra, pi_values, good_state, faulty_state):
    good_values = simulate_frame(compiled, algebra, pi_values, good_state)
    state_diff = {
        i: fv
        for i, (gv, fv) in enumerate(zip(good_state, faulty_state))
        if gv != fv
    }
    for fault in enumerate_faults(compiled):
        result = propagate_fault(
            compiled, algebra, good_values, fault, state_diff
        )
        reference = reference_faulty_values(
            compiled, algebra, pi_values, faulty_state, fault
        )
        for sig in range(compiled.num_signals):
            assert result.faulty_value(good_values, sig) == reference[sig], (
                f"{fault!r} at signal {compiled.names[sig]}"
            )
        ref_next = reference_faulty_next_state(
            compiled, algebra, reference, fault
        )
        good_next = [good_values[s] for s in compiled.dff_d]
        for i, (g, r) in enumerate(zip(good_next, ref_next)):
            assert result.next_state_diff.get(i, g) == r


@pytest.mark.parametrize("seed", range(10))
def test_bool_propagation_matches_reference(seed):
    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed, num_gates=15))
    pi_values = [rng.randrange(2) for _ in compiled.pis]
    good_state = [rng.randrange(2) for _ in compiled.ppis]
    faulty_state = [
        b if rng.random() < 0.7 else 1 - b for b in good_state
    ]
    check_circuit(compiled, BOOL, pi_values, good_state, faulty_state)


@pytest.mark.parametrize("seed", range(10))
def test_threeval_propagation_matches_reference(seed):
    rng = random.Random(seed + 100)
    compiled = compile_circuit(random_circuit(seed, num_gates=15))
    pi_values = [rng.choice((0, 1)) for _ in compiled.pis]
    values3 = (tv.ZERO, tv.ONE, tv.X)
    good_state = [rng.choice(values3) for _ in compiled.ppis]
    faulty_state = [
        v if rng.random() < 0.6 else rng.choice(values3)
        for v in good_state
    ]
    check_circuit(compiled, THREE_VALUED, pi_values, good_state,
                  faulty_state)


@pytest.mark.parametrize("seed", range(6))
def test_symbolic_propagation_matches_reference(seed):
    rng = random.Random(seed + 200)
    compiled = compile_circuit(
        random_circuit(seed, num_gates=12, num_dffs=3)
    )
    manager = BddManager(num_vars=compiled.num_dffs)
    algebra = BddAlgebra(manager)
    sv = StateVariables(compiled.num_dffs)
    pi_values = [algebra.const(rng.randrange(2)) for _ in compiled.pis]
    good_state = [
        manager.mk_var(sv.x(i)) for i in range(compiled.num_dffs)
    ]
    # faulty state: some bits constant, some shared with the good state
    faulty_state = []
    for i, g in enumerate(good_state):
        r = rng.random()
        if r < 0.4:
            faulty_state.append(g)
        elif r < 0.7:
            faulty_state.append(algebra.const(rng.randrange(2)))
        else:
            faulty_state.append(manager.not_(g))
    check_circuit(compiled, algebra, pi_values, good_state, faulty_state)


def test_silent_fault_produces_no_diff():
    compiled = compile_circuit(random_circuit(3, num_gates=10))
    pi_values = [0] * compiled.num_pis
    good_state = [0] * compiled.num_dffs
    good_values = simulate_frame(compiled, BOOL, pi_values, good_state)
    # a stuck-at matching the fault-free value at a primary input
    pi_sig = compiled.pis[0]
    from repro.faults.model import Fault, STEM

    fault = Fault((STEM, pi_sig), good_values[pi_sig])
    result = propagate_fault(compiled, BOOL, good_values, fault, {})
    assert result.diff == {}
    assert result.next_state_diff == {}


def test_stem_fault_forces_value_despite_state_diff():
    compiled = compile_circuit(random_circuit(5, num_gates=10))
    pi_values = [1] * compiled.num_pis
    good_state = [0] * compiled.num_dffs
    good_values = simulate_frame(compiled, BOOL, pi_values, good_state)
    from repro.faults.model import Fault, STEM

    ppi0 = compiled.ppis[0]
    fault = Fault((STEM, ppi0), 0)
    # the faulty machine thinks the bit is 1, but the stem fault pins it
    result = propagate_fault(compiled, BOOL, good_values, fault, {0: 1})
    assert result.faulty_value(good_values, ppi0) == 0
