"""Information-monotonicity of the three-valued simulation.

Refining the initial state (X -> concrete bit) can only refine the
simulation: every lead that was known keeps its value, and the set of
detected faults can only grow.  This is the property that makes the
hybrid simulator's three-valued interludes sound: the snapshot state
(symbolic constants projected to 0/1, everything else X) is a legal,
less-informed starting point.
"""

import random

import pytest

from repro.circuit.compile import compile_circuit
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.engines.true_value import simulate_sequence
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.logic import threeval as tv
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit


def refine(state, rng):
    """Replace some X bits with concrete values."""
    return [
        rng.randrange(2) if v == tv.X and rng.random() < 0.5 else v
        for v in state
    ]


@pytest.mark.parametrize("seed", range(8))
def test_trace_values_monotone(seed):
    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed, num_dffs=4))
    sequence = random_sequence_for(compiled, 10, seed=seed)
    coarse_init = [
        tv.X if rng.random() < 0.7 else rng.randrange(2)
        for _ in range(compiled.num_dffs)
    ]
    fine_init = refine(coarse_init, rng)
    coarse = simulate_sequence(compiled, sequence,
                               initial_state=coarse_init)
    fine = simulate_sequence(compiled, sequence,
                             initial_state=fine_init)
    for frame_c, frame_f in zip(coarse.frames, fine.frames):
        for value_c, value_f in zip(frame_c, frame_f):
            if value_c != tv.X:
                assert value_f == value_c


@pytest.mark.parametrize("seed", range(5))
def test_detected_faults_monotone(seed):
    rng = random.Random(seed + 100)
    compiled = compile_circuit(random_circuit(seed, num_dffs=4))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 12, seed=seed)
    coarse_init = [tv.X] * compiled.num_dffs
    fine_init = refine(coarse_init, rng)

    fs_coarse = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs_coarse,
                      initial_state=coarse_init)
    fs_fine = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs_fine,
                      initial_state=fine_init)
    coarse_detected = {r.fault.key() for r in fs_coarse.detected()}
    fine_detected = {r.fault.key() for r in fs_fine.detected()}
    assert coarse_detected <= fine_detected
