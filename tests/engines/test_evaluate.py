"""Gate evaluation across all algebras, against exhaustive truth tables."""

import itertools

import pytest

from repro.bdd import BddManager
from repro.circuit import gates as gatelib
from repro.engines.algebra import BOOL, THREE_VALUED, BddAlgebra
from repro.engines.evaluate import eval_gate
from repro.logic import threeval as tv

BOOL_REFERENCE = {
    "AND": lambda vals: int(all(vals)),
    "NAND": lambda vals: 1 - int(all(vals)),
    "OR": lambda vals: int(any(vals)),
    "NOR": lambda vals: 1 - int(any(vals)),
    "XOR": lambda vals: sum(vals) % 2,
    "XNOR": lambda vals: 1 - sum(vals) % 2,
    "BUF": lambda vals: vals[0],
    "NOT": lambda vals: 1 - vals[0],
}


@pytest.mark.parametrize("kind", sorted(BOOL_REFERENCE))
@pytest.mark.parametrize("arity", [1, 2, 3])
def test_bool_eval_matches_reference(kind, arity):
    if kind in ("BUF", "NOT") and arity != 1:
        pytest.skip("unary gate")
    if kind not in ("BUF", "NOT") and arity < 2:
        pytest.skip("n-ary gate")
    for values in itertools.product((0, 1), repeat=arity):
        assert eval_gate(BOOL, kind, list(values)) == \
            BOOL_REFERENCE[kind](values)


def test_const_gates():
    assert eval_gate(BOOL, "CONST0", []) == 0
    assert eval_gate(BOOL, "CONST1", []) == 1
    assert eval_gate(THREE_VALUED, "CONST0", []) == tv.ZERO
    assert eval_gate(THREE_VALUED, "CONST1", []) == tv.ONE


def completions(v):
    return (0, 1) if v == tv.X else (v,)


@pytest.mark.parametrize("kind", sorted(BOOL_REFERENCE))
def test_threeval_eval_abstracts_bool(kind):
    arity = 1 if kind in ("BUF", "NOT") else 2
    for values in itertools.product(tv.all_values(), repeat=arity):
        result = eval_gate(THREE_VALUED, kind, list(values))
        outcomes = {
            BOOL_REFERENCE[kind](comb)
            for comb in itertools.product(*(completions(v) for v in values))
        }
        if result != tv.X:
            assert outcomes == {result}
        # X is always a legal (if pessimistic) answer


@pytest.mark.parametrize("kind", sorted(BOOL_REFERENCE))
def test_bdd_eval_matches_bool(kind):
    arity = 1 if kind in ("BUF", "NOT") else 3
    manager = BddManager(num_vars=arity)
    algebra = BddAlgebra(manager)
    operands = [manager.mk_var(i) for i in range(arity)]
    node = eval_gate(algebra, kind, operands)
    for values in itertools.product((0, 1), repeat=arity):
        assignment = dict(enumerate(values))
        assert manager.evaluate(node, assignment) == \
            BOOL_REFERENCE[kind](values)
