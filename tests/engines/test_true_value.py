"""Sequence-level fault-free simulation and the 3V/2V abstraction."""

import random

import pytest

from repro.circuit.compile import compile_circuit
from repro.engines.algebra import BOOL
from repro.engines.true_value import (
    simulate_sequence,
    value_histories,
)
from repro.logic import threeval as tv
from repro.logic.fourval import IX_X, ix_saw_one, ix_saw_zero
from tests.util import random_circuit


@pytest.mark.parametrize("seed", range(6))
def test_three_valued_abstracts_every_completion(seed):
    """Whatever the real initial state was, the Boolean trace agrees
    with the three-valued trace wherever the latter is known."""
    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed, num_dffs=3))
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis) for _ in range(12)
    ]
    trace3 = simulate_sequence(compiled, sequence)
    for trial in range(4):
        initial = [rng.randrange(2) for _ in compiled.ppis]
        trace2 = simulate_sequence(
            compiled, sequence, initial_state=initial, algebra=BOOL
        )
        for out3, out2 in zip(trace3.outputs, trace2.outputs):
            for v3, v2 in zip(out3, out2):
                if v3 != tv.X:
                    assert v3 == v2


def test_boolean_needs_initial_state():
    compiled = compile_circuit(random_circuit(1))
    with pytest.raises(ValueError):
        simulate_sequence(compiled, [(0,) * compiled.num_pis],
                          algebra=BOOL)


def test_initial_state_width_checked():
    compiled = compile_circuit(random_circuit(1, num_dffs=3))
    with pytest.raises(ValueError):
        simulate_sequence(
            compiled, [(0,) * compiled.num_pis], initial_state=[tv.X]
        )


def test_trace_shapes():
    compiled = compile_circuit(random_circuit(2, num_dffs=2, num_pos=3))
    sequence = [(0,) * compiled.num_pis] * 5
    trace = simulate_sequence(compiled, sequence)
    assert len(trace) == 5
    assert len(trace.outputs) == 5
    assert len(trace.states) == 6  # includes the initial state
    assert all(len(o) == compiled.num_pos for o in trace.outputs)


@pytest.mark.parametrize("seed", range(5))
def test_value_histories_match_trace(seed):
    rng = random.Random(seed)
    compiled = compile_circuit(random_circuit(seed))
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis) for _ in range(10)
    ]
    history = value_histories(compiled, sequence)
    trace = simulate_sequence(compiled, sequence)
    for sig in range(compiled.num_signals):
        saw = {frame[sig] for frame in trace.frames}
        assert ix_saw_zero(history[sig]) == (tv.ZERO in saw)
        assert ix_saw_one(history[sig]) == (tv.ONE in saw)


def test_value_histories_all_x_without_inputs_reaching():
    # a circuit whose state never initialises: histories stay {X}
    from repro.circuits.generators import counter

    compiled = compile_circuit(counter(4))
    sequence = [(1,)] * 8
    history = value_histories(compiled, sequence)
    for q_sig in compiled.ppis:
        assert history[q_sig] == IX_X
