"""Serial and word-parallel three-valued fault simulators.

Key properties:

* both engines detect exactly the same fault set (they implement the
  same semantics),
* every detection is *sound*: for any pair of concrete initial states,
  the faulty machine's Boolean response really differs from the
  fault-free one at the reported (or an earlier) position,
* fault dropping does not change the detected set.
"""

import random

import pytest

from repro.baselines.enumeration import all_states, simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuits.iscas import s27
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.collapse import collapse_faults
from repro.faults.status import BY_3V, FaultSet
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit


def detected_keys(fault_set):
    return {r.fault.key() for r in fault_set.detected()}


@pytest.mark.parametrize("seed", range(6))
def test_serial_equals_parallel(seed):
    compiled = compile_circuit(random_circuit(seed, num_gates=18))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 30, seed=seed)
    fs_serial = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs_serial)
    fs_parallel = FaultSet(faults)
    fault_simulate_3v_parallel(compiled, sequence, fs_parallel,
                               pack_width=7)
    assert detected_keys(fs_serial) == detected_keys(fs_parallel)


def test_parallel_pack_width_irrelevant():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 40, seed=2)
    reference = None
    for width in (1, 3, 64, 1024):
        fs = FaultSet(faults)
        fault_simulate_3v_parallel(compiled, sequence, fs,
                                   pack_width=width)
        keys = detected_keys(fs)
        if reference is None:
            reference = keys
        assert keys == reference


@pytest.mark.parametrize("seed", range(4))
def test_detections_are_sound(seed):
    """A 3V-SOT detection certifies a Boolean output difference for
    EVERY pair of initial states, by Definition 2."""
    compiled = compile_circuit(
        random_circuit(seed, num_dffs=3, num_gates=14)
    )
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 20, seed=seed)
    fs = FaultSet(faults)
    fault_simulate_3v(compiled, sequence, fs)
    good_responses = {
        simulate_concrete(compiled, sequence, p)
        for p in all_states(compiled.num_dffs)
    }
    for record in fs.detected(BY_3V):
        t = record.detected_at
        faulty_responses = {
            simulate_concrete(compiled, sequence, q, record.fault)
            for q in all_states(compiled.num_dffs)
        }
        # some position up to t distinguishes every (good, faulty) pair
        prefix_good = {resp[:t] for resp in good_responses}
        prefix_faulty = {resp[:t] for resp in faulty_responses}
        assert prefix_good.isdisjoint(prefix_faulty), record


def test_dropping_does_not_change_detections(s27_compiled, s27_faults,
                                             s27_sequence):
    fs_drop = FaultSet(s27_faults)
    fault_simulate_3v(s27_compiled, s27_sequence, fs_drop,
                      drop_detected=True)
    fs_keep = FaultSet(s27_faults)
    fault_simulate_3v(s27_compiled, s27_sequence, fs_keep,
                      drop_detected=False)
    assert detected_keys(fs_drop) == detected_keys(fs_keep)


def test_detected_at_is_first_detection(s27_compiled, s27_faults,
                                        s27_sequence):
    fs = FaultSet(s27_faults)
    fault_simulate_3v(s27_compiled, s27_sequence, fs)
    for record in fs.detected():
        shorter = s27_sequence[: record.detected_at - 1]
        fs2 = FaultSet([record.fault])
        fault_simulate_3v(s27_compiled, shorter, fs2)
        assert fs2.counts()["detected"] == 0


def test_skips_non_undetected_records(s27_compiled, s27_faults,
                                      s27_sequence):
    fs = FaultSet(s27_faults)
    for record in fs.records[:5]:
        record.mark_x_redundant()
    fault_simulate_3v(s27_compiled, s27_sequence, fs)
    for record in fs.records[:5]:
        assert record.status == "x-redundant"


def test_known_initial_state_detects_more(s27_compiled, s27_faults):
    sequence = random_sequence_for(s27_compiled, 40, seed=9)
    fs_x = FaultSet(s27_faults)
    fault_simulate_3v(s27_compiled, sequence, fs_x)
    fs_known = FaultSet(s27_faults)
    fault_simulate_3v(
        s27_compiled, sequence, fs_known,
        initial_state=[0] * s27_compiled.num_dffs,
    )
    assert detected_keys(fs_x) <= detected_keys(fs_known)


def test_frame_hook_receives_absolute_pack_context(s27_compiled,
                                                   s27_faults,
                                                   s27_sequence):
    # per-pack sweeps restart their frame count; hooks that declare a
    # ``pack`` parameter get the absolute pack index alongside it
    seen = []

    def hook(frame, pack=None):
        seen.append((pack, frame))

    fs = FaultSet(s27_faults)
    fault_simulate_3v_parallel(
        s27_compiled, s27_sequence, fs, pack_width=8, frame_hook=hook
    )
    packs = sorted({pack for pack, _ in seen})
    assert packs == list(range(len(packs)))
    assert len(packs) > 1  # 32 faults at width 8 -> several packs
    for pack, frame in seen:
        assert 0 <= frame <= len(s27_sequence)


def test_frame_hook_without_pack_param_still_works(s27_compiled,
                                                   s27_faults,
                                                   s27_sequence):
    frames = []
    fs = FaultSet(s27_faults)
    fault_simulate_3v_parallel(
        s27_compiled, s27_sequence, fs, pack_width=8,
        frame_hook=frames.append,
    )
    assert frames  # legacy single-argument hooks keep working
