"""Behavioural contracts of the extended generator classes."""

import pytest

from repro.baselines.enumeration import simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuit.validate import validate
from repro.circuits import generators as gen
from repro.engines.true_value import simulate_sequence
from repro.logic import threeval as tv


def test_gray_counter_outputs_change_one_bit_per_step():
    compiled = compile_circuit(gen.gray_counter(4))
    seq = [(1,)] * 16
    outputs = simulate_concrete(compiled, seq, (0, 0, 0, 0))
    for prev, cur in zip(outputs, outputs[1:]):
        hamming = sum(a != b for a, b in zip(prev, cur))
        assert hamming == 1  # the defining Gray-code property


def test_gray_counter_is_3v_opaque():
    compiled = compile_circuit(gen.gray_counter(4))
    trace = simulate_sequence(compiled, [(1,)] * 10)
    assert all(v == tv.X for v in trace.states[-1])


def test_one_hot_ring_start_loads_slot0():
    compiled = compile_circuit(gen.one_hot_ring(5))
    seq = [(1,)] + [(0,)] * 7
    # from garbage: start pulse forces one-hot at slot 0, then rotates
    outputs = simulate_concrete(compiled, seq, (1, 1, 0, 1, 0))
    # tick = q4; after the start pulse the hot bit reaches slot 4 at
    # frame 6 (start frame + 4 rotations + observation offset)
    ticks = [o[1] for o in outputs]
    assert ticks[5] == 1 or ticks[6] == 1


def test_one_hot_ring_alarm_on_double_hot():
    compiled = compile_circuit(gen.one_hot_ring(4))
    outputs = simulate_concrete(compiled, [(0,)], (1, 1, 0, 0))
    assert outputs[0][0] == 1  # alarm fires on the illegal state


def test_one_hot_ring_is_3v_initialisable():
    compiled = compile_circuit(gen.one_hot_ring(5))
    trace = simulate_sequence(compiled, [(1,)] + [(0,)] * 5)
    assert all(v != tv.X for v in trace.states[-1])


def test_fifo_controller_counts_and_decodes():
    compiled = compile_circuit(gen.fifo_controller(3))
    # reset, then 7 pushes -> full; then 7 pops -> empty; one idle
    # frame at the end so the final (drained) count is observable
    seq = ([(0, 0, 1)] + [(1, 0, 0)] * 7 + [(0, 1, 0)] * 7
           + [(0, 0, 0)])
    outputs = simulate_concrete(compiled, seq, (1, 0, 1))
    empties = [o[0] for o in outputs]
    fulls = [o[1] for o in outputs]
    assert empties[1] == 1  # right after reset
    assert fulls[8] == 1  # after 7 pushes (count = 7 = 0b111)
    assert empties[-1] == 1  # drained again


def test_fifo_holds_on_simultaneous_push_pop():
    compiled = compile_circuit(gen.fifo_controller(3))
    seq = [(0, 0, 1), (1, 0, 0)] + [(1, 1, 0)] * 4
    outputs = simulate_concrete(compiled, seq, (0, 0, 0))
    # count stays at 1: never empty, never full afterwards
    for empty, full in outputs[2:]:
        assert empty == 0 and full == 0


def test_serial_mac_validates_and_runs():
    circuit = gen.serial_mac(6)
    validate(circuit)
    compiled = compile_circuit(circuit)
    out = simulate_concrete(compiled, [(1,), (0,), (1,)] * 3,
                            tuple([0] * compiled.num_dffs))
    assert len(out) == 9


def test_serial_mac_stresses_bdds():
    """The point of the generator: symbolic state functions blow past a
    small node limit within a few frames."""
    from repro.bdd.errors import SpaceLimitExceeded
    from repro.symbolic.fault_sim import SymbolicSession

    compiled = compile_circuit(gen.serial_mac(10))
    session = SymbolicSession(compiled, "SOT", node_limit=1500)
    with pytest.raises(SpaceLimitExceeded):
        for vector in [(1,), (0,)] * 20:
            session.step(vector)


def test_new_registry_entries_valid():
    from repro.circuits.registry import get_circuit

    for name in ("gray8", "ring10", "fifo5", "mac10"):
        compiled = compile_circuit(get_circuit(name))
        assert compiled.num_pos >= 1
