"""Synthetic benchmark generators: structural validity and the
behavioural contracts the paper-row mapping relies on."""

import pytest

from repro.baselines.enumeration import simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuit.validate import validate
from repro.circuits import generators as gen
from repro.circuits.registry import PAPER_ROWS, available, get_circuit
from repro.engines.true_value import simulate_sequence
from repro.logic import threeval as tv
from repro.sequences.random_seq import random_sequence_for


@pytest.mark.parametrize("name", available())
def test_registry_circuits_are_valid(name):
    circuit = get_circuit(name)
    validate(circuit)
    compiled = compile_circuit(circuit)
    assert compiled.num_pos >= 1


def test_unknown_registry_name():
    with pytest.raises(ValueError, match="unknown circuit"):
        get_circuit("s99999")


def test_paper_rows_all_resolvable():
    from repro.circuits.registry import paper_row_circuit

    seen = set()
    for paper, ours, note in PAPER_ROWS:
        circuit, got_note = paper_row_circuit(paper)
        assert circuit.num_gates > 0
        if paper not in seen:
            # lookup returns the FIRST stand-in recorded for a row
            assert note == got_note
        seen.add(paper)


def test_counter_counts():
    compiled = compile_circuit(gen.counter(4))
    # from state 0 with enable, the counter increments mod 16
    state = (0, 0, 0, 0)
    seq = [(1,)] * 20
    outputs = simulate_concrete(compiled, seq, state)
    # tc fires on the frame where all bits are 1 (state 15)
    tc_frames = [t for t, (tc, _msb) in enumerate(outputs) if tc]
    assert tc_frames == [15]


def test_counter_holds_without_enable():
    compiled = compile_circuit(gen.counter(4))
    outputs = simulate_concrete(compiled, [(0,)] * 5, (1, 0, 1, 0))
    msbs = {msb for _tc, msb in outputs}
    assert msbs == {0}  # msb = bit 3 stays 0


def test_shift_register_shifts():
    compiled = compile_circuit(gen.shift_register(4))
    data = [1, 0, 1, 1, 0, 0, 1, 0]
    seq = [(b,) for b in data]
    outputs = simulate_concrete(compiled, seq, (0, 0, 0, 0))
    souts = [o[0] for o in outputs]
    # sout shows the state BEFORE the shift: data delayed by 4, so the
    # first 4 frames show the initial zeros
    assert souts == [0, 0, 0, 0] + data[:4]


def test_johnson_cycles():
    compiled = compile_circuit(gen.johnson(3))
    seq = [(1,)] * 12
    outputs = simulate_concrete(compiled, seq, (0, 0, 0))
    # Johnson counter from 000: 100, 110, 111, 011, 001, 000, ... period 6
    all1 = [o[0] for o in outputs]
    assert all1[:6] == [0, 0, 0, 1, 0, 0]  # q0&q2 high at state 111


def test_lfsr_holds_and_shifts():
    compiled = compile_circuit(gen.lfsr(4, taps=(0, 3)))
    hold = simulate_concrete(compiled, [(0,)] * 4, (1, 0, 0, 1))
    assert {o[0] for o in hold} == {1}  # q3 held at 1
    run = simulate_concrete(compiled, [(1,)] * 4, (1, 0, 0, 1))
    assert [o[0] for o in run] == [1, 0, 0, 1]  # shifting out


def test_sync_controller_is_2v_synchronisable_but_3v_opaque():
    compiled = compile_circuit(gen.sync_controller(4))
    seq = [(1, 1)] * 6  # push ones through the chain
    # 2-valued: every initial state converges to the same state
    finals = set()
    from repro.baselines.enumeration import all_states
    from repro.engines.algebra import BOOL

    for p in all_states(4):
        trace = simulate_sequence(
            compiled, seq, initial_state=list(p), algebra=BOOL
        )
        finals.add(tuple(trace.states[-1]))
    assert len(finals) == 1
    # 3-valued: state stays X forever
    trace3 = simulate_sequence(compiled, seq)
    assert all(v == tv.X for v in trace3.states[-1])


def test_resettable_counter_resets():
    compiled = compile_circuit(gen.resettable_counter(4))
    seq = [(1, 1)] + [(1, 0)] * 3  # reset, then count
    outputs = simulate_concrete(compiled, seq, (1, 1, 1, 1))
    trace = simulate_sequence(compiled, seq)
    # after the reset frame the three-valued state is fully known
    assert all(v != tv.X for v in trace.states[2])


def test_random_fsm_deterministic_construction():
    a = gen.random_fsm(12, seed=5)
    b = gen.random_fsm(12, seed=5)
    assert a.gates == b.gates
    c = gen.random_fsm(12, seed=6)
    assert a.gates != c.gates


def test_random_fsm_full_reset_initialises_3v():
    compiled = compile_circuit(
        gen.random_fsm(8, num_inputs=2, seed=2, reset="full")
    )
    seq = [(1, 0)] + [(0, 1)] * 3
    trace = simulate_sequence(compiled, seq)
    assert all(v != tv.X for v in trace.states[1])


def test_random_fsm_partial_reset_leaves_lsb_unknown():
    compiled = compile_circuit(
        gen.random_fsm(8, num_inputs=2, seed=2, reset="partial")
    )
    seq = [(1, 0)]
    trace = simulate_sequence(compiled, seq)
    state = trace.states[1]
    assert state[0] == tv.X
    assert all(v != tv.X for v in state[1:])


def test_random_fsm_bad_reset_rejected():
    with pytest.raises(ValueError):
        gen.random_fsm(8, reset="sometimes")


def test_pipeline_flushes_in_stage_count():
    compiled = compile_circuit(gen.pipeline_datapath(4, 3))
    seq = random_sequence_for(compiled, 6, seed=1)
    trace = simulate_sequence(compiled, seq)
    # after 3 frames every register holds input-derived (known) data
    assert all(v != tv.X for v in trace.states[3])


def test_traffic_light_mutual_exclusion():
    compiled = compile_circuit(gen.traffic_light())
    seq = [(0, 1)] + [(1, 0)] * 30  # reset, then keep requesting
    outputs = simulate_concrete(compiled, seq, (0, 0, 0))
    for ns_green, ew_green, _timer in outputs:
        assert not (ns_green and ew_green)
    # both phases are eventually served
    assert any(o[0] for o in outputs)
    assert any(o[1] for o in outputs)


def test_nlfsr_deterministic():
    a = gen.nlfsr(10, seed=3)
    b = gen.nlfsr(10, seed=3)
    assert a.gates == b.gates
