"""Shared helpers for the test suite: random circuit generation and a
slow-but-obviously-correct reference implementation of faulty-machine
evaluation used to cross-check the event-driven engine."""

import random

from repro.circuit import gates as gatelib
from repro.circuit.netlist import Circuit
from repro.engines.evaluate import eval_gate
from repro.faults.model import BRANCH, DBRANCH, STEM

GATE_KINDS = ("AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF")


def random_circuit(
    seed,
    num_pis=3,
    num_dffs=3,
    num_gates=12,
    num_pos=2,
    name=None,
):
    """A random, valid, connected-ish sequential circuit.

    Gates draw fanins from all previously available nets, so the
    combinational part is acyclic by construction; flip-flop D inputs
    and primary outputs are drawn from the full net list at the end.
    """
    rng = random.Random(seed)
    c = Circuit(name or f"rand{seed}")
    nets = []
    for i in range(num_pis):
        c.add_input(f"i{i}")
        nets.append(f"i{i}")
    for i in range(num_dffs):
        # D inputs are patched below once gate nets exist
        c.add_dff(f"q{i}", "__pending__")
        nets.append(f"q{i}")
    for g in range(num_gates):
        kind = rng.choice(GATE_KINDS)
        arity = 1 if kind in ("NOT", "BUF") else rng.choice((2, 2, 2, 3))
        fanins = [rng.choice(nets) for _ in range(arity)]
        net = f"g{g}"
        c.add_gate(net, kind, fanins)
        nets.append(net)
    gate_nets = [f"g{g}" for g in range(num_gates)]
    for i in range(num_dffs):
        c.dffs[f"q{i}"] = rng.choice(gate_nets)
    for _ in range(num_pos):
        c.add_output(rng.choice(gate_nets))
    return c


def reference_faulty_values(compiled, algebra, pi_values, faulty_state,
                            fault):
    """Full (non-event-driven) evaluation of the faulty machine's frame.

    Returns the per-signal value list; *faulty_state* is the faulty
    machine's complete present state (aligned with ``compiled.ppis``).
    """
    values = [None] * compiled.num_signals
    stem_force = None
    branch = None
    if fault is not None:
        if fault.lead[0] == STEM:
            stem_force = (fault.lead[1], algebra.const(fault.value))
        elif fault.lead[0] == BRANCH:
            branch = (fault.lead[1], fault.lead[2])

    for sig, value in zip(compiled.pis, pi_values):
        values[sig] = value
    for sig, value in zip(compiled.ppis, faulty_state):
        values[sig] = value
    if stem_force is not None and values[stem_force[0]] is not None:
        values[stem_force[0]] = stem_force[1]

    for cg in compiled.gates:
        if stem_force is not None and cg.out == stem_force[0]:
            values[cg.out] = stem_force[1]
            continue
        operands = [values[src] for src in cg.fanins]
        if branch is not None and cg.pos == branch[0]:
            operands[branch[1]] = algebra.const(fault.value)
        values[cg.out] = eval_gate(algebra, cg.kind, operands)
    return values


def reference_faulty_next_state(compiled, algebra, values, fault):
    """Next state of the faulty machine given its frame *values*."""
    state = [values[sig] for sig in compiled.dff_d]
    if fault is not None and fault.lead[0] == DBRANCH:
        state[fault.lead[1]] = algebra.const(fault.value)
    return state
