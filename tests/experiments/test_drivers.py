"""Experiment drivers: small-configuration smoke runs with shape checks."""

import pytest

from repro.experiments import figures, table1, table2, table4
from repro.experiments.common import format_table, paper_name_for


def test_format_table():
    text = format_table(["a", "bb"], [(1, 22), (333, 4)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "333" in text


def test_paper_name_for():
    assert paper_name_for("ctr8") == "s208.1"
    assert paper_name_for("not-a-circuit") == "-"


def test_table1_row_invariants():
    row = table1.run_circuit("ctr8", length=60, seed=1)
    assert row.x_red <= row.num_faults
    assert row.detected <= row.num_faults - row.x_red
    assert row.time_x01 > 0 and row.time_x01p >= 0
    assert row.paper == "s208.1"


def test_table1_render():
    rows = table1.run_table1(circuits=["ctr8", "shift8"], length=40)
    text = table1.render(rows)
    assert "Table I" in text
    assert "ctr8" in text and "shift8" in text
    assert "38%" in text  # the paper-comparison footnote


def test_table2_row_invariants():
    row = table2.run_circuit("syncc6", length=60, seed=1)
    sot = row.outcomes["SOT"].detected
    rmot = row.outcomes["rMOT"].detected
    mot = row.outcomes["MOT"].detected
    assert 0 <= sot <= rmot <= row.f_u
    assert rmot <= mot or not row.outcomes["MOT"].exact
    assert row.f_u <= row.num_faults


def test_table2_render_marks_inexact():
    row = table2.run_circuit("nlfsr12", length=20, seed=1,
                             node_limit=400)
    if not row.outcomes["MOT"].exact:
        assert row.outcomes["MOT"].render_detected().startswith("*")
    text = table2.render([row])
    assert "nlfsr12" in text


def test_table3_uses_deterministic_sequences():
    rows = table2.run_table(
        circuits=["shift8"], deterministic=True, length=60
    )
    assert rows[0].seq_len <= 60
    text = table2.render(rows, deterministic=True)
    assert "III" in text


def test_table4_row():
    row = table4.run_circuit("syncc6", length=40, seed=1)
    assert row.bdd_size >= 2
    assert row.eval_seconds >= 0
    assert row.num_pos == 2
    text = table4.render([row])
    assert "BDD size" in text


def test_exactness_summary():
    rows = [
        table2.run_circuit("syncc6", length=40, seed=1),
        table2.run_circuit("ctr8", length=40, seed=1),
    ]
    mot_exact, rmot_matches, better, total = table2.exactness_summary(
        rows
    )
    assert total == 2
    assert 0 <= rmot_matches <= mot_exact <= total
    # ctr8 is the s208.1 stand-in: MOT strictly better than rMOT
    assert "ctr8" in better
    text = table2.render(rows)
    assert "exact MOT coverage" in text


def test_coverage_curve_monotone():
    from repro.experiments.coverage_curve import render, run_curve

    compiled, points = run_curve("syncc6", lengths=(5, 15, 30), seed=1)
    for strategy in ("3v", "SOT", "rMOT", "MOT"):
        series = [p.detected[strategy] for p in points]
        assert series == sorted(series)  # longer prefixes detect more
    for point in points:
        assert point.detected["SOT"] <= point.detected["rMOT"]
    text = render("syncc6", compiled, points)
    assert "coverage curve" in text


def test_stats_runner():
    from repro.experiments.stats_runner import render_stats, run_stats

    stats = run_stats("syncc6", seeds=(1, 2), length=40)
    for strategy in ("SOT", "rMOT", "MOT"):
        assert len(stats[strategy].samples) == 2
        assert stats[strategy].minimum <= stats[strategy].mean \
            <= stats[strategy].maximum
    # accuracy ordering holds in the mean as well
    assert stats["SOT"].mean <= stats["rMOT"].mean <= stats["MOT"].mean
    text = render_stats({"syncc6": stats})
    assert "mean±stdev" in text


def test_figures_driver():
    text = figures.run_all_figures()
    assert "Figure 1" in text
    assert "Figure 2" in text
    assert "Figure 3" in text
    assert "D(x,y) == 0" in text or "MOT-detectable" in text
