"""Disk governor, checkpoint compaction and the campaign relief ladder.

The exactness contract under test: every relief rung is semantics-
preserving.  A compacted checkpoint resumes to the same verdicts as
the original, a disk-pressured campaign either completes with verdicts
identical to an unconstrained run or surrenders cleanly with a
resumable checkpoint, and a failed compaction never damages the
original file or leaves temp files behind.
"""

import glob
import json
import os

import pytest

from repro import failpoints
from repro.runtime import resume_campaign, run_campaign
from repro.runtime.checkpoint import (
    JsonlWriter,
    read_jsonl_records,
    write_json_atomic,
)
from repro.runtime.disk import (
    LEVEL_HARD,
    LEVEL_OK,
    LEVEL_SOFT,
    DiskConfig,
    DiskGovernor,
    DiskSampler,
    artifact_usage_bytes,
    compact_checkpoint,
    read_free_bytes,
    rewrite_jsonl_atomic,
)
from repro.runtime.errors import CheckpointError, DiskPressureExceeded
from repro.runtime.fsck import fsck_file, fsck_paths, repair_file


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.clear()
    yield
    failpoints.clear()


def detected_map(fault_set):
    return {
        r.fault.key(): (r.detected_by, r.detected_at)
        for r in fault_set.detected()
    }


def no_tmp_orphans(directory):
    return glob.glob(os.path.join(str(directory), "*.tmp")) == []


# ----------------------------------------------------------------------
# probes and sampler
# ----------------------------------------------------------------------
def test_read_free_bytes_real_filesystem(tmp_path):
    free = read_free_bytes(str(tmp_path))
    assert isinstance(free, int) and free > 0


def test_read_free_bytes_statvfs_failpoint_lies(tmp_path):
    failpoints.set_failpoint("disk.statvfs", "once")
    assert read_free_bytes(str(tmp_path)) == 0
    assert read_free_bytes(str(tmp_path)) > 0


def test_artifact_usage_counts_files_and_walks_dirs(tmp_path):
    (tmp_path / "a.bin").write_bytes(b"x" * 100)
    sub = tmp_path / "jobs" / "job-1"
    sub.mkdir(parents=True)
    (sub / "b.bin").write_bytes(b"y" * 50)
    assert artifact_usage_bytes([str(tmp_path / "a.bin")]) == 100
    assert artifact_usage_bytes([str(tmp_path)]) == 150
    assert artifact_usage_bytes([str(tmp_path / "missing")]) == 0
    assert artifact_usage_bytes([None]) == 0


def test_sampler_throttles_and_tracks_extremes():
    usage_values = iter([10, 50, 30])
    free_values = iter([1000, 200, 600])
    reads = {"usage": 0, "free": 0}

    def read_usage(paths):
        reads["usage"] += 1
        return next(usage_values)

    def read_free(path):
        reads["free"] += 1
        return next(free_values)

    sampler = DiskSampler(["x"], refresh=3, read_free=read_free,
                          read_usage=read_usage)
    results = [sampler() for _ in range(7)]
    # measured on calls 1, 4 and 7; cached in between
    assert reads == {"usage": 3, "free": 3}
    assert results[0] == (10, 1000)
    assert results[3] == (50, 200)
    assert results[6] == (30, 600)
    assert sampler.peak_usage == 50
    assert sampler.low_free == 200


def test_sampler_free_unavailable_is_permanent():
    sampler = DiskSampler(["x"], refresh=1, read_free=lambda p: None,
                          read_usage=lambda paths: 7)
    assert sampler() == (7, None)
    assert sampler() == (7, None)
    assert sampler.low_free is None


# ----------------------------------------------------------------------
# config and governor
# ----------------------------------------------------------------------
def test_disk_config_validation():
    with pytest.raises(ValueError):
        DiskConfig(budget=0)
    with pytest.raises(ValueError):
        DiskConfig(free_floor=-1)
    with pytest.raises(ValueError):
        DiskConfig(soft=0.0)
    assert not DiskConfig().enabled
    assert DiskConfig(budget=10).enabled
    assert DiskConfig(free_floor=10).enabled


@pytest.mark.parametrize("usage, free, expected", [
    (10, None, LEVEL_OK),
    (80, None, LEVEL_SOFT),      # 80% of budget
    (100, None, LEVEL_HARD),
    (10, 5_000, LEVEL_OK),
    (10, 1_200, LEVEL_SOFT),     # free <= floor / soft
    (10, 1_000, LEVEL_HARD),     # free <= floor
])
def test_governor_level_matrix(usage, free, expected):
    governor = DiskGovernor(DiskConfig(budget=100, free_floor=1_000))
    assert governor.level_of(usage, free) == expected


def test_governor_counts_crossings_and_hard_stops(tmp_path):
    target = tmp_path / "x.bin"
    target.write_bytes(b"z" * 100)
    governor = DiskGovernor(DiskConfig(budget=50, refresh=1),
                            paths=[target])
    assert governor.check() == LEVEL_HARD
    assert governor.hard_events == 1
    with pytest.raises(DiskPressureExceeded) as info:
        governor.hard_stop(frame=3)
    exc = info.value
    assert exc.kind == "disk"
    assert exc.limit == 50 and exc.observed == 100
    assert exc.frame == 3
    assert exc.path == str(target)
    assert exc.context()["path"] == str(target)


def test_governor_accounting_snapshot(tmp_path):
    governor = DiskGovernor(DiskConfig(budget=1000), paths=[tmp_path])
    governor.check()
    governor.note_compaction(500, 200)
    governor.note_stretch()
    accounting = governor.accounting()
    assert accounting["disk_compactions"] == 1
    assert accounting["disk_reclaimed_bytes"] == 300
    assert accounting["disk_stretches"] == 1


# ----------------------------------------------------------------------
# atomic rewrite: byte stability and crash safety
# ----------------------------------------------------------------------
def _write_jsonl(path, records, site_prefix="checkpoint"):
    writer = JsonlWriter(str(path), site_prefix=site_prefix)
    for record in records:
        writer._write(dict(record))
    writer.close()


def test_rewrite_jsonl_atomic_is_byte_stable(tmp_path):
    path = tmp_path / "file.jsonl"
    _write_jsonl(path, [
        {"type": "header", "a": 1},
        {"type": "checkpoint", "frame": 5},
    ])
    original = path.read_bytes()
    rewrite_jsonl_atomic(path, list(read_jsonl_records(path)))
    assert path.read_bytes() == original
    assert no_tmp_orphans(tmp_path)


def test_rewrite_crash_failpoint_preserves_original(tmp_path):
    path = tmp_path / "file.jsonl"
    _write_jsonl(path, [{"type": "header", "a": 1}])
    original = path.read_bytes()
    failpoints.set_failpoint("disk.compact.crash", "once")
    with pytest.raises(CheckpointError, match="disk.compact.crash"):
        rewrite_jsonl_atomic(path, [{"type": "header", "a": 2}])
    assert path.read_bytes() == original
    assert no_tmp_orphans(tmp_path)
    # disarmed: the retry succeeds
    rewrite_jsonl_atomic(path, [{"type": "header", "a": 2}])
    records = list(read_jsonl_records(path))
    assert records[0]["a"] == 2


def test_rewrite_enospc_failpoint_cleans_temp(tmp_path):
    path = tmp_path / "file.jsonl"
    _write_jsonl(path, [{"type": "header", "a": 1}])
    original = path.read_bytes()
    failpoints.set_failpoint("checkpoint.write.enospc", "once")
    # the writer wraps the injected ENOSPC into its typed error
    with pytest.raises(CheckpointError, match="no space left"):
        rewrite_jsonl_atomic(path, [{"type": "header", "a": 2}])
    assert path.read_bytes() == original
    assert no_tmp_orphans(tmp_path)


def test_rewrite_rename_failure_cleans_temp(tmp_path, monkeypatch):
    path = tmp_path / "file.jsonl"
    _write_jsonl(path, [{"type": "header", "a": 1}])
    original = path.read_bytes()

    def exploding_replace(src, dst):
        raise OSError("injected rename failure")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="injected rename"):
        rewrite_jsonl_atomic(path, [{"type": "header", "a": 2}])
    monkeypatch.undo()
    assert path.read_bytes() == original
    assert no_tmp_orphans(tmp_path)


def test_write_json_atomic_fsync_failure_cleans_temp(tmp_path,
                                                     monkeypatch):
    target = tmp_path / "doc.json"

    def exploding_fsync(fd):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "fsync", exploding_fsync)
    with pytest.raises(OSError):
        write_json_atomic(str(target), {"a": 1})
    monkeypatch.undo()
    assert not target.exists()
    assert no_tmp_orphans(tmp_path)
    write_json_atomic(str(target), {"a": 1})
    assert json.loads(target.read_text()) == {"a": 1}


# ----------------------------------------------------------------------
# checkpoint compaction: campaign and fabric flavors
# ----------------------------------------------------------------------
def _campaign_checkpoint(tmp_path, compiled, fault_set, sequence):
    path = tmp_path / "run.ckpt"
    result = run_campaign(
        compiled, sequence, fault_set,
        strategy="MOT", node_limit=300_000,
        checkpoint_path=str(path), checkpoint_every=5,
    )
    assert result.stopped == "completed"
    return path


def test_compact_campaign_checkpoint_resumes_identically(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    baseline_set = FaultSet(s27_faults)
    path = _campaign_checkpoint(
        tmp_path, s27_compiled, baseline_set, s27_sequence
    )
    before = list(read_jsonl_records(path))
    stats = compact_checkpoint(path)
    assert stats["kind"] == "campaign"
    assert stats["records_after"] <= stats["records_before"]
    assert stats["bytes_after"] <= stats["bytes_before"]
    after = list(read_jsonl_records(path))
    # survivors are byte-identical records: header + last checkpoint
    # (+ last progress), all present in the original record list
    raw_before = {json.dumps(r, sort_keys=True) for r in before}
    assert all(
        json.dumps(r, sort_keys=True) in raw_before for r in after
    )
    assert fsck_file(str(path)).ok
    resumed_set = FaultSet(s27_faults)
    result = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set,
    )
    assert result.stopped == "completed"
    assert detected_map(resumed_set) == detected_map(baseline_set)


def test_compact_fabric_checkpoint_keeps_latest_per_shard(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    path = tmp_path / "fabric.ckpt"
    fault_set = FaultSet(s27_faults)
    result = run_campaign(
        s27_compiled, s27_sequence, fault_set,
        workers=0, shard_size=4,
        checkpoint_path=str(path),
    )
    assert result.stopped == "completed"
    stats = compact_checkpoint(path)
    assert stats["kind"] == "fabric"
    records = list(read_jsonl_records(path))
    shard_ids = [
        tuple(r["id"]) for r in records if r.get("type") == "shard"
    ]
    assert len(shard_ids) == len(set(shard_ids)), \
        "compaction must keep one record per shard"
    assert fsck_file(str(path)).ok


def test_compact_refuses_corrupt_files(tmp_path):
    path = tmp_path / "bad.jsonl"
    _write_jsonl(path, [{"type": "header", "a": 1},
                        {"type": "checkpoint", "frame": 1}])
    lines = path.read_text().splitlines(keepends=True)
    damaged = lines[1].replace('"frame": 1', '"frame": 2')
    path.write_text(lines[0] + damaged)
    with pytest.raises(CheckpointError):
        compact_checkpoint(path)


def test_compact_unknown_artifact_refuses(tmp_path):
    path = tmp_path / "odd.jsonl"
    _write_jsonl(path, [{"type": "mystery"}])
    with pytest.raises(CheckpointError, match="cannot compact"):
        compact_checkpoint(path)


# ----------------------------------------------------------------------
# the campaign relief ladder
# ----------------------------------------------------------------------
def test_disk_budget_campaign_matches_unconstrained(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    """Aggressive budget, but one compaction keeps it satisfiable:
    the run completes with verdicts identical to the baseline."""
    from repro.faults.status import FaultSet

    baseline_set = FaultSet(s27_faults)
    baseline = run_campaign(
        s27_compiled, s27_sequence, baseline_set,
        strategy="MOT", node_limit=300_000,
    )
    assert baseline.stopped == "completed"

    path = tmp_path / "tight.ckpt"
    governed_set = FaultSet(s27_faults)
    # checkpoint records for s27 run a few KB each; a budget of a few
    # records forces repeated watermark compaction without ever making
    # the compacted file (header + one snapshot, ~4KB) oversized
    result = run_campaign(
        s27_compiled, s27_sequence, governed_set,
        strategy="MOT", node_limit=300_000,
        checkpoint_path=str(path), checkpoint_every=2,
        disk={"budget": 16 * 1024},
    )
    assert result.stopped == "completed"
    assert detected_map(governed_set) == detected_map(baseline_set)
    assert result.disk is not None
    assert result.disk["disk_compactions"] >= 1
    assert fsck_file(str(path)).ok
    assert no_tmp_orphans(tmp_path)


def test_impossible_budget_surrenders_cleanly_and_resumes(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    """A budget below one checkpoint record cannot be relieved: the
    campaign stops with ``stopped='disk'`` and a resumable
    checkpoint; an unconstrained resume finishes the run."""
    from repro.faults.status import FaultSet

    baseline_set = FaultSet(s27_faults)
    baseline = run_campaign(
        s27_compiled, s27_sequence, baseline_set,
        strategy="MOT", node_limit=300_000,
    )

    path = tmp_path / "doomed.ckpt"
    governed_set = FaultSet(s27_faults)
    result = run_campaign(
        s27_compiled, s27_sequence, governed_set,
        strategy="MOT", node_limit=300_000,
        checkpoint_path=str(path), checkpoint_every=1,
        disk={"budget": 64},
    )
    assert result.stopped == "disk"
    assert result.frames_total < len(s27_sequence)
    assert result.disk["disk_hard_events"] >= 1
    assert fsck_file(str(path)).ok, \
        "the surrender checkpoint must be intact"
    assert no_tmp_orphans(tmp_path)

    resumed_set = FaultSet(s27_faults)
    resumed = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set,
    )
    assert resumed.stopped == "completed"
    assert detected_map(resumed_set) == detected_map(baseline_set)


def test_statvfs_failpoint_forces_clean_surrender(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    """The kernel lying that the disk is full must surrender cleanly,
    never crash — and the checkpoint must survive fsck."""
    from repro.faults.status import FaultSet

    path = tmp_path / "lied.ckpt"
    failpoints.set_failpoint("disk.statvfs", "every:1")
    governed_set = FaultSet(s27_faults)
    result = run_campaign(
        s27_compiled, s27_sequence, governed_set,
        strategy="MOT", node_limit=300_000,
        checkpoint_path=str(path), checkpoint_every=1,
        disk={"free_floor": 1024 * 1024},
    )
    assert result.stopped == "disk"
    assert fsck_file(str(path)).ok
    failpoints.clear()
    resumed_set = FaultSet(s27_faults)
    resumed = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set,
    )
    assert resumed.stopped == "completed"


def test_disk_counters_survive_resume(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    path = tmp_path / "carry.ckpt"
    governed_set = FaultSet(s27_faults)
    result = run_campaign(
        s27_compiled, s27_sequence, governed_set,
        strategy="MOT", node_limit=300_000,
        checkpoint_path=str(path), checkpoint_every=1,
        disk={"budget": 64},
    )
    assert result.stopped == "disk"
    compactions = result.disk["disk_compactions"]
    resumed_set = FaultSet(s27_faults)
    resumed = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set,
        disk={"budget": 10 * 1024 * 1024},
    )
    assert resumed.stopped == "completed"
    assert resumed.disk["disk_compactions"] >= compactions


def test_sharded_run_warns_disk_ignored(
    s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    with pytest.warns(RuntimeWarning, match="disk budget ignored"):
        result = run_campaign(
            s27_compiled, s27_sequence, FaultSet(s27_faults),
            workers=0, disk={"budget": 1024},
        )
    assert result.stopped == "completed"


# ----------------------------------------------------------------------
# fsck --repair: torn tails truncated, CRC casualties quarantined
# ----------------------------------------------------------------------
def _flip_byte_in_line(path, line_no, needle):
    lines = path.read_bytes().split(b"\n")
    line = lines[line_no]
    pos = line.find(needle)
    assert pos >= 0, f"{needle!r} not in line {line_no}"
    lines[line_no] = line[:pos] + bytes([line[pos] ^ 0x01]) + line[pos + 1:]
    path.write_bytes(b"\n".join(lines))


def test_repair_truncates_torn_tail(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    fault_set = FaultSet(s27_faults)
    path = _campaign_checkpoint(
        tmp_path, s27_compiled, fault_set, s27_sequence
    )
    torn = b'{"type": "checkpoint", "frame": 99, "tru'
    with open(path, "ab") as handle:
        handle.write(torn)
    assert fsck_file(str(path)).torn_tail
    report = repair_file(str(path))
    assert report.ok
    assert any("torn final line" in action for action in report.repaired)
    assert not fsck_file(str(path)).torn_tail
    # the torn bytes survive in the sidecar, newline-terminated
    sidecar = str(path) + ".quarantine"
    assert torn in open(sidecar, "rb").read()
    resumed_set = FaultSet(s27_faults)
    result = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set
    )
    assert result.stopped == "completed"
    assert detected_map(resumed_set) == detected_map(fault_set)


def test_repair_quarantines_crc_corrupt_line(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    fault_set = FaultSet(s27_faults)
    path = _campaign_checkpoint(
        tmp_path, s27_compiled, fault_set, s27_sequence
    )
    damaged_line = path.read_bytes().split(b"\n")[1]
    _flip_byte_in_line(path, 1, b'"frame"')
    assert not fsck_file(str(path)).ok
    report = repair_file(str(path))
    assert report.ok
    assert any("CRC-corrupt" in action for action in report.repaired)
    # resume is now warning-free: no quarantine left to report
    resumed_set = FaultSet(s27_faults)
    result = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set
    )
    assert result.stopped == "completed"
    # the dropped line (in damaged form) is preserved byte-for-byte
    sidecar = open(str(path) + ".quarantine", "rb").read()
    assert damaged_line not in sidecar  # the *damaged* bytes are saved
    assert b'"type"' in sidecar


def test_repair_refuses_structural_damage(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    path = _campaign_checkpoint(
        tmp_path, s27_compiled, FaultSet(s27_faults), s27_sequence
    )
    # drop the header entirely: no line-dropping repair can fix that
    lines = path.read_bytes().split(b"\n")
    path.write_bytes(b"\n".join(lines[1:]))
    before = path.read_bytes()
    with pytest.raises(CheckpointError, match="structural damage"):
        repair_file(str(path))
    assert path.read_bytes() == before, "refusal must not modify the file"
    assert not os.path.exists(str(path) + ".quarantine")


def test_repair_clean_file_is_a_no_op(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    path = _campaign_checkpoint(
        tmp_path, s27_compiled, FaultSet(s27_faults), s27_sequence
    )
    before = path.read_bytes()
    report = repair_file(str(path))
    assert report.ok and report.repaired == []
    assert path.read_bytes() == before
    assert not os.path.exists(str(path) + ".quarantine")


def test_fsck_paths_repair_exit_codes(
    tmp_path, s27_compiled, s27_faults, s27_sequence
):
    from repro.faults.status import FaultSet

    path = _campaign_checkpoint(
        tmp_path, s27_compiled, FaultSet(s27_faults), s27_sequence
    )
    # a torn tail alone is tolerated (readers skip it); CRC corruption
    # is what fails a plain fsck until --repair quarantines it
    _flip_byte_in_line(path, 1, b'"frame"')
    with open(path, "ab") as handle:
        handle.write(b'{"torn')
    _reports, code = fsck_paths([str(path)])
    assert code == 4
    reports, code = fsck_paths([str(path)], repair=True)
    assert code == 0
    assert reports[0].repaired
