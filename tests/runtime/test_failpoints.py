"""Failpoint registry semantics, the CRC record layer, and fsck.

The chaos suite (``tests/chaos/test_failpoints.py``) drives whole
campaigns through armed failpoints; this module pins down the small
contracts those drills rely on: trigger policies are deterministic,
configuration layers without clobbering, the JSONL CRC layer detects
single-bit damage and tolerates torn tails, and ``repro fsck`` renders
the same verdicts offline.
"""

import json

import pytest

from repro import failpoints
from repro.failpoints import (
    CATALOG,
    SITES,
    Failpoint,
    FailpointError,
    parse_spec,
)
from repro.faults.model import STEM, Fault
from repro.faults.status import BY_3V, FaultSet
from repro.logic import threeval
from repro.runtime import (
    CheckpointError,
    CheckpointWriter,
    DegradationLadder,
    load_checkpoint,
)
from repro.runtime.checkpoint import (
    JsonlWriter,
    read_jsonl_records,
    record_crc,
)
from repro.runtime.fsck import fsck_file, fsck_paths

X, O, I = threeval.X, threeval.ZERO, threeval.ONE


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.clear()
    yield
    failpoints.clear()


def schedule(policy, n=12):
    """The fire pattern of a fresh policy over n evaluations."""
    point = Failpoint("site", policy)
    return [point.should_fire() for _ in range(n)]


# ----------------------------------------------------------------------
# trigger policies
# ----------------------------------------------------------------------
def test_policy_off_never_fires():
    assert schedule("off") == [False] * 12


def test_policy_once_fires_exactly_first():
    assert schedule("once") == [True] + [False] * 11


def test_policy_every_n():
    fired = schedule("every:3")
    assert [i + 1 for i, hit in enumerate(fired) if hit] == [3, 6, 9, 12]


def test_policy_after_n():
    fired = schedule("after:4")
    assert fired == [False] * 4 + [True] * 8


def test_policy_p_extremes():
    assert schedule("p:1.0") == [True] * 12
    assert schedule("p:0.0") == [False] * 12


def test_policy_p_seeded_is_deterministic():
    def draws(name, policy):
        point = Failpoint(name, policy)
        return [point.should_fire() for _ in range(64)]

    a = draws("s", "p:0.5@7")
    assert a == draws("s", "p:0.5@7")
    assert any(a) and not all(a)
    # a different seed (and a different site name) shifts the schedule
    assert a != draws("s", "p:0.5@8")
    assert a != draws("t", "p:0.5@7")


def test_policy_p_does_not_touch_global_random():
    import random

    random.seed(123)
    expected = random.random()
    random.seed(123)
    point = Failpoint("s", "p:0.5@7")
    for _ in range(10):
        point.should_fire()
    assert random.random() == expected


@pytest.mark.parametrize("bad", [
    "banana", "once:1", "off:2", "every:x", "every:0", "after:",
    "p:nope", "p:1.5", "p:-0.1",
])
def test_bad_policies_raise_typed_error(bad):
    with pytest.raises(FailpointError):
        Failpoint("s", bad)


def test_parse_spec():
    assert parse_spec("") == {}
    assert parse_spec("a=once, b = every:3 ,") == {
        "a": "once", "b": "every:3",
    }
    with pytest.raises(FailpointError):
        parse_spec("a")
    with pytest.raises(FailpointError):
        parse_spec("=once")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_fire_is_false_when_nothing_armed():
    assert not failpoints.fire("checkpoint.write.enospc")
    assert failpoints.armed_count() == 0


def test_configure_merges_and_replace_drops():
    failpoints.configure("a=once,b=every:2")
    failpoints.configure("b=after:1,c=once")
    assert failpoints.active_spec() == "a=once,b=after:1,c=once"
    failpoints.configure("d=once", replace=True)
    assert failpoints.active_spec() == "d=once"


def test_rearming_resets_counters():
    failpoints.set_failpoint("a", "once")
    assert failpoints.fire("a")
    assert not failpoints.fire("a")
    failpoints.set_failpoint("a", "once")
    assert failpoints.fire("a"), "re-arm must reset the counter"


def test_is_armed_ignores_off_sites():
    failpoints.configure("a=off,b=once")
    assert not failpoints.is_armed("a")
    assert failpoints.is_armed("b")
    assert failpoints.armed_count() == 1


def test_fired_counts_and_active_spec_round_trip():
    failpoints.configure("a=every:2,b=off")
    for _ in range(4):
        failpoints.fire("a")
        failpoints.fire("b")
    assert failpoints.fired_counts() == {"a": 2, "b": 0}
    # shipping active_spec() to a fresh process reproduces the spec
    shipped = failpoints.active_spec()
    failpoints.configure(shipped, replace=True)
    assert failpoints.active_spec() == shipped


def test_observer_sees_fires_and_exceptions_are_swallowed():
    failpoints.set_failpoint("a", "every:2")
    seen = []

    def boom(site):
        seen.append(site)
        raise RuntimeError("observability must never change injection")

    previous = failpoints.set_observer(boom)
    try:
        assert [failpoints.fire("a") for _ in range(4)] == [
            False, True, False, True,
        ]
    finally:
        assert failpoints.set_observer(previous) is boom
    assert seen == ["a", "a"]


def test_catalog_is_well_formed():
    assert len(CATALOG) >= 15
    assert len(SITES) == len(CATALOG)
    for site in CATALOG:
        assert site.name and site.layer and site.injects and site.outcome
        # every catalogued name must be a valid spec key
        failpoints.set_failpoint(site.name, "off")


# ----------------------------------------------------------------------
# the CRC record layer
# ----------------------------------------------------------------------
def write_campaign_file(path):
    fault_set = FaultSet([Fault((STEM, 0), 0), Fault((STEM, 1), 1)])
    fault_set.records[0].mark_detected(BY_3V, 4)
    writer = CheckpointWriter(path)
    writer.write_header(
        circuit_spec="s27",
        sequence=[(0, 1), (1, 1)],
        fault_keys=[r.fault.key() for r in fault_set],
        ladder=DegradationLadder(),
        node_limit=5000,
        initial_state=[X, X, X],
        variable_scheme="interleaved",
        fallback_frames=5,
    )
    for frame in (10, 20):
        writer.write_checkpoint(
            frame=frame,
            good_state_3v=[I, O, X],
            fault_set=fault_set,
            rung_indices={},
            diffs_3v={},
            counters={"fallbacks": 1},
            elapsed=2.5,
        )
    writer.close()


def test_records_carry_valid_crc(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    for line in path.read_text().splitlines():
        record = json.loads(line)
        crc = record.pop("crc")
        body = json.dumps(record, sort_keys=True)
        assert crc == record_crc(body)
    load_checkpoint(str(path))  # round-trips


def test_crcless_records_are_accepted(tmp_path):
    path = tmp_path / "legacy.jsonl"
    writer = JsonlWriter(str(path), fsync=False)
    writer._write({"type": "progress", "version": 1, "n": 1})
    writer.close()
    # strip the crc the writer spliced in, as a pre-CRC file would be
    record = json.loads(path.read_text())
    record.pop("crc")
    path.write_text(json.dumps(record, sort_keys=True) + "\n")
    assert list(read_jsonl_records(str(path), expected_version=1)) == [
        record
    ]


def flip_byte(path, needle):
    data = path.read_bytes()
    pos = data.find(needle)
    assert pos >= 0
    path.write_bytes(data[:pos] + bytes([data[pos] ^ 0x01]) + data[pos + 1:])


def test_flipped_byte_is_crc_detected_strict_and_quarantine(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    # flip inside a string value: the line stays valid JSON, only the
    # CRC can notice
    flip_byte(path, b"s27")
    with pytest.raises(CheckpointError, match="crc"):
        list(read_jsonl_records(str(path)))
    quarantined = []
    records = list(
        read_jsonl_records(str(path), on_corrupt=quarantined.append)
    )
    assert [q["line"] for q in quarantined] == [1]
    assert "crc" in quarantined[0]["reason"]
    assert all(r["type"] == "checkpoint" for r in records)


def test_torn_tail_is_tolerated(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    whole = list(read_jsonl_records(str(path)))
    with open(path, "ab") as handle:
        handle.write(b'{"type": "checkpoint", "version')
    assert list(read_jsonl_records(str(path))) == whole
    checkpoint = load_checkpoint(str(path))
    assert checkpoint.snapshot["frame"] == 20


def test_enospc_failpoint_leaves_valid_file(tmp_path):
    path = tmp_path / "run.ckpt"
    failpoints.set_failpoint("checkpoint.write.enospc", "after:1")
    fault_set = FaultSet([Fault((STEM, 0), 0)])
    writer = CheckpointWriter(str(path))
    writer.write_header(
        circuit_spec="s27",
        sequence=[(0,)],
        fault_keys=[r.fault.key() for r in fault_set],
        ladder=DegradationLadder(),
        node_limit=None,
        initial_state=[X],
        variable_scheme="interleaved",
        fallback_frames=5,
    )
    with pytest.raises(CheckpointError, match="ENOSPC|No space|injected"):
        writer.write_checkpoint(
            frame=1, good_state_3v=[X], fault_set=fault_set,
            rung_indices={}, diffs_3v={}, counters={}, elapsed=0.0,
        )
    writer.close()
    failpoints.clear()
    # the half-written record was truncated back out: the file holds
    # exactly the header and parses cleanly
    records = list(read_jsonl_records(str(path)))
    assert [r["type"] for r in records] == ["header"]
    assert fsck_file(str(path)).corrupt == []


def test_torn_write_failpoint_leaves_skippable_tail(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    failpoints.set_failpoint("checkpoint.write.torn", "once")
    writer = JsonlWriter(str(path), fsync=False)
    with pytest.raises(CheckpointError, match="torn"):
        writer._write({"type": "progress", "version": 1, "frame": 99})
    writer.close()
    failpoints.clear()
    report = fsck_file(str(path))
    assert report.torn_tail
    assert report.ok, "a torn tail is expected crash damage, not corruption"
    # and the reader resumes from the last intact record
    assert load_checkpoint(str(path)).snapshot["frame"] == 20


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
def test_fsck_clean_campaign_checkpoint(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    report = fsck_file(str(path))
    assert report.kind == "campaign"
    assert report.ok and not report.torn_tail
    assert report.records == 3
    _reports, code = fsck_paths([str(path)])
    assert code == 0


def test_fsck_flags_flipped_byte(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    flip_byte(path, b"s27")
    report = fsck_file(str(path))
    assert not report.ok
    assert [entry["line"] for entry in report.corrupt] == [1]
    # the CRC-damaged header is quarantined, so structure checking
    # also notices the resume-refusing loss
    assert any("header" in p["reason"] for p in report.problems)
    _reports, code = fsck_paths([str(path)])
    assert code == 4


def test_fsck_flags_fault_list_mismatch(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    record.pop("crc")
    record["faults"] = record["faults"][:1]  # drop one fault's state
    body = json.dumps(record, sort_keys=True)
    lines[1] = f'{body[:-1]}, "crc": {record_crc(body)}}}'
    path.write_text("\n".join(lines) + "\n")
    report = fsck_file(str(path))
    assert not report.ok
    assert any(
        "does not match header" in p["reason"] for p in report.problems
    )


def test_fsck_journal_state_machine(tmp_path):
    from repro.service.journal import JobJournal

    path = tmp_path / "journal.jsonl"
    journal = JobJournal(str(path))
    journal.service_event("start")
    journal.job_event("job-1", "submitted", spec={"circuit": "s27"})
    journal.job_event("job-1", "running")
    journal.job_event("job-1", "done")
    journal.close()
    report = fsck_file(str(path))
    assert report.kind == "journal" and report.ok

    # splice a hand-forged done->running record (valid CRC, bad state)
    record = {"type": "job", "id": "job-1", "state": "running",
              "version": 1}
    body = json.dumps(record, sort_keys=True)
    with open(path, "a") as handle:
        handle.write(f'{body[:-1]}, "crc": {record_crc(body)}}}\n')
    report = fsck_file(str(path))
    assert not report.ok
    assert any(
        "illegal transition 'done' -> 'running'" in p["reason"]
        for p in report.problems
    )


def test_fsck_unrecognized_and_empty_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(CheckpointError):
        fsck_file(str(empty))
    weird = tmp_path / "weird.jsonl"
    weird.write_text('{"type": "mystery", "version": 1}\n')
    with pytest.raises(CheckpointError, match="unrecognized"):
        fsck_file(str(weird))


def test_fsck_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "run.ckpt"
    write_campaign_file(str(path))
    assert main(["fsck", str(path)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    flip_byte(path, b"s27")
    assert main(["fsck", "--json", str(path)]) == 4
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False and report["kind"] == "campaign"


def test_cli_failpoints_flag_rejects_bad_spec(tmp_path, capsys):
    from repro.cli import main

    code = main(["simulate", "s27", "--length", "2",
                 "--failpoints", "bdd.alloc=banana"])
    assert code == 2
    assert "bad failpoint spec" in capsys.readouterr().err
