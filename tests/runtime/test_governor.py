"""Cooperative budget checks of the resource governor."""

import pytest

from repro.bdd import BddManager
from repro.bdd.manager import FALSE, TRUE
from repro.faults.model import STEM, Fault
from repro.faults.status import FaultSet
from repro.runtime import BudgetExceeded, ResourceGovernor
from repro.runtime.governor import _CLOCK_STRIDE


class FakeClock:
    def __init__(self, inc=1.0):
        self.t = 0.0
        self.inc = inc

    def __call__(self):
        self.t += self.inc
        return self.t


def a_record():
    return FaultSet([Fault((STEM, 0), 0)]).records[0]


def test_negative_deadline_rejected():
    with pytest.raises(ValueError):
        ResourceGovernor(deadline=-1)


def test_deadline_check_frame():
    gov = ResourceGovernor(deadline=2.5, clock=FakeClock()).start()
    gov.check_frame(1)  # elapsed 1.0 < 2.5 (one clock read per check)
    with pytest.raises(BudgetExceeded) as exc:
        gov.check_frame(2)  # elapsed 2.0, then 3.0
        gov.check_frame(3)
    assert exc.value.kind == "deadline"
    assert exc.value.limit == 2.5
    assert exc.value.frame in (2, 3)


def test_no_deadline_never_raises():
    gov = ResourceGovernor(clock=FakeClock(1000.0)).start()
    for frame in range(100):
        gov.check_frame(frame)


def test_resume_carries_elapsed_over():
    clock = FakeClock(0.0)  # frozen clock: elapsed is all carry-over
    gov = ResourceGovernor(deadline=10.0, clock=clock)
    gov.start(elapsed_before=9.5)
    assert gov.elapsed() == pytest.approx(9.5)
    gov.check_deadline()  # 9.5 < 10
    gov2 = ResourceGovernor(deadline=10.0, clock=clock)
    gov2.start(elapsed_before=10.5)
    with pytest.raises(BudgetExceeded):
        gov2.check_deadline()


def test_node_budget_via_manager_hook():
    gov = ResourceGovernor(node_budget=4).start()
    manager = BddManager(num_vars=8)
    gov.attach_manager(manager)
    assert manager.alloc_hook == gov.note_node
    with pytest.raises(BudgetExceeded) as exc:
        for var in range(8):
            manager.mk_var(var)
    assert exc.value.kind == "nodes"
    assert exc.value.observed > exc.value.limit == 4
    assert gov.nodes_allocated == 5


def test_attach_manager_noop_without_budgets():
    gov = ResourceGovernor(fault_frame_nodes=10)
    manager = BddManager(num_vars=2)
    gov.attach_manager(manager)
    assert manager.alloc_hook is None


def test_deadline_polled_at_allocation_granularity():
    # a single giant frame must still hit the wall clock: the manager
    # hook checks the deadline every _CLOCK_STRIDE allocations
    gov = ResourceGovernor(deadline=0.5, clock=FakeClock(1.0)).start()
    num_vars = 2 * _CLOCK_STRIDE
    manager = BddManager(num_vars=num_vars)
    gov.attach_manager(manager)
    with pytest.raises(BudgetExceeded) as exc:
        # a conjunction chain allocates one fresh node per variable,
        # so the stride-throttled clock check must fire along the way
        node = TRUE
        for var in range(num_vars - 1, -1, -1):
            node = manager.mk(var, FALSE, node)
    assert exc.value.kind == "deadline"


def test_per_fault_node_budget_tags_fault_key():
    gov = ResourceGovernor(fault_frame_nodes=100)
    record = a_record()
    gov.check_fault_frame_nodes(record, 100)  # at the limit: fine
    with pytest.raises(BudgetExceeded) as exc:
        gov.check_fault_frame_nodes(record, 101)
    assert exc.value.kind == "fault-frame-nodes"
    assert exc.value.fault_key == record.fault.key()


def test_per_fault_event_budget_tags_fault_key():
    gov = ResourceGovernor(fault_frame_events=3)
    record = a_record()
    with pytest.raises(BudgetExceeded) as exc:
        gov.check_fault_frame_events(record, 4)
    assert exc.value.kind == "fault-frame-events"
    assert exc.value.fault_key == record.fault.key()


def test_accounting_snapshot():
    gov = ResourceGovernor(deadline=5.0, node_budget=1000,
                           clock=FakeClock(1.0)).start()
    acc = gov.accounting()
    assert acc["deadline"] == 5.0
    assert acc["node_budget"] == 1000
    assert acc["nodes_allocated"] == 0
    assert acc["elapsed"] > 0


def test_budget_exceeded_context():
    err = BudgetExceeded("deadline", 5.0, 6.0, frame=12)
    ctx = err.context()
    assert ctx["kind"] == "deadline"
    assert ctx["limit"] == 5.0
    assert ctx["observed"] == 6.0
    assert ctx["frame"] == 12


def test_budget_exceeded_pack_and_frame_context():
    err = BudgetExceeded("deadline", 5.0, 6.0, frame=3, pack=2)
    ctx = err.context()
    assert ctx["frame"] == 3
    assert ctx["pack"] == 2
    assert "pack 2" in str(err) and "frame 3" in str(err)


def test_check_frame_records_pack_for_diagnostics():
    # the word-parallel engine restarts its frame count per pack; the
    # governor keeps the absolute (pack, frame) pair so a budget raised
    # mid-sweep names the exact position
    gov = ResourceGovernor(deadline=2.5, clock=FakeClock()).start()
    gov.check_frame(1, pack=0)
    with pytest.raises(BudgetExceeded) as exc:
        gov.check_frame(0, pack=4)
        gov.check_frame(1, pack=4)
    assert exc.value.kind == "deadline"
    assert exc.value.context()["pack"] == 4


# ----------------------------------------------------------------------
# RSS budget
# ----------------------------------------------------------------------
def test_rss_budget_check_frame():
    gov = ResourceGovernor(rss_budget=1000,
                           rss_sampler=lambda: 1500).start()
    with pytest.raises(BudgetExceeded) as exc:
        gov.check_frame(3)
    assert exc.value.kind == "rss"
    assert exc.value.limit == 1000
    assert exc.value.observed == 1500
    assert gov.peak_rss == 1500


def test_rss_budget_under_limit_is_quiet():
    gov = ResourceGovernor(rss_budget=1000,
                           rss_sampler=lambda: 500).start()
    for frame in range(20):
        gov.check_frame(frame)
    assert gov.peak_rss == 500


def test_rss_budget_polled_at_allocation_granularity():
    gov = ResourceGovernor(rss_budget=1000,
                           rss_sampler=lambda: 2000).start()
    manager = BddManager(num_vars=2 * _CLOCK_STRIDE)
    gov.attach_manager(manager)
    assert manager.alloc_hook is not None  # rss budget alone hooks
    with pytest.raises(BudgetExceeded) as exc:
        node = TRUE
        for var in range(2 * _CLOCK_STRIDE - 1, -1, -1):
            node = manager.mk(var, FALSE, node)
    assert exc.value.kind == "rss"


def test_rss_unavailable_sampler_is_inert():
    gov = ResourceGovernor(rss_budget=1000,
                           rss_sampler=lambda: None).start()
    gov.check_frame(1)  # no sample, no raise
    assert gov.peak_rss == 0


def test_accounting_carries_rss_fields():
    gov = ResourceGovernor(rss_budget=4096, cache_budget=128,
                           rss_sampler=lambda: 100).start()
    gov.sample_rss()
    acc = gov.accounting()
    assert acc["rss_budget"] == 4096
    assert acc["cache_budget"] == 128
    assert acc["peak_rss"] == 100
