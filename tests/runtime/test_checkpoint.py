"""Checkpoint file format, reader validation and the signal guard."""

import json
import signal

import pytest

from repro.faults.model import STEM, Fault
from repro.faults.status import BY_3V, FaultSet
from repro.logic import threeval
from repro.runtime import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointWriter,
    DegradationLadder,
    SignalGuard,
    load_checkpoint,
)
from repro.runtime.checkpoint import state_from_text, state_to_text

X, O, I = threeval.X, threeval.ZERO, threeval.ONE


def test_state_text_round_trip():
    state = [X, O, I, X, I]
    assert state_to_text(state) == "X01X1"
    assert state_from_text("X01X1") == state


def write_campaign_file(path, frames=(10, 20)):
    fault_set = FaultSet([Fault((STEM, 0), 0), Fault((STEM, 1), 1)])
    fault_set.records[0].mark_detected(BY_3V, 4)
    writer = CheckpointWriter(path)
    writer.write_header(
        circuit_spec="s27",
        sequence=[(0, 1), (1, 1)],
        fault_keys=[r.fault.key() for r in fault_set],
        ladder=DegradationLadder(),
        node_limit=5000,
        initial_state=[X, X, X],
        variable_scheme="interleaved",
        fallback_frames=5,
    )
    live = fault_set.records[1]
    for frame in frames:
        writer.write_checkpoint(
            frame=frame,
            good_state_3v=[I, O, X],
            fault_set=fault_set,
            rung_indices={id(live): 1},
            diffs_3v={id(live): {0: O}},
            counters={"fallbacks": 1},
            elapsed=2.5,
        )
        writer.write_progress({"frame": frame})
    writer.close()
    return fault_set


def test_write_and_load_takes_last_checkpoint(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(path, frames=(10, 20))
    checkpoint = load_checkpoint(path)
    assert checkpoint.frame == 20  # the *last* snapshot wins
    assert checkpoint.circuit_spec == "s27"
    assert checkpoint.sequence == [(0, 1), (1, 1)]
    assert checkpoint.fault_keys == [((STEM, 0), 0), ((STEM, 1), 1)]
    assert checkpoint.node_limit == 5000
    assert checkpoint.good_state == [I, O, X]
    assert checkpoint.counters == {"fallbacks": 1}
    assert checkpoint.elapsed == 2.5
    states = checkpoint.fault_states()
    assert states[0][0] == ["detected", BY_3V, 4]
    assert states[1][1] == 1  # live fault parked on rung 1
    assert states[1][2] == {0: O}
    ladder = DegradationLadder.from_json(checkpoint.ladder_json())
    assert ladder.names() == ["MOT", "rMOT", "SOT", "3v"]


def test_every_record_carries_the_version(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(path)
    with open(path) as handle:
        records = [json.loads(line) for line in handle]
    assert records
    assert all(r["version"] == CHECKPOINT_VERSION for r in records)


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_text(json.dumps({"type": "header", "version": 99}) + "\n")
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert "version" in str(exc.value)


def test_missing_file_and_missing_records(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "absent.ckpt")
    # header but no checkpoint record: nothing to resume from
    path = tmp_path / "header_only.ckpt"
    fault_set = FaultSet([Fault((STEM, 0), 0)])
    writer = CheckpointWriter(path)
    writer.write_header(
        circuit_spec="s27", sequence=[(0, 1)],
        fault_keys=[fault_set.records[0].fault.key()],
        ladder=DegradationLadder(), node_limit=None,
        initial_state=[X], variable_scheme="interleaved",
        fallback_frames=5,
    )
    writer.close()
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert "no checkpoint record" in str(exc.value)


def test_corrupt_line_names_the_line(tmp_path):
    path = tmp_path / "run.ckpt"
    write_campaign_file(path)
    with open(path, "a") as handle:
        handle.write("{not json\n")
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert "line" in str(exc.value)


def test_signal_guard_turns_sigterm_into_stop_request():
    guard = SignalGuard(signals=(signal.SIGTERM,))
    with guard:
        assert guard.stop_requested is None
        signal.raise_signal(signal.SIGTERM)
        assert guard.stop_requested == "SIGTERM"
    # uninstalled afterwards: default disposition restored
    assert signal.getsignal(signal.SIGTERM) is not guard._handler


# ----------------------------------------------------------------------
# crash-safe writes and torn-tail tolerance
# ----------------------------------------------------------------------
def test_torn_final_line_is_tolerated(tmp_path):
    # a coordinator killed mid-write leaves a final line without its
    # trailing newline; the reader drops it and resumes from the last
    # complete record
    path = tmp_path / "run.ckpt"
    write_campaign_file(path, frames=(10, 20))
    whole = path.read_text()
    a_record = whole.splitlines()[1]
    with open(path, "a") as handle:
        handle.write(a_record[: len(a_record) // 2])  # no newline
    checkpoint = load_checkpoint(path)
    assert checkpoint.frame == 20


def test_torn_tail_even_if_valid_json_prefix(tmp_path):
    # the torn write happens to truncate at a brace boundary: the line
    # parses but is still missing its newline commit marker -> dropped
    path = tmp_path / "run.ckpt"
    write_campaign_file(path, frames=(10,))
    with open(path, "a") as handle:
        handle.write('{"type": "progress"')  # torn, no newline
    checkpoint = load_checkpoint(path)
    assert checkpoint.frame == 10


def test_corrupt_line_with_newline_still_raises(tmp_path):
    # a complete (newline-terminated) but malformed line is real
    # corruption, not a torn write: refuse loudly
    path = tmp_path / "run.ckpt"
    write_campaign_file(path, frames=(10,))
    with open(path, "a") as handle:
        handle.write("{not json\n")
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_writer_fsyncs_by_default(tmp_path, monkeypatch):
    import os as os_module

    synced = []
    real_fsync = os_module.fsync
    monkeypatch.setattr(
        "repro.runtime.checkpoint.os.fsync",
        lambda fd: (synced.append(fd), real_fsync(fd)),
    )
    path = tmp_path / "run.ckpt"
    write_campaign_file(path)
    assert synced  # every record hit the disk before returning


def test_writer_degrades_when_fsync_unsupported(tmp_path, monkeypatch):
    """EINVAL from fsync (overlay/tmpfs mounts) must not crash writes."""
    import errno

    calls = []

    def refusing_fsync(fd):
        calls.append(fd)
        raise OSError(errno.EINVAL, "Invalid argument")

    monkeypatch.setattr("repro.runtime.checkpoint.os.fsync", refusing_fsync)
    path = tmp_path / "run.ckpt"
    with pytest.warns(RuntimeWarning, match="fsync not supported"):
        write_campaign_file(path)
    # degraded once, then stopped retrying: exactly one fsync attempt
    assert len(calls) == 1
    # and the file is complete and loadable regardless
    checkpoint = load_checkpoint(path)
    assert checkpoint.frame == 20


def test_writer_propagates_real_fsync_errors(tmp_path, monkeypatch):
    """EIO-class fsync failures are data loss, not degradation."""
    import errno

    def failing_fsync(fd):
        raise OSError(errno.EIO, "Input/output error")

    monkeypatch.setattr("repro.runtime.checkpoint.os.fsync", failing_fsync)
    with pytest.raises(CheckpointError, match="cannot write record"):
        write_campaign_file(tmp_path / "run.ckpt")


def test_write_json_atomic_tolerates_fsync_refusal(tmp_path, monkeypatch):
    import errno

    from repro.runtime import write_json_atomic

    def refusing_fsync(fd):
        raise OSError(errno.EINVAL, "Invalid argument")

    monkeypatch.setattr("repro.runtime.checkpoint.os.fsync", refusing_fsync)
    target = tmp_path / "summary.json"
    with pytest.warns(RuntimeWarning, match="fsync not supported"):
        write_json_atomic(target, {"ok": True, "n": 3})
    assert json.loads(target.read_text()) == {"ok": True, "n": 3}


def test_sniff_checkpoint_kind(tmp_path):
    from repro.runtime import sniff_checkpoint_kind

    campaign_path = tmp_path / "campaign.ckpt"
    write_campaign_file(campaign_path)
    assert sniff_checkpoint_kind(campaign_path) == "campaign"

    fabric_path = tmp_path / "fabric.ckpt"
    fabric_path.write_text(
        json.dumps(
            {"version": CHECKPOINT_VERSION, "type": "fabric-header"}
        )
        + "\n"
    )
    assert sniff_checkpoint_kind(fabric_path) == "fabric"

    empty = tmp_path / "empty.ckpt"
    empty.write_text("")
    with pytest.raises(CheckpointError):
        sniff_checkpoint_kind(empty)


# ----------------------------------------------------------------------
# circuit/fault-universe fingerprint
# ----------------------------------------------------------------------
def _fingerprint_fixture(seed=3):
    from repro.circuit.compile import compile_circuit
    from repro.faults.collapse import collapse_faults
    from tests.util import random_circuit

    compiled = compile_circuit(random_circuit(seed))
    faults, _ = collapse_faults(compiled)
    keys = [f.key() for f in faults]
    return compiled, keys


def test_fingerprint_stable_and_name_blind():
    from repro.circuit.compile import compile_circuit
    from repro.runtime import circuit_fingerprint
    from tests.util import random_circuit

    compiled, keys = _fingerprint_fixture()
    assert circuit_fingerprint(compiled, keys) == \
        circuit_fingerprint(compiled, keys)
    # the circuit's *name* is presentation, not structure
    renamed = compile_circuit(random_circuit(3, name="other-name"))
    assert circuit_fingerprint(renamed, keys) == \
        circuit_fingerprint(compiled, keys)


def test_fingerprint_sees_structure_and_faults():
    from repro.circuit.compile import compile_circuit
    from repro.runtime import circuit_fingerprint
    from tests.util import random_circuit

    compiled, keys = _fingerprint_fixture()
    other = compile_circuit(random_circuit(4))
    assert circuit_fingerprint(other, keys) != \
        circuit_fingerprint(compiled, keys)
    assert circuit_fingerprint(compiled, keys[:-1]) != \
        circuit_fingerprint(compiled, keys)


def test_verify_fingerprint_mismatch_and_legacy():
    from repro.runtime import (
        CheckpointMismatch,
        circuit_fingerprint,
        verify_fingerprint,
    )

    compiled, keys = _fingerprint_fixture()
    good = circuit_fingerprint(compiled, keys)
    verify_fingerprint("x.ckpt", good, compiled, keys)  # match: quiet
    verify_fingerprint("x.ckpt", None, compiled, keys)  # legacy: quiet
    with pytest.raises(CheckpointMismatch) as exc:
        verify_fingerprint("x.ckpt", "deadbeefdeadbeef", compiled, keys)
    assert isinstance(exc.value, CheckpointError)
    assert exc.value.context()["found"] == "deadbeefdeadbeef"


def test_campaign_resume_refuses_wrong_circuit(tmp_path):
    from repro.circuit.compile import compile_circuit
    from repro.faults.collapse import collapse_faults
    from repro.runtime import (
        CheckpointMismatch,
        ResourceGovernor,
        resume_campaign,
        run_campaign,
    )
    from repro.sequences.random_seq import random_sequence_for
    from tests.util import random_circuit

    compiled = compile_circuit(random_circuit(11))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 30, seed=1)
    path = tmp_path / "run.ckpt"

    class InstantClock:
        def __init__(self):
            self.t = 0.0

        def __call__(self):
            self.t += 1.0
            return self.t

    interrupted = run_campaign(
        compiled, sequence, FaultSet(faults),
        checkpoint_path=str(path), checkpoint_every=2,
        governor=ResourceGovernor(deadline=6.0, clock=InstantClock()),
    )
    assert interrupted.checkpoints_written >= 1

    other = compile_circuit(random_circuit(12))
    other_faults, _ = collapse_faults(other)
    with pytest.raises(CheckpointMismatch):
        resume_campaign(
            str(path), compiled=other, fault_set=FaultSet(other_faults)
        )

    # the matching circuit still resumes
    result = resume_campaign(
        str(path), compiled=compiled, fault_set=FaultSet(faults)
    )
    assert result.stopped == "completed"


def test_fabric_resume_refuses_wrong_circuit(tmp_path):
    from repro.circuit.compile import compile_circuit
    from repro.faults.collapse import collapse_faults
    from repro.runtime import CheckpointMismatch
    from repro.runtime.fabric import (
        resume_sharded_campaign,
        run_sharded_campaign,
    )
    from repro.sequences.random_seq import random_sequence_for
    from tests.util import random_circuit

    compiled = compile_circuit(random_circuit(21))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 10, seed=2)
    path = tmp_path / "fabric.ckpt"
    result = run_sharded_campaign(
        compiled, sequence, FaultSet(faults),
        workers=0, shard_size=3, checkpoint_path=str(path),
    )
    assert result.stopped == "completed"

    other = compile_circuit(random_circuit(22))
    other_faults, _ = collapse_faults(other)
    with pytest.raises(CheckpointMismatch):
        resume_sharded_campaign(
            str(path), compiled=other, fault_set=FaultSet(other_faults)
        )
