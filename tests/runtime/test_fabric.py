"""Shard fabric: exactness, crash recovery, bisection, resume.

The fabric's core contract is that sharding never changes a result:
every test here ultimately compares fault statuses against the
single-process campaign.  The failure-path tests use the deterministic
chaos hooks (``FabricConfig.chaos``) and the events observability hook
to kill real worker processes at precise moments.
"""

import json
import os
import signal

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import QUARANTINED, FaultSet
from repro.runtime import run_campaign
from repro.runtime.errors import CheckpointError
from repro.runtime.fabric import (
    FabricConfig,
    aligned_shard_size,
    load_fabric_checkpoint,
    plan_shards,
    resume_sharded_campaign,
    run_sharded_campaign,
    run_shard,
    shard_id_text,
)
from repro.runtime.fabric.sharding import Shard
from repro.sequences.random_seq import random_sequence_for


@pytest.fixture(scope="module")
def s27_setup():
    compiled = compile_circuit(get_circuit("s27"))
    sequence = random_sequence_for(compiled, 20, seed=7)
    return compiled, sequence


@pytest.fixture(scope="module")
def ctr8_setup():
    compiled = compile_circuit(get_circuit("ctr8"))
    sequence = random_sequence_for(compiled, 40, seed=7)
    return compiled, sequence


def fresh_faults(compiled):
    faults, _ = collapse_faults(compiled)
    return FaultSet(faults)


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


def baseline(compiled, sequence):
    fault_set = fresh_faults(compiled)
    run_campaign(compiled, sequence, fault_set)
    return signature(fault_set)


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
def test_shard_ids_sort_in_bisection_order():
    shard = Shard((3,), list(range(8)))
    low, high = shard.split()
    assert low.shard_id == (3, 0) and high.shard_id == (3, 1)
    assert low.indices + high.indices == shard.indices
    assert low.crashes == 0  # fresh counters for the halves
    assert sorted([(4,), (3, 1), (3,), (3, 0)]) == [
        (3,), (3, 0), (3, 1), (4,),
    ]
    assert shard_id_text((3, 1)) == "3.1"


def test_plan_shards_partitions_without_overlap():
    shards = plan_shards(list(range(10)), 4)
    assert [s.shard_id for s in shards] == [(0,), (1,), (2,)]
    assert [i for s in shards for i in s.indices] == list(range(10))


def test_aligned_shard_size_respects_pack_alignment():
    # size above the pack width is rounded down to a multiple
    assert aligned_shard_size(4096, 2, align=256) % 256 == 0
    # tiny universes still get a sane size
    assert aligned_shard_size(3, 8) >= 1
    assert aligned_shard_size(0, 2) >= 1
    # explicit sizes are validated, not silently replaced
    assert aligned_shard_size(100, 2, shard_size=7) == 7


# ----------------------------------------------------------------------
# exactness: pooled and inline runs match the single-process campaign
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 1, 2])
def test_fabric_matches_single_process(s27_setup, workers):
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    fault_set = fresh_faults(compiled)
    result = run_campaign(
        compiled, sequence, fault_set, workers=workers, shard_size=8
    )
    assert signature(fault_set) == expected
    assert result.stopped == "completed"
    fabric = result.runtime_summary()["fabric"]
    assert fabric["shards_completed"] == fabric["shards_planned"]


def test_fabric_matches_on_larger_circuit(ctr8_setup):
    compiled, sequence = ctr8_setup
    expected = baseline(compiled, sequence)
    fault_set = fresh_faults(compiled)
    result = run_campaign(compiled, sequence, fault_set, workers=2)
    assert signature(fault_set) == expected
    assert result.stopped == "completed"


def test_empty_shard_returns_canonical_payload(s27_setup):
    compiled, sequence = s27_setup
    faults = [r.fault for r in fresh_faults(compiled)]
    payload = run_shard(compiled, faults, sequence, [], {})
    assert payload["states"] == []
    assert payload["stopped"] == "completed"
    assert payload["nodes_allocated"] == 0


def test_indivisible_live_count_is_fully_covered(s27_setup):
    # 32 faults, shard_size 5: the tail shard is smaller, nothing lost
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    fault_set = fresh_faults(compiled)
    run_campaign(compiled, sequence, fault_set, workers=2, shard_size=5)
    assert signature(fault_set) == expected


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def test_sigkill_mid_campaign_loses_no_detections(s27_setup):
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    killed = []

    def events(event):
        if event["event"] == "dispatch" and not killed:
            killed.append(event["pid"])
            os.kill(event["pid"], signal.SIGKILL)

    fault_set = fresh_faults(compiled)
    config = FabricConfig(
        workers=2, shard_size=8, events=events, backoff_base=0.01
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert killed, "the events hook never saw a dispatch"
    assert fabric["retries"] >= 1
    assert fabric["respawns"] >= 1
    assert signature(fault_set) == expected


def test_poison_fault_is_bisected_and_quarantined(s27_setup):
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    fault_set = fresh_faults(compiled)
    poison_index = 5
    poison = fault_set.records[poison_index].fault.key()
    config = FabricConfig(
        workers=2, shard_size=8, backoff_base=0.01,
        chaos={"crash_keys": [poison]},
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert fault_set.records[poison_index].status == QUARANTINED
    assert poison in result.quarantined
    assert fabric["bisections"] >= 1
    assert fabric["quarantined_by_crash"] == 1
    # every other fault still matches the single-process run
    got = signature(fault_set)
    for index, (want, have) in enumerate(zip(expected, got)):
        if index != poison_index:
            assert want == have
    assert not result.exact  # a quarantine makes the result conservative


def test_hung_worker_is_killed_via_heartbeat_timeout(s27_setup):
    compiled, sequence = s27_setup
    fault_set = fresh_faults(compiled)
    hang = fault_set.records[9].fault.key()
    config = FabricConfig(
        workers=2, shard_size=8, backoff_base=0.01,
        heartbeat_timeout=0.5, heartbeat_interval=0.01,
        chaos={"hang_keys": [hang], "hang_seconds": 120.0},
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert fabric["timeouts"] >= 1
    # a deterministic hang ends quarantined, like a deterministic crash
    assert fault_set.records[9].status == QUARANTINED
    assert result.stopped == "completed"


def test_crashed_shard_is_retried_with_backoff(s27_setup):
    # one crash (below max_retries=2) -> plain retry, no bisection
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    killed = []

    def events(event):
        if event["event"] == "dispatch" and len(killed) < 1:
            killed.append(event["pid"])
            os.kill(event["pid"], signal.SIGKILL)

    fault_set = fresh_faults(compiled)
    config = FabricConfig(
        workers=1, shard_size=64, events=events,
        backoff_base=0.01, max_retries=3,
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert fabric["retries"] == 1
    assert fabric["bisections"] == 0
    assert signature(fault_set) == expected


def test_worker_error_message_requeues_the_shard(s27_setup, monkeypatch):
    # a Python-level exception in the worker (not a process death)
    # travels back as an "error" message and is handled like a crash
    compiled, sequence = s27_setup
    fault_set = fresh_faults(compiled)
    bad = fault_set.records[0].fault.key()

    import repro.runtime.fabric.worker as worker_mod

    original = worker_mod.run_shard

    def exploding(compiled, faults, sequence, indices, kwargs, **kw):
        if any(faults[i].key() == bad for i in indices):
            raise RuntimeError("injected shard failure")
        return original(compiled, faults, sequence, indices, kwargs, **kw)

    monkeypatch.setattr(worker_mod, "run_shard", exploding)
    # fork workers inherit the monkeypatched module
    config = FabricConfig(
        workers=1, shard_size=8, backoff_base=0.01,
        start_method="fork",
    )
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    assert fault_set.records[0].status == QUARANTINED
    assert result.runtime_summary()["fabric"]["bisections"] >= 1


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
def test_fabric_checkpoint_roundtrip_and_resume(s27_setup, tmp_path):
    compiled, sequence = s27_setup
    expected = baseline(compiled, sequence)
    path = str(tmp_path / "fabric.ckpt")

    fault_set = fresh_faults(compiled)
    run_sharded_campaign(
        compiled, sequence, fault_set, workers=2, shard_size=8,
        checkpoint_path=path,
    )
    checkpoint = load_fabric_checkpoint(path)
    assert len(checkpoint.shards) == 4
    assert checkpoint.covered_indices() == set(range(32))

    # simulate a coordinator killed after three shards: drop the rest
    lines = open(path).read().splitlines(True)
    records = [json.loads(line) for line in lines]
    kept = [
        line
        for line, record in zip(lines, records)
        if record["type"] != "shard"
    ] + [
        line
        for line, record in zip(lines, records)
        if record["type"] == "shard"
    ][:3]
    with open(path, "w") as handle:
        handle.writelines(kept)

    resumed = fresh_faults(compiled)
    result = resume_sharded_campaign(
        path, compiled=compiled, fault_set=resumed
    )
    fabric = result.runtime_summary()["fabric"]
    assert fabric["resumed_shards"] == 3
    assert fabric["shards_completed"] == fabric["shards_planned"]
    assert signature(resumed) == expected


def test_fabric_resume_rejects_mismatched_faults(s27_setup, tmp_path):
    compiled, sequence = s27_setup
    path = str(tmp_path / "fabric.ckpt")
    fault_set = fresh_faults(compiled)
    run_sharded_campaign(
        compiled, sequence, fault_set, workers=0, checkpoint_path=path
    )
    wrong = fresh_faults(compiled)
    wrong.records = wrong.records[:-1]
    with pytest.raises(CheckpointError):
        resume_sharded_campaign(path, compiled=compiled, fault_set=wrong)


def test_load_fabric_checkpoint_requires_header(tmp_path):
    path = tmp_path / "bogus.ckpt"
    path.write_text('{"type": "shard", "id": [0]}\n')
    with pytest.raises(CheckpointError):
        load_fabric_checkpoint(str(path))


# ----------------------------------------------------------------------
# configuration and accounting
# ----------------------------------------------------------------------
def test_fabric_config_validation():
    with pytest.raises(ValueError):
        FabricConfig(workers=-1)
    with pytest.raises(ValueError):
        FabricConfig(max_retries=0)


def test_fabric_accounting_in_runtime_summary(s27_setup):
    compiled, sequence = s27_setup
    fault_set = fresh_faults(compiled)
    result = run_campaign(compiled, sequence, fault_set, workers=2)
    summary = result.runtime_summary()
    fabric = summary["fabric"]
    for key in (
        "workers", "shards_planned", "shards_completed", "retries",
        "respawns", "bisections", "timeouts", "quarantined_by_crash",
        "resumed_shards",
    ):
        assert key in fabric
    # a single-process result carries no fabric block at all
    single = fresh_faults(compiled)
    plain = run_campaign(compiled, sequence, single)
    assert "fabric" not in plain.runtime_summary()
