"""Property-based coverage of the fabric's retry backoff.

``ShardFabric._backoff`` is the only consumer of the fabric's RNG
(``FabricConfig.seed`` is documented as backoff-jitter-only), so its
contract is easy to state exactly:

* deterministic — two fabrics built with the same seed draw the same
  jittered delays, in the same order,
* monotone-capped — the un-jittered exponential ``base * 2**(n-1)`` is
  non-decreasing in the crash count and clamped to ``backoff_cap``,
* bounded jitter — every delay lies in ``[d, d * (1 + jitter)]`` where
  ``d`` is the clamped exponential for that crash count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.fabric import FabricConfig, ShardFabric


def _fabric(config):
    """A fabric shell: _backoff touches only .config and ._rng."""
    fabric = ShardFabric.__new__(ShardFabric)
    fabric.config = config
    import random

    fabric._rng = random.Random(config.seed)
    return fabric


configs = st.builds(
    FabricConfig,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    backoff_base=st.floats(
        min_value=1e-3, max_value=5.0, allow_nan=False, allow_infinity=False
    ),
    backoff_cap=st.floats(
        min_value=1e-3, max_value=60.0, allow_nan=False, allow_infinity=False
    ),
    backoff_jitter=st.floats(
        min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False
    ),
)


@settings(max_examples=200, deadline=None)
@given(config=configs, crashes=st.lists(
    st.integers(min_value=1, max_value=24), min_size=1, max_size=16
))
def test_backoff_deterministic_under_fixed_seed(config, crashes):
    first = _fabric(config)
    second = _fabric(config)
    for count in crashes:
        assert first._backoff(count) == second._backoff(count)


@settings(max_examples=200, deadline=None)
@given(config=configs, crashes=st.integers(min_value=1, max_value=64))
def test_backoff_jitter_stays_within_bound(config, crashes):
    fabric = _fabric(config)
    clamped = min(
        config.backoff_cap, config.backoff_base * (2 ** (crashes - 1))
    )
    delay = fabric._backoff(crashes)
    assert clamped <= delay <= clamped * (1.0 + config.backoff_jitter)


@settings(max_examples=100, deadline=None)
@given(config=configs)
def test_backoff_base_is_monotone_and_capped(config):
    """The un-jittered schedule never shrinks and never exceeds the cap.

    The jittered draws themselves need not be monotone (jitter is
    random), so the property is on the deterministic part: divide the
    jitter back out by drawing with a jitter-free twin config.
    """
    bare = FabricConfig(
        backoff_base=config.backoff_base,
        backoff_cap=config.backoff_cap,
        backoff_jitter=0.0,
        seed=config.seed,
    )
    fabric = _fabric(bare)
    delays = [fabric._backoff(count) for count in range(1, 32)]
    assert all(a <= b for a, b in zip(delays, delays[1:]))
    assert all(d <= config.backoff_cap for d in delays)
    assert delays[-1] == config.backoff_cap or (
        config.backoff_base * (2**30) <= config.backoff_cap
    )
