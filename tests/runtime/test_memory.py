"""RSS introspection: /proc reads, throttled sampling, size parsing."""

import pytest

from repro.runtime.memory import RssSampler, parse_size, read_rss_bytes


def test_read_rss_bytes_positive():
    # /proc/self/statm on Linux, getrusage elsewhere; either way a
    # running interpreter has a resident set
    rss = read_rss_bytes()
    assert rss is not None
    assert rss > 0


def test_read_rss_bytes_bad_path_falls_back():
    rss = read_rss_bytes(path="/no/such/statm")
    # the getrusage fallback still answers on any POSIX platform
    assert rss is None or rss > 0


class CountingRead:
    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if not self.values:
            return None
        if len(self.values) == 1:
            return self.values[0]
        return self.values.pop(0)


def test_sampler_throttles_reads():
    read = CountingRead([100, 200, 300])
    sampler = RssSampler(refresh=4, read=read)
    values = [sampler() for _ in range(9)]
    # first call reads, then the cached value is served until the
    # refresh stride rolls over
    assert values[0] == 100
    assert read.calls < 9
    assert read.calls >= 2
    assert sampler.peak == max(values)


def test_sampler_unavailable_reader_probed_once():
    read = CountingRead([])
    sampler = RssSampler(refresh=2, read=read)
    assert sampler() is None
    assert sampler() is None
    assert sampler() is None
    assert read.calls == 1  # permanently unavailable after one failure


def test_sampler_rejects_bad_refresh():
    with pytest.raises(ValueError):
        RssSampler(refresh=0)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1048576", 1 << 20),
        ("512M", 512 << 20),
        ("2g", 2 << 30),
        ("1K", 1 << 10),
        ("1KiB", 1 << 10),
        ("3kb", 3 << 10),
        ("1T", 1 << 40),
        ("1.5G", int(1.5 * (1 << 30))),
        (4096, 4096),
        (2.5, 2),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text", ["", "G", "12Q", "abc", "1..5M"])
def test_parse_size_rejects_garbage(text):
    with pytest.raises(ValueError, match="unparsable size"):
        parse_size(text)
