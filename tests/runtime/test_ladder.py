"""Degradation ladder policy and per-campaign ladder state."""

import pytest

from repro.runtime import (
    DegradationExhausted,
    DegradationLadder,
    LadderState,
    Rung,
)
from repro.runtime.ladder import MIN_NODE_LIMIT


def test_default_ladder_order():
    ladder = DegradationLadder()
    assert ladder.names() == ["MOT", "rMOT", "SOT", "3v"]
    assert ladder.describe() == "MOT -> rMOT -> SOT -> 3v"


def test_from_strategy_cuts_the_order():
    assert DegradationLadder.from_strategy("rMOT").names() == [
        "rMOT", "SOT", "3v"
    ]
    assert DegradationLadder.from_strategy("3v").names() == ["3v"]
    with pytest.raises(ValueError):
        DegradationLadder.from_strategy("MOTT")


def test_rung_node_limit_scales_and_floors():
    assert Rung("MOT").node_limit(10_000) == 10_000
    assert Rung("rMOT").node_limit(10_000) == 5_000
    assert Rung("SOT", 0.25).node_limit(10_000) == 2_500
    # tiny bases floor at MIN_NODE_LIMIT instead of handing a session
    # a limit too small to even hold its variables
    assert Rung("SOT", 0.25).node_limit(100) == MIN_NODE_LIMIT
    assert Rung("3v").node_limit(10_000) is None
    assert Rung("MOT").node_limit(None) is None


def test_three_valued_rung_must_be_last():
    with pytest.raises(ValueError):
        DegradationLadder(["MOT", "3v", "SOT"])
    with pytest.raises(ValueError):
        DegradationLadder([])


def test_symbolic_only_ladder_is_allowed():
    ladder = DegradationLadder([("MOT", 1.0), ("SOT", 0.5)])
    assert ladder.names() == ["MOT", "SOT"]
    assert all(r.symbolic for r in ladder.rungs)


def test_json_round_trip():
    ladder = DegradationLadder([("MOT", 0.75), "SOT", "3v"])
    restored = DegradationLadder.from_json(ladder.to_json())
    assert restored.names() == ladder.names()
    assert [r.scale for r in restored.rungs] == [0.75, 0.25, None]


def test_ladder_state_demotion_chain():
    state = LadderState(DegradationLadder(["MOT", "SOT", "3v"]))
    state.assign("f1")
    state.assign("f2")
    assert state.rung("f1").strategy == "MOT"
    assert state.demote("f1", frame=3, reason="space") == 1
    assert state.demote("f1", frame=7) == 2
    assert state.rung("f1").strategy == "3v"
    with pytest.raises(DegradationExhausted) as exc:
        state.demote("f1", frame=9)
    assert exc.value.fault_key == "f1"
    assert exc.value.rungs_tried == ["MOT", "SOT", "3v"]
    # bookkeeping only counts performed demotions
    assert state.demotions == 2
    assert state.demotion_log == [
        ("f1", "MOT", "SOT", 3, "space"),
        ("f1", "SOT", "3v", 7, None),
    ]
    assert state.population() == {"MOT": 1, "SOT": 0, "3v": 1}


def test_forget_drops_fault():
    state = LadderState(DegradationLadder())
    state.assign("f1")
    state.forget("f1")
    assert state.population()["MOT"] == 0
    state.forget("f1")  # idempotent
