"""Campaign runtime: exactness, budgets, degradation, checkpoint/resume.

The kill-and-resume acceptance scenario runs twice: in-process with a
fake clock (deterministic) and as a real subprocess killed with SIGINT
mid-run (the CLI contract).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.bdd.errors import SpaceLimitExceeded
from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.faults.collapse import collapse_faults
from repro.faults.status import DETECTED, QUARANTINED, FaultSet
from repro.runtime import (
    DegradationLadder,
    ResourceGovernor,
    resume_campaign,
    run_campaign,
)
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.fault_sim import SymbolicSession
from repro.symbolic.hybrid import hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant


class FakeClock:
    def __init__(self, inc):
        self.t = 0.0
        self.inc = inc

    def __call__(self):
        self.t += self.inc
        return self.t


@pytest.fixture(scope="module")
def ctr8_setup():
    compiled = compile_circuit(get_circuit("ctr8"))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 40, seed=7)
    return compiled, faults, sequence


def detected_map(fault_set):
    return {
        r.fault.key(): (r.detected_by, r.detected_at)
        for r in fault_set.detected()
    }


# ----------------------------------------------------------------------
# exactness: an untroubled campaign equals the classic pipeline
# ----------------------------------------------------------------------
def test_exact_campaign_matches_reference(s27_compiled, s27_fault_set,
                                          s27_sequence):
    reference = s27_fault_set.clone()
    eliminate_x_redundant(s27_compiled, s27_sequence, reference)
    fault_simulate_3v_parallel(s27_compiled, s27_sequence, reference)
    hybrid_fault_simulate(
        s27_compiled, s27_sequence, reference,
        strategy="MOT", node_limit=300_000,
    )
    result = run_campaign(
        s27_compiled, s27_sequence, s27_fault_set,
        strategy="MOT", node_limit=300_000,
    )
    assert result.stopped == "completed"
    assert result.exact
    assert result.frames_total == len(s27_sequence)
    assert detected_map(s27_fault_set) == detected_map(reference)


# ----------------------------------------------------------------------
# step atomicity: a mid-frame overflow must not corrupt the session
# ----------------------------------------------------------------------
def test_space_limit_mid_frame_leaves_session_intact(ctr8_setup):
    compiled, faults, sequence = ctr8_setup
    fault_set = FaultSet(faults)
    session = SymbolicSession(compiled, "MOT", node_limit=800)
    session.attach_faults(fault_set.records)
    blown = None
    for vector in sequence:
        before = (
            session.time,
            list(session.good_state),
            {key: (entry[0], dict(entry[1]), entry[2])
             for key, entry in session._store.items()},
        )
        try:
            session.step(vector)
        except SpaceLimitExceeded as exc:
            blown = (vector, exc)
            break
    assert blown is not None, "node limit was never hit"
    vector, exc = blown
    # the overflow is attributed to the offending fault ...
    assert exc.fault_key in {r.fault.key() for r in fault_set}
    # ... and the session is exactly as it was before the step
    after = (
        session.time,
        list(session.good_state),
        {key: (entry[0], dict(entry[1]), entry[2])
         for key, entry in session._store.items()},
    )
    assert after == before
    # the untouched session is still usable once the pressure is gone
    session.manager.node_limit = None
    session.step(vector)
    assert session.time == before[0] + 1


# ----------------------------------------------------------------------
# governor: deadline ~0 terminates promptly with a valid partial result
# ----------------------------------------------------------------------
def test_deadline_zero_stops_promptly(s27_compiled, s27_fault_set,
                                      s27_sequence):
    governor = ResourceGovernor(deadline=0.0)
    result = run_campaign(
        s27_compiled, s27_sequence, s27_fault_set,
        strategy="MOT", governor=governor,
    )
    assert result.stopped == "deadline"
    assert result.frames_total == 0
    assert not result.exact
    assert result.budget["deadline"] == 0.0
    # the partial result is still a coherent CampaignResult
    counts = result.fault_set.counts()
    assert counts["total"] == len(s27_fault_set)
    assert result.runtime_summary()["stopped"] == "deadline"


# ----------------------------------------------------------------------
# deadline mid-run + resume from the checkpoint (in-process, fake clock)
# ----------------------------------------------------------------------
def test_deadline_checkpoint_resume_matches_uninterrupted(
    tmp_path, s27_compiled, s27_fault_set, s27_sequence
):
    pristine = s27_fault_set.clone()
    path = tmp_path / "run.ckpt"
    governor = ResourceGovernor(deadline=1.0, clock=FakeClock(0.015))
    interrupted = run_campaign(
        s27_compiled, s27_sequence, s27_fault_set,
        strategy="MOT", node_limit=2000, governor=governor,
        checkpoint_path=str(path), checkpoint_every=5,
    )
    assert interrupted.stopped == "deadline"
    assert 0 < interrupted.frames_total < len(s27_sequence)
    assert interrupted.checkpoints_written >= 1
    assert not interrupted.exact

    resumed_set = pristine.clone()
    resumed = resume_campaign(
        str(path), compiled=s27_compiled, fault_set=resumed_set
    )
    assert resumed.stopped == "completed"
    assert resumed.resumed_from == interrupted.frames_total
    assert resumed.frames_total == len(s27_sequence)
    assert not resumed.exact  # resumed sessions are conservative

    uninterrupted_set = pristine.clone()
    run_campaign(
        s27_compiled, s27_sequence, uninterrupted_set,
        strategy="MOT", node_limit=2000,
    )
    # same faults detected, by the same strategies, at the same frames
    assert detected_map(resumed_set) == detected_map(uninterrupted_set)


# ----------------------------------------------------------------------
# degradation: per-fault budgets demote offenders, the campaign finishes
# ----------------------------------------------------------------------
def test_per_fault_budget_demotes_only_offenders(s27_compiled,
                                                 s27_fault_set,
                                                 s27_sequence):
    governor = ResourceGovernor(fault_frame_nodes=3)
    result = run_campaign(
        s27_compiled, s27_sequence, s27_fault_set,
        strategy="MOT", node_limit=300_000, governor=governor,
    )
    # per-fault violations never stop the campaign
    assert result.stopped == "completed"
    assert result.frames_total == len(s27_sequence)
    assert result.demotions > 0
    assert not result.exact
    # a full ladder ends on the three-valued rung: nothing quarantined
    assert not result.quarantined
    demoted_keys = {entry[0] for entry in result.demotion_log}
    all_keys = {r.fault.key() for r in s27_fault_set}
    assert demoted_keys <= all_keys


def test_tiny_node_limit_quarantines_only_offenders(ctr8_setup):
    compiled, faults, sequence = ctr8_setup
    fault_set = FaultSet(faults)
    # symbolic-only ladder: falling off the bottom means quarantine
    ladder = DegradationLadder([("MOT", 1.0), ("SOT", 0.5)])
    result = run_campaign(
        compiled, sequence, fault_set, ladder=ladder, node_limit=300,
    )
    assert result.stopped == "completed"
    assert result.frames_total == len(sequence)
    quarantined = fault_set.quarantined()
    assert quarantined, "expected some faults to exhaust the ladder"
    # only the offenders are quarantined; the rest finished the run
    # with an ordinary classification
    assert len(quarantined) < len(fault_set)
    assert sorted(result.quarantined) == sorted(
        r.fault.key() for r in quarantined
    )
    counts = fault_set.counts()
    assert counts["detected"] > 0
    assert (
        counts["detected"] + counts["undetected"]
        + counts["x_redundant"] + counts["quarantined"]
        == counts["total"]
    )


# ----------------------------------------------------------------------
# the acceptance scenario: SIGINT-killed CLI campaign, resumed, equal
# ----------------------------------------------------------------------
def _repro_env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _detected(payload):
    return {
        f["fault"] for f in payload["faults"] if f["status"] == DETECTED
    }


def test_sigint_kill_and_resume_cli(tmp_path):
    env = _repro_env()
    path = tmp_path / "run.ckpt"
    base = [sys.executable, "-m", "repro", "campaign", "ctr8",
            "--length", "200", "--seed", "7", "--json"]
    proc = subprocess.Popen(
        base + ["--checkpoint", str(path), "--checkpoint-every", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    # kill as soon as two between-frame checkpoints are on disk
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and proc.poll() is None:
        if path.exists():
            with open(path) as handle:
                if sum('"type": "checkpoint"' in line
                       for line in handle) >= 2:
                    break
        time.sleep(0.005)
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
    out, err = proc.communicate(timeout=60)
    if proc.returncode == 0:
        pytest.skip("campaign finished before the signal landed")
    assert proc.returncode == 3, err
    partial = json.loads(out)
    assert partial["runtime"]["stopped"] == "signal"
    assert partial["runtime"]["checkpoints_written"] >= 2

    resumed_proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign",
         "--resume", str(path), "--json"],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert resumed_proc.returncode == 0, resumed_proc.stderr
    resumed = json.loads(resumed_proc.stdout)
    assert resumed["runtime"]["stopped"] == "completed"
    assert resumed["runtime"]["resumed_from"] >= 2
    assert resumed["runtime"]["exact"] is False
    assert resumed["runtime"]["checkpoints_written"] >= 1

    reference_proc = subprocess.run(
        base, env=env, capture_output=True, text=True, timeout=120,
    )
    assert reference_proc.returncode == 0, reference_proc.stderr
    reference = json.loads(reference_proc.stdout)
    # the killed-and-resumed campaign detects exactly the same fault
    # set as the uninterrupted one (MOT accumulators restart on resume,
    # so detection *times* may be later — conservative, never lossy)
    assert _detected(resumed) == _detected(reference)


def test_quarantined_status_excluded_from_coverage(ctr8_setup):
    compiled, faults, _ = ctr8_setup
    fault_set = FaultSet(faults)
    record = fault_set.records[0]
    record.mark_quarantined()
    assert record.status == QUARANTINED
    assert fault_set.coverage() == 0.0
    assert record not in fault_set.symbolic_candidates()
