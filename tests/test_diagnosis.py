"""Symbolic fault diagnosis."""

import random

import pytest

from repro.baselines.enumeration import all_states, simulate_concrete
from repro.circuit.compile import compile_circuit
from repro.circuits.generators import johnson, traffic_light
from repro.circuits.iscas import s27
from repro.diagnosis import diagnose
from repro.faults.collapse import collapse_faults
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.evaluation import generate_response


@pytest.mark.parametrize("fault_index", [0, 5, 12, 20])
def test_true_fault_is_always_a_candidate(fault_index):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault = faults[fault_index]
    sequence = random_sequence_for(compiled, 20, seed=fault_index)
    rng = random.Random(fault_index)
    state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
    response = generate_response(compiled, sequence, state, fault=fault)
    result = diagnose(compiled, sequence, response, faults)
    keys = {c.fault.key() for c in result.candidates}
    assert fault.key() in keys
    # and the fault must never be exonerated
    assert fault.key() not in {f.key() for f in result.exonerated}


def test_exonerations_match_enumeration():
    """A fault is exonerated iff NO initial state of the faulty machine
    reproduces the response — verified against brute force."""
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 8, seed=3)
    fault = faults[7]
    response = generate_response(compiled, sequence, [1, 0, 1],
                                 fault=fault)
    result = diagnose(compiled, sequence, response, faults)
    response_t = tuple(tuple(frame) for frame in response)
    for candidate in faults:
        reproducible = any(
            simulate_concrete(compiled, sequence, q, candidate)
            == response_t
            for q in all_states(compiled.num_dffs)
        )
        is_candidate = candidate.key() in {
            c.fault.key() for c in result.candidates
        }
        assert is_candidate == reproducible, candidate


def test_witness_states_really_explain():
    compiled = compile_circuit(johnson(5))
    faults, _ = collapse_faults(compiled)
    fault = faults[3]
    sequence = random_sequence_for(compiled, 15, seed=2)
    response = generate_response(
        compiled, sequence, [0, 1, 0, 1, 1], fault=fault
    )
    result = diagnose(compiled, sequence, response, faults)
    response_t = tuple(tuple(frame) for frame in response)
    for candidate in result.candidates[:5]:
        assert candidate.witness is not None
        replay = simulate_concrete(
            compiled, sequence, candidate.witness, candidate.fault
        )
        assert replay == response_t


def test_fault_free_consistency_flag():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 15, seed=9)
    clean = generate_response(compiled, sequence, [0, 0, 0])
    result = diagnose(compiled, sequence, clean, faults)
    assert result.fault_free_consistent
    assert not result.is_faulty


def test_longer_sequences_narrow_candidates():
    compiled = compile_circuit(traffic_light())
    faults, _ = collapse_faults(compiled)
    fault = faults[10]
    sequence = random_sequence_for(compiled, 40, seed=5)
    response = generate_response(compiled, sequence, [0, 0, 0],
                                 fault=fault)
    short = diagnose(compiled, sequence[:5], response[:5], faults)
    full = diagnose(compiled, sequence, response, faults)
    assert len(full.candidates) <= len(short.candidates)


def test_length_mismatch_rejected():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    with pytest.raises(ValueError):
        diagnose(compiled, [(0, 0, 0, 0)], [], faults)


def test_known_initial_state_sharpens_diagnosis():
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault = faults[4]
    sequence = random_sequence_for(compiled, 15, seed=6)
    state = [1, 1, 0]
    response = generate_response(compiled, sequence, state, fault=fault)
    free = diagnose(compiled, sequence, response, faults)
    pinned = diagnose(
        compiled, sequence, response, faults, initial_state=state
    )
    assert len(pinned.candidates) <= len(free.candidates)
    assert fault.key() in {c.fault.key() for c in pinned.candidates}
