"""Every shipped example must run to completion (they contain their own
assertions about the phenomena they demonstrate)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    p.name
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob(
        "*.py"
    )
)


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"
