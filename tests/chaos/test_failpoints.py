"""CI chaos job: sweep the failpoint catalog, demand the contract.

Every documented injection site (``repro.failpoints.CATALOG``) is
driven through a real campaign/audit/journal/service run with its
failure armed, and the run must end in one of exactly three states:

* **identical verdicts** — after recovery/retry/resume, the fault
  statuses match the uninjected baseline bit for bit,
* **a clean typed error** — ``CheckpointError`` / ``WorkerCrashed`` /
  another :class:`~repro.runtime.errors.ReproError` subclass, with
  every durable file still valid (``fsck`` clean),
* **quarantine** — affected faults conservatively marked, never
  silently mis-verdicted (a chaos detection must exist in the
  baseline).

Never a silent wrong answer.  The sweep is the acceptance test of the
failpoint tentpole; the dedicated tests below it pin the sharper
guarantees (hang accounting, partial-frame tolerance, CRC quarantine
on resume, crash-exactly-between-result-and-journal recovery).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro import failpoints
from repro.audit import AuditOptions, run_audit
from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import CheckpointError, run_campaign
from repro.runtime.campaign import resume_campaign
from repro.runtime.errors import ReproError
from repro.runtime.fabric import (
    FabricConfig,
    resume_sharded_campaign,
    run_sharded_campaign,
)
from repro.runtime.fsck import fsck_file
from repro.sequences.random_seq import random_sequence_for


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.clear()
    yield
    failpoints.clear()


@pytest.fixture(scope="module")
def s27_setup():
    compiled = compile_circuit(get_circuit("s27"))
    sequence = random_sequence_for(compiled, 20, seed=7)
    baseline = fresh_faults(compiled)
    run_campaign(compiled, sequence, baseline)
    return compiled, sequence, signature(baseline)


def fresh_faults(compiled):
    faults, _ = collapse_faults(compiled)
    return FaultSet(faults)


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


def detected_keys(fault_set):
    return {r.fault.key() for r in fault_set.detected()}


def assert_conservative(fault_set, expected_signature):
    """No invented verdicts: chaos detections ⊆ baseline detections."""
    baseline_detected = {
        key for key, status, _by, _at in expected_signature
        if status == "detected"
    }
    invented = detected_keys(fault_set) - baseline_detected
    assert not invented, f"chaos run invented detections: {invented}"


# ----------------------------------------------------------------------
# per-site scenarios
# ----------------------------------------------------------------------
def _scenario_campaign_writer(site, s27_setup, tmp_path):
    """A checkpoint-writer failure mid-campaign: typed error, valid
    file, resume reproduces the baseline (satellite: every JSONL
    writer under ENOSPC and torn-write)."""
    compiled, sequence, expected = s27_setup
    path = str(tmp_path / "run.ckpt")
    failpoints.set_failpoint(site, "after:2")
    fault_set = fresh_faults(compiled)
    with pytest.raises(CheckpointError):
        run_campaign(
            compiled, sequence, fault_set,
            checkpoint_path=path, checkpoint_every=2,
        )
    failpoints.clear()
    report = fsck_file(path)
    assert report.corrupt == [] and report.problems == []
    resumed = fresh_faults(compiled)
    result = resume_campaign(path, compiled=compiled, fault_set=resumed)
    assert result.stopped == "completed"
    assert signature(resumed) == expected


def _scenario_fabric_writer(site, s27_setup, tmp_path):
    compiled, sequence, expected = s27_setup
    path = str(tmp_path / "fab.ckpt")
    failpoints.set_failpoint(site, "after:2")
    fault_set = fresh_faults(compiled)
    with pytest.raises(CheckpointError):
        run_sharded_campaign(
            compiled, sequence, fault_set,
            config=FabricConfig(workers=0, shard_size=8),
            checkpoint_path=path,
        )
    failpoints.clear()
    report = fsck_file(path)
    assert report.corrupt == [] and report.problems == []
    resumed = fresh_faults(compiled)
    result = resume_sharded_campaign(
        path, compiled=compiled, fault_set=resumed,
    )
    assert result.stopped == "completed"
    assert signature(resumed) == expected


def _scenario_audit_writer(site, s27_setup, tmp_path):
    compiled, sequence, _expected = s27_setup
    path = str(tmp_path / "audit.ckpt")
    fault_set = fresh_faults(compiled)
    run_campaign(compiled, sequence, fault_set)
    options = AuditOptions(mode="full", checkpoint_path=path)
    failpoints.set_failpoint(site, "after:2")
    with pytest.raises(CheckpointError):
        run_audit(
            compiled, sequence, fault_set, options=options,
            complete=False, exact=False,
        )
    failpoints.clear()
    assert fsck_file(path).corrupt == []
    # the resumed audit re-verifies the uncovered faults and passes
    report = run_audit(
        compiled, sequence, fault_set, options=options,
        complete=False, exact=False,
    )
    assert report.ok


def _scenario_journal_writer(site, s27_setup, tmp_path):
    from repro.service.journal import JobJournal, replay_journal

    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.service_event("start")
    journal.job_event("job-1", "submitted", spec={"circuit": "s27"})
    failpoints.set_failpoint(site, "once")
    with pytest.raises(CheckpointError):
        journal.job_event("job-1", "running")
    failpoints.clear()
    journal.close()
    # prior durable state intact; the failed transition simply never
    # happened
    jobs, _service = replay_journal(path)
    assert jobs["job-1"]["state"] == "submitted"
    # a restarted journal (seeded from replay, as the server does)
    # appends cleanly past the damage
    journal = JobJournal(path)
    journal.note_replayed_state("job-1", jobs["job-1"]["state"])
    journal.job_event("job-1", "running")
    journal.job_event("job-1", "done")
    journal.close()
    jobs, _service = replay_journal(path)
    assert jobs["job-1"]["state"] == "done"
    assert fsck_file(path).ok


def _scenario_bdd_alloc(site, s27_setup, tmp_path):
    compiled, sequence, expected = s27_setup
    failpoints.set_failpoint(site, "after:25")
    fault_set = fresh_faults(compiled)
    result = run_campaign(compiled, sequence, fault_set)
    assert result.stopped == "completed"
    assert_conservative(fault_set, expected)


def _scenario_pressure(site, s27_setup, tmp_path):
    from repro.bdd.pressure import PressureConfig

    compiled, sequence, expected = s27_setup
    failpoints.set_failpoint(site, "once")
    fault_set = fresh_faults(compiled)
    result = run_campaign(
        compiled, sequence, fault_set,
        node_limit=400,
        pressure=PressureConfig(
            gc_watermark=0.02, cache_budget=8, reorder_rescue=True,
        ),
    )
    assert result.stopped == "completed"
    assert_conservative(fault_set, expected)


def _scenario_heartbeat(site, s27_setup, tmp_path):
    compiled, sequence, expected = s27_setup
    failpoints.set_failpoint(site, "every:2")
    fault_set = fresh_faults(compiled)
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        config=FabricConfig(workers=2, shard_size=8, backoff_base=0.01),
    )
    assert result.stopped == "completed"
    assert signature(fault_set) == expected


def _scenario_stall(site, s27_setup, tmp_path):
    run_stall_campaign(s27_setup, "fabric.worker.stall=after:1")


def _scenario_pipe_truncate(site, s27_setup, tmp_path):
    compiled, sequence, expected = s27_setup
    # each worker truncates its second result frame and wedges; the
    # coordinator must buffer the partial frame without blocking, let
    # the hang watchdog reap the worker, and retry the shard
    failpoints.set_failpoint(site, "after:1")
    fault_set = fresh_faults(compiled)
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        config=FabricConfig(
            workers=2, shard_size=8, hang_grace=8,
            heartbeat_interval=0.05, backoff_base=0.01,
        ),
    )
    assert result.stopped == "completed"
    assert signature(fault_set) == expected


def _scenario_respawn_fail(site, s27_setup, tmp_path):
    compiled, sequence, expected = s27_setup
    # a stalled worker forces a respawn; the first respawn attempt
    # fails (tolerated), the retry succeeds, the campaign completes
    failpoints.configure(
        "fabric.worker.stall=after:1,fabric.respawn.fail=once"
    )
    events = []
    fault_set = fresh_faults(compiled)
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        config=FabricConfig(
            workers=2, shard_size=8, hang_grace=8,
            heartbeat_interval=0.05, backoff_base=0.01,
            events=lambda e: events.append(e["event"]),
        ),
    )
    assert result.stopped == "completed"
    assert signature(fault_set) == expected
    assert "respawn-failed" in events


def _scenario_service_crash(site, s27_setup, tmp_path):
    run_service_crash_drill(tmp_path)


def _scenario_disk_statvfs(site, s27_setup, tmp_path):
    """The kernel lying that the disk is full: the relief ladder runs,
    then a clean checkpointed surrender (``stopped == "disk"``) —
    never a crash, never a corrupt file."""
    compiled, sequence, expected = s27_setup
    path = str(tmp_path / "lied.ckpt")
    failpoints.set_failpoint(site, "every:1")
    fault_set = fresh_faults(compiled)
    result = run_campaign(
        compiled, sequence, fault_set,
        checkpoint_path=path, checkpoint_every=1,
        disk={"free_floor": 1024 * 1024},
    )
    assert result.stopped == "disk"
    failpoints.clear()
    assert fsck_file(path).ok
    resumed = fresh_faults(compiled)
    result = resume_campaign(path, compiled=compiled, fault_set=resumed)
    assert result.stopped == "completed"
    assert_conservative(resumed, expected)


def _scenario_disk_compact_crash(site, s27_setup, tmp_path):
    """A crash mid-compaction, before the atomic rename: typed error,
    original checkpoint byte-identical, no temp orphans; the retry
    succeeds and resume reproduces the baseline."""
    from repro.runtime.disk import compact_checkpoint

    compiled, sequence, expected = s27_setup
    path = tmp_path / "run.ckpt"
    fault_set = fresh_faults(compiled)
    run_campaign(
        compiled, sequence, fault_set,
        checkpoint_path=str(path), checkpoint_every=2,
    )
    original = path.read_bytes()
    failpoints.set_failpoint(site, "once")
    with pytest.raises(CheckpointError):
        compact_checkpoint(str(path))
    failpoints.clear()
    assert path.read_bytes() == original
    assert not [
        name for name in os.listdir(tmp_path) if name.endswith(".tmp")
    ]
    compact_checkpoint(str(path))
    assert fsck_file(str(path)).ok
    resumed = fresh_faults(compiled)
    result = resume_campaign(
        str(path), compiled=compiled, fault_set=resumed
    )
    assert result.stopped == "completed"
    assert signature(resumed) == expected


SCENARIOS = {
    "checkpoint.write.enospc": _scenario_campaign_writer,
    "checkpoint.write.torn": _scenario_campaign_writer,
    "checkpoint.fsync.before": _scenario_campaign_writer,
    "checkpoint.fsync.after": _scenario_campaign_writer,
    "fabric.checkpoint.write.enospc": _scenario_fabric_writer,
    "fabric.checkpoint.write.torn": _scenario_fabric_writer,
    "audit.checkpoint.write.enospc": _scenario_audit_writer,
    "audit.checkpoint.write.torn": _scenario_audit_writer,
    "journal.write.enospc": _scenario_journal_writer,
    "journal.write.torn": _scenario_journal_writer,
    "bdd.alloc": _scenario_bdd_alloc,
    "pressure.evict": _scenario_pressure,
    "pressure.gc": _scenario_pressure,
    "pressure.rescue": _scenario_pressure,
    "fabric.heartbeat.drop": _scenario_heartbeat,
    "fabric.heartbeat.dup": _scenario_heartbeat,
    "fabric.worker.stall": _scenario_stall,
    "fabric.pipe.truncate": _scenario_pipe_truncate,
    "fabric.respawn.fail": _scenario_respawn_fail,
    "service.result.crash": _scenario_service_crash,
    "disk.statvfs": _scenario_disk_statvfs,
    "disk.compact.crash": _scenario_disk_compact_crash,
}


def test_every_catalogued_site_has_a_sweep_scenario():
    assert set(SCENARIOS) == set(failpoints.SITES)


@pytest.mark.parametrize("site", sorted(SCENARIOS))
def test_catalog_sweep_contract(site, s27_setup, tmp_path):
    """Verdict identity, a typed error, or quarantine — never a
    silent wrong answer."""
    try:
        SCENARIOS[site](site, s27_setup, tmp_path)
    except ReproError:
        raise AssertionError(
            f"site {site}: scenario let a typed error escape unasserted"
        )


# ----------------------------------------------------------------------
# hang watchdog
# ----------------------------------------------------------------------
def run_stall_campaign(s27_setup, spec):
    compiled, sequence, expected = s27_setup
    failpoints.configure(spec, replace=True)
    events = []
    fault_set = fresh_faults(compiled)
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        config=FabricConfig(
            workers=2, shard_size=8, hang_grace=8,
            heartbeat_interval=0.05, backoff_base=0.01,
            events=lambda e: events.append(e["event"]),
        ),
    )
    assert result.stopped == "completed"
    assert signature(fault_set) == expected
    fabric = result.runtime_summary()["fabric"]
    assert fabric["hangs"] >= 1, (
        "the stalled-but-alive worker was never detected as a hang"
    )
    assert "hang" in events
    return fabric


def test_hang_watchdog_kills_stalled_worker_and_accounts_it(s27_setup):
    """Satellite: a worker that beats, then wedges (alive, silent) is
    killed after hang_grace missed beats and accounted as a hang —
    distinguishable from the dead-process respawn path."""
    fabric = run_stall_campaign(s27_setup, "fabric.worker.stall=after:1")
    # hangs are their own counter, not folded into crash retries
    assert fabric["hangs"] >= 1


def test_hang_watchdog_disabled_with_explicit_timeout(s27_setup):
    """heartbeat_timeout (the stricter legacy knob) takes precedence;
    the stall is then caught by it instead, still to exact verdicts."""
    compiled, sequence, expected = s27_setup
    failpoints.set_failpoint("fabric.worker.stall", "after:1")
    fault_set = fresh_faults(compiled)
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        config=FabricConfig(
            workers=2, shard_size=8, heartbeat_timeout=0.4,
            heartbeat_interval=0.05, backoff_base=0.01,
        ),
    )
    assert result.stopped == "completed"
    assert signature(fault_set) == expected


# ----------------------------------------------------------------------
# CRC quarantine on resume (flipped byte, not torn tail)
# ----------------------------------------------------------------------
def checkpointed_run(s27_setup, tmp_path):
    compiled, sequence, _expected = s27_setup
    path = tmp_path / "run.ckpt"
    fault_set = fresh_faults(compiled)
    run_campaign(
        compiled, sequence, fault_set,
        checkpoint_path=str(path), checkpoint_every=5,
    )
    return compiled, path


def flip_byte_in_line(path, line_no, needle):
    lines = path.read_bytes().split(b"\n")
    line = lines[line_no]
    pos = line.find(needle)
    assert pos >= 0, f"{needle!r} not in line {line_no}"
    lines[line_no] = line[:pos] + bytes([line[pos] ^ 0x01]) + line[pos + 1:]
    path.write_bytes(b"\n".join(lines))


def test_flipped_byte_is_quarantined_by_resume_and_fsck(
    s27_setup, tmp_path
):
    """Acceptance: a flipped byte in a checkpoint is CRC-detected,
    quarantined (warning, not crash), and reported by both fsck and
    the resume path."""
    compiled, path = checkpointed_run(s27_setup, tmp_path)
    # damage a mid-file snapshot (line 1 = first checkpoint record);
    # the header and later snapshots stay intact
    flip_byte_in_line(path, 1, b'"frame"')
    report = fsck_file(str(path))
    assert not report.ok
    assert [entry["line"] for entry in report.corrupt] == [2]

    resumed = fresh_faults(compiled)
    with pytest.warns(RuntimeWarning, match="quarantined corrupt record"):
        result = resume_campaign(
            str(path), compiled=compiled, fault_set=resumed
        )
    assert result.stopped == "completed"


def test_flipped_byte_in_header_refuses_resume(s27_setup, tmp_path):
    """Verdict-affecting loss (the header) refuses with a typed error
    instead of guessing."""
    compiled, path = checkpointed_run(s27_setup, tmp_path)
    flip_byte_in_line(path, 0, b'"fingerprint"')
    resumed = fresh_faults(compiled)
    with pytest.warns(RuntimeWarning):
        with pytest.raises(CheckpointError, match="no header record"):
            resume_campaign(str(path), compiled=compiled, fault_set=resumed)


# ----------------------------------------------------------------------
# service: crash between result write and terminal journal record
# ----------------------------------------------------------------------
JOB = {"circuit": "s27", "length": 30, "seed": 3, "shard_size": 8}
POLL = 0.05


def _repro_env(**extra):
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAILPOINTS", None)
    env.update(extra)
    return env


def _start_daemon(state_dir, env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--queue-limit", "4"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, start_new_session=True,
    )
    endpoint = os.path.join(str(state_dir), "endpoint.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(f"daemon died on startup: {out} {err}")
        if os.path.exists(endpoint):
            with open(endpoint, encoding="utf-8") as handle:
                record = json.load(handle)
            if record.get("pid") == proc.pid:
                base = f"http://{record['host']}:{record['port']}"
                try:
                    _request(base, "GET", "/healthz")
                    return proc, base
                except (urllib.error.URLError, OSError):
                    pass
        time.sleep(POLL)
    raise AssertionError("daemon never became healthy")


def _request(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_done(base, job_id, timeout=300):
    deadline = time.monotonic() + timeout
    body = None
    while time.monotonic() < deadline:
        _, body = _request(base, "GET", f"/jobs/{job_id}")
        if body.get("state") == "done":
            return body
        assert body.get("state") not in ("failed", "cancelled"), body
        time.sleep(POLL)
    raise AssertionError(f"job {job_id} never finished: {body}")


def run_service_crash_drill(tmp_path):
    """Crash the daemon exactly between the result write and the
    terminal journal record; a restart must requeue and reproduce."""
    state_dir = tmp_path / "state"
    chaos_env = _repro_env(REPRO_FAILPOINTS="service.result.crash=once")
    proc, base = _start_daemon(state_dir, chaos_env)
    status, body = _request(base, "POST", "/jobs", JOB)
    assert status == 202, body
    job_id = body["id"]
    # the failpoint hard-exits the daemon after the result file lands
    # but before the journal's "done" record
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 86, (proc.returncode, out, err)

    clean_env = _repro_env()
    proc, base = _start_daemon(state_dir, clean_env)
    try:
        recovered = _poll_done(base, job_id)
        assert recovered["result"]["stopped"] == "completed"

        # reproduction bar: a fresh run of the same spec on the same
        # daemon agrees exactly
        status, body = _request(base, "POST", "/jobs", JOB)
        assert status == 202, body
        reference = _poll_done(base, body["id"])
        assert (
            recovered["result"]["verdicts"]
            == reference["result"]["verdicts"]
        )
        assert (
            recovered["result"]["counts"] == reference["result"]["counts"]
        )
    finally:
        os.kill(proc.pid, signal.SIGTERM)
        proc.communicate(timeout=60)


def test_service_crash_between_result_and_journal(tmp_path):
    run_service_crash_drill(tmp_path)
