"""Chaos: kill the campaign daemon, demand graceful drain / recovery.

Two failure modes, two contracts:

* ``SIGTERM`` (service manager shutdown) — the daemon stops admitting,
  asks in-flight jobs to checkpoint at their next shard boundary,
  flushes the journal and exits 0.  A restart requeues the interrupted
  job and finishes it.
* ``SIGKILL`` (OOM killer, power loss) — no drain happened, the
  journal's last words are ``running``.  A restart must replay the
  journal, requeue the job, resume its campaign checkpoint and produce
  verdicts **byte-identical** to an uninterrupted run of the same spec
  (fabric-style resume is exact, and service jobs run sharded).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro

#: long campaign, tiny shards: many checkpoint/drain points
JOB = {"circuit": "ctr8", "length": 2000, "seed": 11, "shard_size": 2}
POLL = 0.05


def _repro_env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(state_dir, env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--queue-limit", "4"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, start_new_session=True,
    )
    endpoint = os.path.join(str(state_dir), "endpoint.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(f"daemon died on startup: {out} {err}")
        if os.path.exists(endpoint):
            with open(endpoint, encoding="utf-8") as handle:
                record = json.load(handle)
            if record.get("pid") == proc.pid:
                base = f"http://{record['host']}:{record['port']}"
                try:
                    _request(base, "GET", "/healthz")
                    return proc, base
                except (urllib.error.URLError, OSError):
                    pass
        time.sleep(POLL)
    raise AssertionError("daemon never became healthy")


def _request(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_for_progress(state_dir, job_id, min_shards=2, timeout=120):
    """Block until the job's campaign checkpoint holds completed shards."""
    path = os.path.join(str(state_dir), "jobs", job_id, "campaign.ckpt")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                if sum('"type": "shard"' in line
                       for line in handle) >= min_shards:
                    return
        time.sleep(POLL)
    raise AssertionError(f"job {job_id} never checkpointed a shard")


def _poll_done(base, job_id, timeout=300):
    deadline = time.monotonic() + timeout
    body = None
    while time.monotonic() < deadline:
        _, body = _request(base, "GET", f"/jobs/{job_id}")
        if body.get("state") == "done":
            return body
        assert body.get("state") not in ("failed", "cancelled"), body
        time.sleep(POLL)
    raise AssertionError(f"job {job_id} never finished: {body}")


def _journal_states(state_dir, job_id):
    path = os.path.join(str(state_dir), "journal.jsonl")
    out = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail after SIGKILL
            if record.get("type") == "job" and record.get("id") == job_id:
                out.append(record["state"])
    return out


def test_sigterm_drains_gracefully_and_restart_finishes(tmp_path):
    env = _repro_env()
    state_dir = tmp_path / "state"
    proc, base = _start_daemon(state_dir, env)
    status, body = _request(base, "POST", "/jobs", JOB)
    assert status == 202, body
    job_id = body["id"]
    _wait_for_progress(state_dir, job_id)

    os.kill(proc.pid, signal.SIGTERM)
    out, err = proc.communicate(timeout=120)
    # the drain contract: exit 0, journal flushed, job interrupted
    assert proc.returncode == 0, (proc.returncode, out, err)
    assert "draining" in out and "drained" in out
    history = _journal_states(state_dir, job_id)
    if history[-1] == "done":
        pytest.skip("job finished before the signal landed")
    assert history[-1] == "interrupted", history

    proc, base = _start_daemon(state_dir, env)
    try:
        final = _poll_done(base, job_id)
        assert final["result"]["stopped"] == "completed"
        history = _journal_states(state_dir, job_id)
        assert history[-1] == "done"
        assert "interrupted" in history
    finally:
        os.kill(proc.pid, signal.SIGTERM)
        proc.communicate(timeout=60)


def test_sigkill_recovery_reproduces_verdicts_exactly(tmp_path):
    env = _repro_env()
    state_dir = tmp_path / "state"
    proc, base = _start_daemon(state_dir, env)
    status, body = _request(base, "POST", "/jobs", JOB)
    assert status == 202, body
    job_id = body["id"]
    _wait_for_progress(state_dir, job_id)

    # no drain, no flush beyond the per-record fsync: power loss
    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    proc.communicate(timeout=60)
    assert proc.returncode == -signal.SIGKILL
    history = _journal_states(state_dir, job_id)
    if history[-1] == "done":
        pytest.skip("job finished before the kill landed")
    assert history[-1] == "running", history

    # the restarted daemon replays the journal and requeues the job
    proc, base = _start_daemon(state_dir, env)
    try:
        recovered = _poll_done(base, job_id)
        history = _journal_states(state_dir, job_id)
        # requeue edge: ... running -> submitted(recovered) -> ... done
        assert history[history.index("running") + 1] == "submitted"

        # the acceptance bar: byte-identical verdicts vs a fresh,
        # uninterrupted run of the very same spec on the same daemon
        status, body = _request(base, "POST", "/jobs", JOB)
        assert status == 202, body
        reference = _poll_done(base, body["id"])
        assert (
            recovered["result"]["verdicts"]
            == reference["result"]["verdicts"]
        )
        assert (
            recovered["result"]["counts"] == reference["result"]["counts"]
        )
    finally:
        os.kill(proc.pid, signal.SIGTERM)
        proc.communicate(timeout=60)
