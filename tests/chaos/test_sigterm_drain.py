"""Chaos: SIGTERM a sharded campaign, demand a clean checkpoint.

``SIGTERM`` is what service managers (systemd, Kubernetes, ``docker
stop``) send before escalating to ``SIGKILL`` — and they send it to
the whole process group.  The fabric must treat it exactly like
``SIGINT``: the coordinator drains (in-flight shards finish, no new
dispatches, a final fabric checkpoint survives on disk), workers
ignore the group-delivered signal instead of dying mid-shard, and a
resume completes the campaign with verdicts identical to an
uninterrupted run (a fabric resume is exact).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.faults.status import DETECTED
from repro.runtime.fabric import load_fabric_checkpoint


def _repro_env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _detected(payload):
    return {
        f["fault"] for f in payload["faults"] if f["status"] == DETECTED
    }


def test_sigterm_process_group_drains_sharded_campaign(tmp_path):
    env = _repro_env()
    path = tmp_path / "run.ckpt"
    base = [sys.executable, "-m", "repro", "campaign", "ctr8",
            "--length", "200", "--seed", "7", "--json"]
    # small shards so the drain point (a shard boundary) arrives fast
    proc = subprocess.Popen(
        base + ["--workers", "2", "--shard-size", "8",
                "--checkpoint", str(path)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, start_new_session=True,
    )
    # SIGTERM the whole group once at least one shard is checkpointed:
    # the coordinator must drain, the workers must survive the signal
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and proc.poll() is None:
        if path.exists():
            with open(path) as handle:
                if sum('"type": "shard"' in line for line in handle) >= 1:
                    break
        time.sleep(0.005)
    if proc.poll() is None:
        os.killpg(os.getpgid(proc.pid), signal.SIGTERM)
    out, err = proc.communicate(timeout=120)
    if proc.returncode == 0:
        pytest.skip("campaign finished before the signal landed")
    # exit 3 = graceful signal stop with a final checkpoint, exactly
    # like SIGINT; any other code means the group signal killed us
    assert proc.returncode == 3, (proc.returncode, err)
    partial = json.loads(out)
    assert partial["runtime"]["stopped"] == "signal"

    # the checkpoint is clean: parseable header + completed shards
    checkpoint = load_fabric_checkpoint(str(path))
    assert checkpoint.shards, "drain must preserve completed shards"

    resumed_proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign",
         "--resume", str(path), "--json"],
        env=env, capture_output=True, text=True, timeout=240,
    )
    assert resumed_proc.returncode == 0, resumed_proc.stderr
    resumed = json.loads(resumed_proc.stdout)
    assert resumed["runtime"]["stopped"] == "completed"

    reference_proc = subprocess.run(
        base + ["--workers", "0", "--shard-size", "8"],
        env=env, capture_output=True, text=True, timeout=240,
    )
    assert reference_proc.returncode == 0, reference_proc.stderr
    reference = json.loads(reference_proc.stdout)
    # a fabric resume re-runs whole shards, so — unlike an in-process
    # campaign resume — the verdicts match the uninterrupted run
    assert _detected(resumed) == _detected(reference)
