"""Chaos: SIGKILL a worker mid-audit.

The sharded audit must survive a murdered worker — the crashed shard
is retried on a fresh process — and still produce byte-identical
verdicts to an undisturbed serial audit.  Randomized by CHAOS_SEED
like the campaign chaos tests.
"""

import json
import os
import random
import signal

import pytest

from repro.audit import AuditOptions, run_audit
from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime.fabric import FabricConfig
from repro.runtime import run_campaign
from repro.sequences.random_seq import random_sequence_for

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1"))


@pytest.fixture(scope="module")
def audited_ctr8():
    compiled = compile_circuit(get_circuit("ctr8"))
    sequence = random_sequence_for(compiled, 40, seed=7)
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    result = run_campaign(compiled, sequence, fault_set)
    serial = run_audit(
        compiled,
        sequence,
        fault_set,
        options=AuditOptions(mode="full", seed=CHAOS_SEED),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed",
        exact=result.exact,
    )
    expected = json.dumps(serial.to_json(), sort_keys=True)
    return compiled, sequence, fault_set, result, expected


def test_sigkill_worker_mid_audit(audited_ctr8):
    compiled, sequence, fault_set, result, expected = audited_ctr8
    rng = random.Random(CHAOS_SEED)
    target_dispatch = rng.randrange(1, 3)
    state = {"dispatches": 0, "killed": None}

    def events(event):
        if event["event"] != "dispatch" or state["killed"] is not None:
            return
        state["dispatches"] += 1
        if state["dispatches"] == target_dispatch:
            state["killed"] = event["pid"]
            os.kill(event["pid"], signal.SIGKILL)

    config = FabricConfig(
        workers=2, shard_size=4, events=events, backoff_base=0.01
    )
    report = run_audit(
        compiled,
        sequence,
        fault_set,
        options=AuditOptions(mode="full", seed=CHAOS_SEED),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed",
        exact=result.exact,
        fabric_config=config,
    )
    assert state["killed"] is not None, (
        f"dispatch #{target_dispatch} never happened "
        f"({state['dispatches']} total) — shrink target_dispatch"
    )
    assert json.dumps(report.to_json(), sort_keys=True) == expected, (
        f"audit verdicts diverged after SIGKILL (seed {CHAOS_SEED})"
    )


def test_sigkill_then_resume_from_audit_checkpoint(audited_ctr8, tmp_path):
    # a killed coordinator leaves a partial audit checkpoint behind;
    # resuming it sharded must reach the same verdicts as the serial
    # baseline
    compiled, sequence, fault_set, result, expected = audited_ctr8
    path = str(tmp_path / "audit.ckpt")
    options = AuditOptions(mode="full", seed=CHAOS_SEED,
                           checkpoint_path=path)
    run_audit(
        compiled, sequence, fault_set, options=options,
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed", exact=result.exact,
    )
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    cut = 1 + len(lines) // 2
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:cut]) + "\n")
        handle.write(lines[cut][: len(lines[cut]) // 2])

    resumed = run_audit(
        compiled, sequence, fault_set,
        options=AuditOptions(mode="full", seed=CHAOS_SEED,
                             checkpoint_path=path),
        strategy=result.ladder[0] if result.ladder else "MOT",
        complete=result.stopped == "completed", exact=result.exact,
        workers=2,
    )
    assert json.dumps(resumed.to_json(), sort_keys=True) == expected
