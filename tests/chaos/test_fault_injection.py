"""CI chaos job: kill real workers mid-campaign, demand exact results.

These tests SIGKILL a randomly chosen worker process partway through a
sharded campaign on a non-trivial circuit and assert the merged fault
statuses are *identical* to the single-process baseline — the fabric's
acceptance criterion.  The kill moment is drawn from a seeded RNG (the
``CHAOS_SEED`` environment variable overrides it, so a CI failure is
replayable locally with the same schedule).

They run in the regular suite too; the dedicated CI job just runs them
in isolation with verbose output so a fabric regression is unmissable.
"""

import os
import random
import signal

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.runtime import run_campaign
from repro.runtime.fabric import FabricConfig, run_sharded_campaign
from repro.sequences.random_seq import random_sequence_for

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1"))


def fresh_faults(compiled):
    faults, _ = collapse_faults(compiled)
    return FaultSet(faults)


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


@pytest.fixture(scope="module")
def ctr8_setup():
    compiled = compile_circuit(get_circuit("ctr8"))
    sequence = random_sequence_for(compiled, 40, seed=7)
    baseline = fresh_faults(compiled)
    run_campaign(compiled, sequence, baseline)
    return compiled, sequence, signature(baseline)


def test_sigkill_random_worker_mid_campaign(ctr8_setup):
    compiled, sequence, expected = ctr8_setup
    rng = random.Random(CHAOS_SEED)
    target_dispatch = rng.randrange(2, 6)
    state = {"dispatches": 0, "killed": None}

    def events(event):
        if event["event"] != "dispatch" or state["killed"] is not None:
            return
        state["dispatches"] += 1
        if state["dispatches"] == target_dispatch:
            state["killed"] = event["pid"]
            os.kill(event["pid"], signal.SIGKILL)

    fault_set = fresh_faults(compiled)
    config = FabricConfig(
        workers=2, shard_size=16, events=events, backoff_base=0.01
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert state["killed"] is not None, (
        f"dispatch #{target_dispatch} never happened "
        f"({state['dispatches']} total) — shrink target_dispatch"
    )
    assert fabric["retries"] >= 1
    assert fabric["respawns"] >= 1
    assert result.stopped == "completed"
    assert signature(fault_set) == expected, (
        f"coverage diverged after SIGKILL (seed {CHAOS_SEED})"
    )


def test_sigkill_during_heartbeats_mid_shard(ctr8_setup):
    # kill on a heartbeat rather than a dispatch: the worker dies with
    # a half-simulated shard, whose partial work must be discarded and
    # redone, never merged
    compiled, sequence, expected = ctr8_setup
    state = {"killed": None}

    def events(event):
        if (
            event["event"] == "heartbeat"
            and event["frame"] >= 5
            and state["killed"] is None
        ):
            state["killed"] = event["pid"]
            os.kill(event["pid"], signal.SIGKILL)

    fault_set = fresh_faults(compiled)
    config = FabricConfig(
        workers=2, shard_size=32, events=events,
        heartbeat_interval=0.0, backoff_base=0.01,
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    assert state["killed"] is not None, "no heartbeat reached frame 5"
    assert result.runtime_summary()["fabric"]["retries"] >= 1
    assert signature(fault_set) == expected


def test_two_kills_in_a_row_still_exact(ctr8_setup):
    # the same shard may be hit twice (triggering bisection) or two
    # different shards once each — either way the result stays exact
    compiled, sequence, expected = ctr8_setup
    kills = []

    def events(event):
        if event["event"] == "dispatch" and len(kills) < 2:
            kills.append(event["pid"])
            os.kill(event["pid"], signal.SIGKILL)

    fault_set = fresh_faults(compiled)
    config = FabricConfig(
        workers=2, shard_size=16, events=events,
        backoff_base=0.01, max_retries=3,
    )
    result = run_sharded_campaign(
        compiled, sequence, fault_set, config=config
    )
    fabric = result.runtime_summary()["fabric"]
    assert len(kills) == 2
    assert fabric["respawns"] >= 2
    assert not fabric["quarantined_by_crash"]  # transient, not poison
    assert signature(fault_set) == expected
