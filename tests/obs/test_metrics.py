"""MetricsRegistry unit tests: counters, gauges, histograms, deltas."""

from repro.obs.metrics import MetricsRegistry, _bucket


def test_counters_and_totals():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    reg.set_total("b", 100)
    assert reg.counter("a") == 5
    assert reg.counter("b") == 100
    assert reg.counter("missing", -1) == -1


def test_gauges_last_write_and_max():
    reg = MetricsRegistry()
    reg.gauge("level", 7)
    reg.gauge("level", 3)  # last write wins locally
    reg.gauge_max("peak", 10)
    reg.gauge_max("peak", 4)  # lower: ignored
    flat = reg.flat()
    assert flat["level"] == 3
    assert flat["peak"] == 10


def test_histogram_power_of_two_buckets():
    assert [_bucket(v) for v in (0, 1, 2, 3, 4, 5, 1023)] == [
        0, 1, 2, 4, 4, 8, 1024,
    ]
    reg = MetricsRegistry()
    for value in (1, 2, 3, 900):
        reg.observe("sizes", value)
    hist = reg.snapshot()["histograms"]["sizes"]
    assert hist == {"1": 1, "2": 1, "4": 1, "1024": 1}


def test_snapshot_is_sorted_and_json_ready():
    import json

    reg = MetricsRegistry()
    reg.inc("z")
    reg.inc("a")
    reg.gauge("m", 1)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    json.dumps(snap)  # must not raise


def test_flush_delta_sends_only_changes():
    reg = MetricsRegistry()
    reg.inc("c", 3)
    reg.gauge("g", 5)
    first = reg.flush_delta()
    assert first == {"counters": {"c": 3}, "gauges": {"g": 5}}
    assert reg.flush_delta() is None  # nothing changed
    reg.inc("c", 2)
    assert reg.flush_delta() == {"counters": {"c": 2}, "gauges": {}}


def test_fold_delta_adds_counters_maxes_gauges():
    coordinator = MetricsRegistry()
    coordinator.fold_delta({"counters": {"c": 3}, "gauges": {"g": 5}})
    coordinator.fold_delta({"counters": {"c": 2}, "gauges": {"g": 4}})
    coordinator.fold_delta(None)  # a quiet heartbeat
    flat = coordinator.flat()
    assert flat["c"] == 5
    assert flat["g"] == 5


def test_fold_snapshot_merges_histograms():
    a = MetricsRegistry()
    a.inc("n", 2)
    a.observe("h", 3)
    b = MetricsRegistry()
    b.inc("n", 1)
    b.observe("h", 3)
    b.observe("h", 100)
    merged = MetricsRegistry()
    merged.fold_snapshot(a.snapshot())
    merged.fold_snapshot(b.snapshot())
    snap = merged.snapshot()
    assert snap["counters"]["n"] == 3
    assert snap["histograms"]["h"] == {"4": 2, "128": 1}


def test_fold_order_independent_for_final_totals():
    parts = []
    for i in range(3):
        reg = MetricsRegistry()
        reg.inc("c", i + 1)
        reg.gauge("g", 10 - i)
        parts.append(reg.snapshot())

    def fold(ordering):
        out = MetricsRegistry()
        for index in ordering:
            out.fold_snapshot(parts[index])
        return out.snapshot()

    assert fold([0, 1, 2]) == fold([2, 0, 1])
