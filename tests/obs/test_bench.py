"""Bench sentinel: schema strictness, guarded comparison, fsck hookup.

These tests never run the real suite (that is what ``repro bench``
and the CI job do); they exercise the machinery around it with
hand-built documents so the guardband/floor logic is tested exactly,
not statistically.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_VERSION,
    BenchSchemaError,
    calibrate,
    compare_bench,
    load_bench_json,
    render_compare,
    trajectory_baseline,
    validate_bench_json,
)


def make_doc(results=None, unit=0.01, label="test"):
    return {
        "bench_version": BENCH_VERSION,
        "label": label,
        "suite": "quick",
        "machine": {
            "python": "3.11.7",
            "platform": "linux",
            "unit_seconds": unit,
        },
        "generated_at": 1000.0,
        "results": results if results is not None else {
            "bdd_parity32": {
                "seconds": 0.03, "normalized": 3.0, "repeats": 5,
            },
        },
    }


# -- schema ------------------------------------------------------------


def test_valid_doc_passes():
    doc = make_doc()
    assert validate_bench_json(doc) is doc


@pytest.mark.parametrize(
    "mutate,fragment",
    [
        (lambda d: d.pop("bench_version"), "bench_version"),
        (lambda d: d.update(bench_version=99), "bench_version"),
        (lambda d: d.update(label=""), "label"),
        (lambda d: d.update(suite="nightly"), "suite"),
        (lambda d: d.update(machine=None), "machine"),
        (lambda d: d["machine"].update(unit_seconds=0), "unit_seconds"),
        (lambda d: d["machine"].update(unit_seconds=True), "unit_seconds"),
        (lambda d: d.update(results={}), "results"),
        (
            lambda d: d["results"].update(bad={"seconds": 0.1}),
            "normalized",
        ),
        (
            lambda d: d["results"]["bdd_parity32"].update(seconds=-1),
            "seconds",
        ),
        (
            lambda d: d["results"]["bdd_parity32"].update(normalized=True),
            "normalized",
        ),
        (
            lambda d: d["results"]["bdd_parity32"].update(repeats=0),
            "repeats",
        ),
        (
            lambda d: d["results"]["bdd_parity32"].update(repeats=2.5),
            "repeats",
        ),
    ],
)
def test_schema_rejections(mutate, fragment):
    doc = make_doc()
    mutate(doc)
    with pytest.raises(BenchSchemaError, match=fragment):
        validate_bench_json(doc)


def test_non_dict_rejected():
    with pytest.raises(BenchSchemaError):
        validate_bench_json([1, 2, 3])


def test_load_bench_json_roundtrip(tmp_path):
    path = tmp_path / "BENCH_test.json"
    path.write_text(json.dumps(make_doc()))
    assert load_bench_json(str(path))["label"] == "test"


def test_load_bench_json_reports_path(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(BenchSchemaError, match="broken.json"):
        load_bench_json(str(path))
    path.write_text(json.dumps({"bench_version": 99}))
    with pytest.raises(BenchSchemaError, match="broken.json"):
        load_bench_json(str(path))


# -- comparison --------------------------------------------------------


def _docs(base_norm, cur_norm, unit=0.01):
    baseline = make_doc(
        {"w": {"seconds": base_norm * unit, "normalized": base_norm,
               "repeats": 5}},
        unit=unit, label="baseline",
    )
    current = make_doc(
        {"w": {"seconds": cur_norm * unit, "normalized": cur_norm,
               "repeats": 5}},
        unit=unit, label="current",
    )
    return baseline, current


def test_clean_run_passes():
    report = compare_bench(*_docs(3.0, 3.1), guardband=0.5)
    assert report["ok"]
    assert not report["regressions"]
    assert report["compared"][0]["ratio"] == pytest.approx(1.033, abs=1e-3)


def test_regression_beyond_guardband_fails():
    report = compare_bench(*_docs(3.0, 6.0), guardband=0.5, floor=0.005)
    assert not report["ok"]
    assert report["regressions"][0]["workload"] == "w"
    assert "2.00x" in report["regressions"][0]["reason"]


def test_growth_inside_guardband_passes():
    report = compare_bench(*_docs(3.0, 4.4), guardband=0.5)
    assert report["ok"]


def test_floor_shields_microscopic_excess():
    # 2x regression, but the workload is sub-millisecond: with a tiny
    # unit the wall-clock excess never clears the floor
    report = compare_bench(
        *_docs(3.0, 6.0, unit=1e-6), guardband=0.5, floor=0.005
    )
    assert report["ok"]


def test_missing_workload_is_a_regression():
    baseline, current = _docs(3.0, 3.0)
    current["results"] = {
        "other": {"seconds": 0.03, "normalized": 3.0, "repeats": 5},
    }
    report = compare_bench(baseline, current)
    assert not report["ok"]
    assert report["regressions"][0]["reason"] == "missing from current run"


def test_extra_workload_in_current_is_ignored():
    baseline, current = _docs(3.0, 3.0)
    current["results"]["new_one"] = {
        "seconds": 0.5, "normalized": 50.0, "repeats": 1,
    }
    assert compare_bench(baseline, current)["ok"]


def test_render_compare_mentions_verdict():
    ok = render_compare(compare_bench(*_docs(3.0, 3.0)))
    assert "bench: ok" in ok
    bad = render_compare(
        compare_bench(*_docs(3.0, 9.0), guardband=0.5, floor=0.001)
    )
    assert "REGRESSION" in bad and "w" in bad


# -- trajectory --------------------------------------------------------


def test_trajectory_takes_per_workload_best():
    runs = [
        make_doc({
            "a": {"seconds": 0.04, "normalized": 4.0, "repeats": 5},
            "b": {"seconds": 0.02, "normalized": 2.0, "repeats": 5},
        }),
        make_doc({
            "a": {"seconds": 0.03, "normalized": 3.0, "repeats": 5},
            "b": {"seconds": 0.05, "normalized": 5.0, "repeats": 5},
        }),
    ]
    folded = trajectory_baseline(runs)
    assert folded["label"] == "trajectory"
    assert folded["results"]["a"]["normalized"] == 3.0
    assert folded["results"]["b"]["normalized"] == 2.0
    validate_bench_json(folded)


def test_trajectory_resists_slow_ratchet():
    # each run is 1.4x its predecessor — inside a 0.5 guardband pairwise,
    # but the trajectory baseline catches the compounding drift
    runs = [make_doc({
        "w": {"seconds": 0.03 * 1.4 ** i,
              "normalized": 3.0 * 1.4 ** i, "repeats": 5},
    }) for i in range(4)]
    latest = runs[-1]
    pairwise = compare_bench(runs[-2], latest, guardband=0.5)
    assert pairwise["ok"]
    against_trajectory = compare_bench(
        trajectory_baseline(runs[:-1]), latest, guardband=0.5
    )
    assert not against_trajectory["ok"]


def test_empty_trajectory_rejected():
    with pytest.raises(BenchSchemaError, match="empty"):
        trajectory_baseline([])


# -- calibration -------------------------------------------------------


def test_calibrate_returns_positive_seconds():
    unit = calibrate(rounds=1)
    assert 0 < unit < 5.0


# -- fsck integration --------------------------------------------------


def test_fsck_recognizes_clean_bench_json(tmp_path):
    from repro.runtime.fsck import fsck_file

    path = tmp_path / "BENCH_ci.json"
    path.write_text(json.dumps(make_doc()))
    report = fsck_file(str(path))
    assert report.kind == "bench"
    assert report.ok


def test_fsck_flags_schema_violations(tmp_path):
    from repro.runtime.fsck import fsck_file

    doc = make_doc()
    doc["results"]["bdd_parity32"]["normalized"] = -1
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps(doc))
    report = fsck_file(str(path))
    assert report.kind == "bench"
    assert not report.ok
    assert "normalized" in report.problems[0]["reason"]


def test_fsck_still_handles_jsonl_checkpoints(tmp_path):
    # a single-record JSONL file must not be misread as bench JSON
    from repro.runtime.checkpoint import CHECKPOINT_VERSION
    from repro.runtime.fsck import fsck_file

    path = tmp_path / "ckpt.jsonl"
    path.write_text(json.dumps({
        "type": "header", "version": CHECKPOINT_VERSION,
        "fault_keys": [], "fingerprint": "f",
    }) + "\n")
    report = fsck_file(str(path))
    assert report.kind == "campaign"


# -- CLI wiring --------------------------------------------------------


def test_cli_bench_compare_exit_codes(tmp_path, capsys):
    from repro.cli import main

    baseline, current = _docs(3.0, 3.0)
    base_path = tmp_path / "BENCH_base.json"
    base_path.write_text(json.dumps(baseline))
    cur_path = tmp_path / "BENCH_cur.json"
    cur_path.write_text(json.dumps(current))
    rc = main([
        "bench", "--compare", str(base_path), "--current", str(cur_path),
    ])
    assert rc == 0
    assert "bench: ok" in capsys.readouterr().out

    current["results"]["w"]["normalized"] = 30.0
    current["results"]["w"]["seconds"] = 0.3
    cur_path.write_text(json.dumps(current))
    rc = main([
        "bench", "--compare", str(base_path), "--current", str(cur_path),
    ])
    assert rc == 5
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_compare_rejects_bad_json(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{")
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps(make_doc()))
    rc = main([
        "bench", "--compare", str(bad), "--current", str(good),
    ])
    assert rc == 2
