"""Trace schema validator tests."""

import pytest

from repro.obs.schema import (
    TRACE_VERSION,
    TraceSchemaError,
    validate_record,
    validate_trace_file,
)
from repro.obs.tracer import JsonlSink, Tracer


def test_valid_records_pass():
    validate_record(
        {"kind": "trace-header", "v": TRACE_VERSION, "source": "campaign"}
    )
    validate_record(
        {"kind": "span", "name": "step", "seq": 3, "parent": 1,
         "ts": 0.5, "dur": 0.01, "frame": 7}
    )
    validate_record({"kind": "event", "name": "detect", "seq": 4,
                     "parent": None})
    validate_record({"kind": "metrics", "name": "sample", "seq": 5,
                     "parent": None, "values": {"bdd.cache_hits": 9}})
    validate_record({"kind": "summary", "seq": 6, "parent": None,
                     "detected": 2})


@pytest.mark.parametrize("record,reason", [
    (["not", "a", "dict"], "not an object"),
    ({"kind": "mystery", "seq": 0}, "unknown kind"),
    ({"kind": "trace-header", "v": 99, "source": "x"}, "version"),
    ({"kind": "trace-header", "v": TRACE_VERSION}, "source"),
    ({"kind": "event", "name": "e", "seq": -1}, "seq"),
    ({"kind": "event", "name": "e", "seq": None}, "seq"),
    ({"kind": "event", "name": "e", "seq": 0, "parent": -2}, "parent"),
    ({"kind": "span", "seq": 0, "parent": None}, "missing name"),
    ({"kind": "span", "name": "s", "seq": 0, "parent": None,
      "ts": -1.0}, "ts"),
    ({"kind": "span", "name": "s", "seq": 0, "parent": None,
      "dur": True}, "dur"),
    ({"kind": "metrics", "name": "m", "seq": 0, "parent": None},
     "values"),
    ({"kind": "metrics", "name": "m", "seq": 0, "parent": None,
      "values": {"x": "high"}}, "non-numeric"),
])
def test_malformed_records_fail(record, reason):
    with pytest.raises(TraceSchemaError) as excinfo:
        validate_record(record, line_no=7)
    assert reason in str(excinfo.value)
    assert excinfo.value.line_no == 7


def make_trace(path, header=True):
    tracer = Tracer(JsonlSink(path), wall=False)
    if header:
        tracer.write_header("campaign", circuit="s27")
    with tracer.span("campaign"):
        tracer.event("detect", fault="f")
    tracer.close()


def test_validate_trace_file_accepts_real_trace(tmp_path):
    path = tmp_path / "ok.jsonl"
    make_trace(path)
    assert validate_trace_file(path) == 3


def test_validate_trace_file_requires_leading_header(tmp_path):
    path = tmp_path / "noheader.jsonl"
    make_trace(path, header=False)
    with pytest.raises(TraceSchemaError) as excinfo:
        validate_trace_file(path)
    assert "trace-header" in str(excinfo.value)


def test_validate_trace_file_rejects_duplicate_seq(tmp_path):
    path = tmp_path / "dup.jsonl"
    make_trace(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            '{"kind":"event","name":"again","seq":1,"parent":null}\n'
        )
    with pytest.raises(TraceSchemaError) as excinfo:
        validate_trace_file(path)
    assert "duplicate seq" in str(excinfo.value)


def test_validate_trace_file_rejects_empty_and_bad_json(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TraceSchemaError):
        validate_trace_file(empty)
    garbled = tmp_path / "bad.jsonl"
    garbled.write_text('{"kind": "trace-header"\n')
    with pytest.raises(TraceSchemaError) as excinfo:
        validate_trace_file(garbled)
    assert "invalid JSON" in str(excinfo.value)
