"""Tracing must observe without perturbing.

Two guarantees, both load-bearing:

* **transparency** — a campaign with a tracer, a metrics registry and
  a progress hook attached classifies every fault identically to a
  bare run and reports identical accounting (hypothesis property over
  random circuits),
* **honesty** — the post-hoc profiler's trace-derived totals reconcile
  *exactly* with the returned :class:`CampaignResult`; a trace that
  disagrees with the campaign's own accounting is a bug, not noise.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.circuit.compile import compile_circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.obs import MetricsRegistry
from repro.obs.profile import profile_trace
from repro.obs.schema import validate_trace_file
from repro.obs.tracer import JsonlSink, ListSink, Tracer
from repro.runtime import ResourceGovernor, run_campaign
from repro.sequences.random_seq import random_sequence_for
from tests.util import random_circuit

ACCOUNTING_FIELDS = (
    "stopped", "frames_total", "frames_symbolic", "frames_three_valued",
    "fallbacks", "gc_runs", "demotions", "quarantined", "peak_nodes",
    "exact", "rung_population",
)


@st.composite
def circuit_and_sequence(draw, length=6):
    seed = draw(st.integers(0, 10_000))
    compiled = compile_circuit(
        random_circuit(
            seed,
            num_pis=draw(st.integers(1, 3)),
            num_dffs=draw(st.integers(1, 3)),
            num_gates=draw(st.integers(3, 12)),
            num_pos=draw(st.integers(1, 2)),
        )
    )
    rng = random_module.Random(draw(st.integers(0, 10_000)))
    sequence = [
        tuple(rng.randrange(2) for _ in compiled.pis)
        for _ in range(length)
    ]
    return compiled, sequence


def signature(fault_set):
    return [
        (r.fault.key(), r.status, r.detected_by, r.detected_at)
        for r in fault_set
    ]


def accounting(result):
    summary = result.runtime_summary()
    return {key: summary[key] for key in ACCOUNTING_FIELDS}


@given(circuit_and_sequence())
@settings(max_examples=20, deadline=None)
def test_tracing_does_not_perturb_the_campaign(pair):
    compiled, sequence = pair
    faults, _ = collapse_faults(compiled)

    bare = FaultSet(faults)
    bare_result = run_campaign(compiled, sequence, bare, strategy="MOT")

    observed = FaultSet(faults)
    progress = []
    observed_result = run_campaign(
        compiled, sequence, observed, strategy="MOT",
        tracer=Tracer(ListSink(), wall=False),
        metrics=MetricsRegistry(),
        progress_hook=progress.append,
    )

    assert signature(observed) == signature(bare)
    assert accounting(observed_result) == accounting(bare_result)
    assert progress  # the hook actually fired


def run_traced(tmp_path, name, **kwargs):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 16, seed=3)
    path = tmp_path / name
    tracer = Tracer(JsonlSink(path), wall=False)
    tracer.write_header("campaign", circuit="s27", frames=len(sequence))
    result = run_campaign(
        compiled, sequence, fault_set, strategy="MOT",
        tracer=tracer, **kwargs,
    )
    tracer.close()
    return path, result, fault_set


def test_profile_reconciles_exactly_with_result(tmp_path):
    path, result, fault_set = run_traced(tmp_path, "quiet.jsonl")
    validate_trace_file(path)
    profile = profile_trace(path)
    assert profile["reconciliation"] == {"ok": True, "mismatches": {}}
    totals = profile["totals"]
    assert totals["detected"] == len(fault_set.detected())
    assert totals["demotions"] == result.demotions
    assert totals["fallbacks"] == result.fallbacks
    assert totals["gc_runs"] == result.gc_runs
    assert totals["quarantined"] == len(result.quarantined)
    assert totals["checkpoints_written"] == result.checkpoints_written
    summary = profile["summary"]
    assert summary["stopped"] == result.stopped
    assert summary["frames_total"] == result.frames_total
    assert summary["total_faults"] == len(fault_set)


def test_profile_reconciles_a_stressed_run(tmp_path):
    """Per-fault budgets force demotions; the trace must still add up."""
    path, result, fault_set = run_traced(
        tmp_path, "stressed.jsonl",
        governor=ResourceGovernor(fault_frame_nodes=3),
        node_limit=300_000,
    )
    assert result.demotions > 0  # the stress actually happened
    validate_trace_file(path)
    profile = profile_trace(path)
    assert profile["reconciliation"] == {"ok": True, "mismatches": {}}
    assert profile["totals"]["demotions"] == result.demotions
    # every demotion appears on the timeline with its reason
    demotes = [e for e in profile["timeline"] if e["event"] == "demote"]
    assert len(demotes) == result.demotions
    assert all(e.get("reason") for e in demotes)
    reasons = {}
    for entry in demotes:
        reasons[entry["reason"]] = reasons.get(entry["reason"], 0) + 1
    assert reasons == result.demotion_reasons()


def test_fault_spans_cover_the_whole_universe(tmp_path):
    path, result, fault_set = run_traced(tmp_path, "faults.jsonl")
    import json

    with open(path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    fault_spans = [
        r for r in records
        if r.get("kind") == "span" and r.get("name") == "fault"
    ]
    assert len(fault_spans) == len(fault_set)
    by_fault = {r["fault"]: r for r in fault_spans}
    for record in fault_set:
        span = by_fault[str(record.fault.key())]
        assert span["state"] == record.status
