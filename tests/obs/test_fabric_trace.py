"""Fabric observability: deterministic merged traces, folded metrics.

The merged trace of a sharded campaign must be *byte-identical* across
repeated runs with the same seeds — worker traces are canonical
(``wall=False``), the coordinator replays them sorted by shard id, and
nothing nondeterministic (clocks, pids, pool scheduling) may leak into
a record.  Inline mode (``workers=0``) runs the full shard/merge path
deterministically in-process, which is exactly what the guarantee is
about; a pooled run must still *reconcile*, merely not byte-match the
inline file ordering.
"""

import json

from repro.circuit.compile import compile_circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.obs import MetricsRegistry
from repro.obs.profile import profile_trace
from repro.obs.schema import validate_trace_file
from repro.obs.tracer import JsonlSink, Tracer
from repro.runtime.fabric import run_sharded_campaign
from repro.sequences.random_seq import random_sequence_for


def run_fabric(path, workers=0, shard_size=8):
    compiled = compile_circuit(s27())
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 16, seed=3)
    tracer = Tracer(JsonlSink(path), wall=False)
    tracer.write_header("fabric", circuit="s27", frames=len(sequence),
                        workers=workers)
    metrics = MetricsRegistry()
    result = run_sharded_campaign(
        compiled, sequence, fault_set,
        workers=workers, shard_size=shard_size,
        tracer=tracer, metrics=metrics,
    )
    tracer.close()
    return result, fault_set, metrics


def test_merged_trace_is_byte_identical_across_runs(tmp_path):
    first = tmp_path / "run1.jsonl"
    second = tmp_path / "run2.jsonl"
    result_a, faults_a, _ = run_fabric(first)
    result_b, faults_b, _ = run_fabric(second)
    assert first.read_bytes() == second.read_bytes()
    assert [r.status for r in faults_a] == [r.status for r in faults_b]
    assert result_a.stopped == result_b.stopped == "completed"


def test_merged_trace_validates_and_reconciles(tmp_path):
    path = tmp_path / "merged.jsonl"
    result, fault_set, _ = run_fabric(path)
    validate_trace_file(path)
    profile = profile_trace(path)
    assert profile["source"] == "fabric"
    assert profile["reconciliation"] == {"ok": True, "mismatches": {}}
    assert profile["totals"]["detected"] == len(fault_set.detected())
    assert profile["summary"]["total_faults"] == len(fault_set)
    assert profile["fabric"] is not None  # accounting event present


def test_shard_spans_attribute_every_record(tmp_path):
    path = tmp_path / "merged.jsonl"
    run_fabric(path)
    with open(path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    shard_spans = [
        r for r in records
        if r.get("kind") == "span" and r.get("name") == "shard"
    ]
    assert shard_spans
    # shard spans appear sorted by shard id (deterministic merge order)
    ids = [r["shard"] for r in shard_spans]
    assert ids == sorted(ids)
    shard_seqs = {r["seq"] for r in shard_spans}
    # every replayed worker record carries its shard id and hangs off a
    # shard span (directly or through a replayed ancestor)
    replayed = [r for r in records if "shard" in r and r not in shard_spans]
    assert replayed
    by_seq = {r["seq"]: r for r in records if "seq" in r}
    for record in replayed:
        node = record
        while node.get("parent") is not None \
                and node["seq"] not in shard_seqs:
            node = by_seq[node["parent"]]
        assert node["seq"] in shard_seqs or node.get("name") == "shard"


def test_pooled_run_reconciles_and_matches_inline_metrics(tmp_path):
    inline_path = tmp_path / "inline.jsonl"
    pooled_path = tmp_path / "pooled.jsonl"
    inline_result, inline_faults, inline_metrics = run_fabric(inline_path)
    pooled_result, pooled_faults, pooled_metrics = run_fabric(
        pooled_path, workers=2
    )
    assert [r.status for r in pooled_faults] == [
        r.status for r in inline_faults
    ]
    validate_trace_file(pooled_path)
    profile = profile_trace(pooled_path)
    assert profile["reconciliation"] == {"ok": True, "mismatches": {}}
    # final folded metrics come from shard result payloads (not the
    # display-only heartbeat stream), so pool scheduling cannot skew them
    assert pooled_metrics.snapshot() == inline_metrics.snapshot()
