"""ProgressLine behavior: TTY discipline, throttling, degradation.

The progress hook runs inside the campaign loop, so the display's
failure modes matter as much as its output: a closed stream must
disable the line, not raise into the campaign, and the throttle must
bound write volume no matter how often the runtime calls the hook.
"""

import io
import time

from repro.obs.progress import ProgressLine


class _TtyStringIO(io.StringIO):
    def isatty(self):
        return True


class _ClosedStream:
    """A stream torn down mid-campaign: every write raises."""

    def isatty(self):
        return False

    def write(self, text):
        raise ValueError("I/O operation on closed file")

    def flush(self):
        raise ValueError("I/O operation on closed file")


CAMPAIGN_PAYLOAD = {
    "frame": 5,
    "frames_total": 50,
    "detected": 12,
    "live": 80,
    "demotions": 1,
    "quarantined": 0,
    "elapsed": 2.0,
}

FABRIC_PAYLOAD = {
    "shards_done": 3,
    "shards": 12,
    "workers": 4,
    "frame": None,
    "faults_done": 30,
    "faults_total": 120,
    "elapsed": 6.0,
}


def test_non_tty_degrades_to_newlines():
    stream = io.StringIO()
    line = ProgressLine(stream=stream, interval=0.0)
    line.update(CAMPAIGN_PAYLOAD)
    line.update(dict(CAMPAIGN_PAYLOAD, frame=6))
    text = stream.getvalue()
    assert "\r" not in text
    assert len(text.strip().splitlines()) == 2


def test_tty_rewrites_one_line():
    stream = _TtyStringIO()
    line = ProgressLine(stream=stream, interval=0.0)
    line.update(CAMPAIGN_PAYLOAD)
    line.update(dict(CAMPAIGN_PAYLOAD, frame=6))
    text = stream.getvalue()
    assert text.startswith("\r")
    assert text.count("\r") == 2
    assert "\n" not in text
    line.finish()
    assert stream.getvalue().endswith("\n")


def test_tty_pads_over_a_shrinking_line():
    stream = _TtyStringIO()
    line = ProgressLine(stream=stream, interval=0.0)
    line.update(dict(CAMPAIGN_PAYLOAD, detected=1000000))
    before = len(stream.getvalue())
    line.update(dict(CAMPAIGN_PAYLOAD, detected=1))
    written = stream.getvalue()[before:]
    # the shorter line is padded out so stale characters never linger
    assert len(written.rstrip("\r").rstrip(" ")) < len(written)


def test_throttle_suppresses_rapid_updates():
    stream = io.StringIO()
    line = ProgressLine(stream=stream, interval=3600.0)
    for frame in range(50):
        line.update(dict(CAMPAIGN_PAYLOAD, frame=frame))
    # only the first update beats the (huge) interval
    assert len(stream.getvalue().strip().splitlines()) == 1


def test_throttle_admits_after_interval():
    stream = io.StringIO()
    line = ProgressLine(stream=stream, interval=0.01)
    line.update(CAMPAIGN_PAYLOAD)
    time.sleep(0.02)
    line.update(dict(CAMPAIGN_PAYLOAD, frame=6))
    assert len(stream.getvalue().strip().splitlines()) == 2


def test_campaign_payload_renders_frames_total():
    stream = io.StringIO()
    ProgressLine(stream=stream, interval=0.0).update(CAMPAIGN_PAYLOAD)
    assert "frame 5/50" in stream.getvalue()


def test_campaign_payload_renders_rate_and_eta():
    stream = io.StringIO()
    ProgressLine(stream=stream, interval=0.0).update(CAMPAIGN_PAYLOAD)
    text = stream.getvalue()
    # 12 detected / 2s elapsed; 45 frames to go at 2.5 f/s = 18s
    assert "6.0 faults/s" in text
    assert "eta 18s" in text


def test_fabric_payload_renders_rate_and_eta():
    stream = io.StringIO()
    ProgressLine(stream=stream, interval=0.0).update(FABRIC_PAYLOAD)
    text = stream.getvalue()
    assert "shards 3/12" in text
    assert "workers 4" in text
    # 30 faults / 6s elapsed; 90 to go at 5 f/s = 18s
    assert "5.0 faults/s" in text
    assert "eta 18s" in text


def test_eta_formats_minutes_and_hours():
    assert ProgressLine._duration(18) == "18s"
    assert ProgressLine._duration(150) == "2.5m"
    assert ProgressLine._duration(7200) == "2.0h"


def test_no_rate_without_elapsed_or_progress():
    stream = io.StringIO()
    ProgressLine(stream=stream, interval=0.0).update(
        {"frame": 0, "frames_total": 50, "detected": 0, "elapsed": 0}
    )
    text = stream.getvalue()
    assert "faults/s" not in text
    assert "eta" not in text


def test_closed_stream_disables_instead_of_raising():
    line = ProgressLine(stream=_ClosedStream(), interval=0.0)
    line.update(CAMPAIGN_PAYLOAD)  # must not raise
    line.update(CAMPAIGN_PAYLOAD)
    line.finish()
    assert line._dead


def test_stream_closing_mid_campaign_disables():
    stream = io.StringIO()
    line = ProgressLine(stream=stream, interval=0.0)
    line.update(CAMPAIGN_PAYLOAD)
    stream.close()
    line.update(dict(CAMPAIGN_PAYLOAD, frame=6))  # must not raise
    line.update(dict(CAMPAIGN_PAYLOAD, frame=7))
    line.finish()
    assert line._dead


def test_callable_protocol():
    stream = io.StringIO()
    line = ProgressLine(stream=stream, interval=0.0)
    line(CAMPAIGN_PAYLOAD)
    assert "frame 5/50" in stream.getvalue()
