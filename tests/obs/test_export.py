"""Exporter contracts: Prometheus exposition, Chrome traces, flames.

The exposition tests include a small parser for the text format —
asserting on substrings alone would happily accept output Prometheus
rejects.  The Chrome tests validate the structural contract Perfetto's
loader enforces (traceEvents list, ph/ts/pid/tid fields, µs ints);
the flamegraph tests check the invariant every renderer assumes: path
weights sum to the root span's total.
"""

import json

import pytest

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
    trace_to_chrome,
    trace_to_collapsed,
    wants_prometheus,
)
from repro.obs.metrics import MetricsRegistry


# -- name/label sanitization -------------------------------------------


def test_sanitize_dots_and_dashes():
    assert sanitize_metric_name("bdd.cache_hits") == "bdd_cache_hits"
    assert sanitize_metric_name("a-b c/d") == "a_b_c_d"


def test_sanitize_leading_digit_and_empty():
    assert sanitize_metric_name("3v.steps") == "_3v_steps"
    assert sanitize_metric_name("") == "_"


def test_sanitize_preserves_legal_names():
    assert sanitize_metric_name("valid_name:sub") == "valid_name:sub"


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_wants_prometheus():
    assert wants_prometheus("text/plain")
    assert wants_prometheus("text/plain; version=0.0.4")
    assert wants_prometheus("application/openmetrics-text")
    assert not wants_prometheus("application/json")
    assert not wants_prometheus(None)
    assert not wants_prometheus("")
    assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


# -- exposition format -------------------------------------------------


def _parse_exposition(text):
    """Strict-ish parser: returns (samples, types, helps) or fails."""
    samples = {}
    types = {}
    helps = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, rest = line[len("# HELP "):].split(" ", 1)
            helps[name] = rest
            continue
        if line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].split(" ", 1)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            types[name] = kind
            continue
        assert " " in line, f"malformed sample line {line!r}"
        key, value = line.rsplit(" ", 1)
        float(value)  # must parse as a number
        name = key.split("{", 1)[0]
        # metric names must be legal
        assert all(
            c.isalnum() or c in "_:" for c in name
        ), f"illegal metric name {name!r}"
        samples[key] = float(value)
    return samples, types, helps


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.inc("bdd.cache_hits", 7)
    reg.inc("service.done", 2)
    reg.gauge("service.queue_depth", 3)
    for value in (1, 2, 3, 900):
        reg.observe("fault.bdd_size", value)
    return reg


def test_counters_get_total_suffix_and_type(registry):
    samples, types, helps = _parse_exposition(
        render_prometheus(registry)
    )
    assert samples["repro_bdd_cache_hits_total"] == 7
    assert types["repro_bdd_cache_hits_total"] == "counter"
    assert "repro_bdd_cache_hits_total" in helps


def test_gauges_render(registry):
    samples, types, _ = _parse_exposition(render_prometheus(registry))
    assert samples["repro_service_queue_depth"] == 3
    assert types["repro_service_queue_depth"] == "gauge"


def test_histogram_buckets_are_cumulative(registry):
    samples, types, _ = _parse_exposition(render_prometheus(registry))
    name = "repro_fault_bdd_size"
    assert types[name] == "histogram"
    # power-of-two buckets 1,2,4,1024 with cumulative counts
    assert samples[f'{name}_bucket{{le="1"}}'] == 1
    assert samples[f'{name}_bucket{{le="2"}}'] == 2
    assert samples[f'{name}_bucket{{le="4"}}'] == 3
    assert samples[f'{name}_bucket{{le="1024"}}'] == 4
    assert samples[f'{name}_bucket{{le="+Inf"}}'] == 4
    assert samples[f"{name}_sum"] == 906
    assert samples[f"{name}_count"] == 4


def test_histogram_stats_registry_view(registry):
    stats = registry.histogram_stats("fault.bdd_size")
    assert stats["buckets"] == [(1, 1), (2, 2), (4, 3), (1024, 4)]
    assert stats["sum"] == 906
    assert stats["count"] == 4
    assert registry.histogram_stats("nope") is None


def test_histogram_sums_survive_fold():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.observe("h", 10)
    b.observe("h", 5)
    b.fold_snapshot(a.snapshot())
    assert b.histogram_stats("h")["sum"] == 15
    assert b.histogram_stats("h")["count"] == 2


def test_render_accepts_snapshot_and_flat_mapping(registry):
    from_snapshot = render_prometheus(registry.snapshot())
    assert from_snapshot == render_prometheus(registry)
    flat, types, _ = _parse_exposition(
        render_prometheus({"service.sheds": 4})
    )
    assert flat["repro_service_sheds"] == 4
    assert types["repro_service_sheds"] == "gauge"


def test_render_is_deterministic(registry):
    assert render_prometheus(registry) == render_prometheus(registry)


def test_labels_stamped_and_escaped():
    text = render_prometheus(
        {"counters": {"runs": 1}, "gauges": {}},
        labels={"job": 'camp"1'},
    )
    assert 'repro_runs_total{job="camp\\"1"} 1' in text


# -- Chrome trace_event export -----------------------------------------


WALL_TRACE = [
    {"kind": "trace-header", "v": 1, "source": "campaign"},
    {"kind": "span", "name": "campaign", "seq": 0, "parent": None,
     "ts": 10.0, "dur": 2.0},
    {"kind": "span", "name": "step", "seq": 1, "parent": 0,
     "ts": 10.2, "dur": 0.5, "frame": 1},
    {"kind": "event", "name": "detect", "seq": 2, "parent": 1,
     "ts": 10.3, "fault": "g1/SA0"},
    {"kind": "metrics", "name": "sample", "seq": 3, "parent": 0,
     "ts": 11.0, "values": {"bdd.nodes": 42}},
]

CANONICAL_TRACE = [
    {"kind": "trace-header", "v": 1, "source": "fabric"},
    {"kind": "span", "name": "campaign", "seq": 0, "parent": None,
     "shard": "0", "worker": 1},
    {"kind": "span", "name": "step", "seq": 1, "parent": 0,
     "shard": "0", "worker": 1},
    {"kind": "event", "name": "detect", "seq": 2, "parent": 1,
     "shard": "0", "worker": 1},
    {"kind": "span", "name": "step", "seq": 3, "parent": 0,
     "shard": "1", "worker": 2},
]


def test_chrome_wall_trace_has_real_microseconds():
    doc = trace_to_chrome(WALL_TRACE)
    events = {e["name"]: e for e in doc["traceEvents"]
              if e["ph"] == "X"}
    assert events["campaign"]["ts"] == 10_000_000
    assert events["campaign"]["dur"] == 2_000_000
    assert events["step"]["ts"] == 10_200_000
    assert events["step"]["dur"] == 500_000


def test_chrome_structure_is_perfetto_loadable():
    doc = trace_to_chrome(WALL_TRACE)
    blob = json.dumps(doc)  # must be JSON-serializable
    parsed = json.loads(blob)
    assert isinstance(parsed["traceEvents"], list)
    for event in parsed["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "i", "C")
        assert isinstance(event["ts"], int)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] >= 1


def test_chrome_canonical_trace_synthesizes_nested_timeline():
    doc = trace_to_chrome(CANONICAL_TRACE)
    spans = {}
    for event in doc["traceEvents"]:
        if event["ph"] == "X":
            spans[event["args"]["seq"]] = event
    root, child = spans[0], spans[1]
    # the child's synthetic interval nests inside its parent's
    assert root["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= root["ts"] + root["dur"]


def test_chrome_event_kinds_map_to_phases():
    doc = trace_to_chrome(WALL_TRACE)
    phases = {e["name"]: e["ph"] for e in doc["traceEvents"]}
    assert phases["campaign"] == "X"
    assert phases["detect"] == "i"
    assert phases["sample"] == "C"
    counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
    assert counter["args"] == {"bdd.nodes": 42}


def test_chrome_shard_and_worker_attribution():
    doc = trace_to_chrome(CANONICAL_TRACE)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    pids = {e["args"]["seq"]: e["pid"] for e in spans}
    tids = {e["args"]["seq"]: e["tid"] for e in spans}
    assert pids[1] == 1 and pids[3] == 2  # worker id -> pid
    assert tids[1] != tids[3]  # different shards, different lanes


def test_chrome_export_is_deterministic():
    assert trace_to_chrome(CANONICAL_TRACE) == trace_to_chrome(
        CANONICAL_TRACE
    )


# -- collapsed-stack flamegraph ----------------------------------------


def test_flame_paths_and_weights_wall():
    lines = dict(
        line.rsplit(" ", 1)
        for line in trace_to_collapsed(WALL_TRACE).splitlines()
    )
    # self time: campaign 2.0s minus child 0.5s = 1.5s; step 0.5s
    assert int(lines["campaign"]) == 1_500_000
    assert int(lines["campaign;step"]) == 500_000


def test_flame_weights_sum_to_root_total():
    text = trace_to_collapsed(WALL_TRACE)
    total = sum(int(line.rsplit(" ", 1)[1])
                for line in text.splitlines())
    assert total == 2_000_000  # the root span's full duration


def test_flame_canonical_uses_seq_widths():
    text = trace_to_collapsed(CANONICAL_TRACE)
    lines = dict(
        line.rsplit(" ", 1) for line in text.splitlines()
    )
    # shard names are stamped into frames
    assert any("[0]" in path for path in lines)
    total = sum(int(w) for w in lines.values())
    # root synthetic width: seqs 0..3 -> 4 units
    assert total == 4


def test_flame_output_is_sorted_and_deterministic():
    text = trace_to_collapsed(CANONICAL_TRACE)
    assert text == trace_to_collapsed(CANONICAL_TRACE)
    paths = [line.rsplit(" ", 1)[0] for line in text.splitlines()]
    assert paths == sorted(paths)


def test_flame_empty_trace():
    assert trace_to_collapsed([WALL_TRACE[0]]) == ""


# -- end-to-end over a real campaign trace -----------------------------


def test_exports_work_on_a_real_trace(tmp_path):
    from repro.circuit.compile import compile_circuit
    from repro.circuits.registry import get_circuit
    from repro.faults.collapse import collapse_faults
    from repro.faults.status import FaultSet
    from repro.obs.profile import read_trace
    from repro.obs.tracer import JsonlSink, Tracer
    from repro.runtime.campaign import run_campaign
    from repro.sequences.random_seq import random_sequence_for

    compiled = compile_circuit(get_circuit("ctr8"))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, 6, seed=3)
    trace_path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(str(trace_path)), wall=False)
    tracer.write_header("campaign", circuit="ctr8")
    run_campaign(compiled, sequence, FaultSet(faults), tracer=tracer)
    tracer.close()
    records = read_trace(str(trace_path))
    doc = trace_to_chrome(records)
    assert doc["traceEvents"], "chrome export dropped every record"
    json.dumps(doc)
    flame = trace_to_collapsed(records)
    assert flame.splitlines(), "flame export produced no stacks"
    for line in flame.splitlines():
        path, weight = line.rsplit(" ", 1)
        assert path and int(weight) > 0
