"""Tracer unit tests: spans, sinks, canonical mode, replay."""

import json
import os

from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
    encode_record,
)


def canonical_tracer():
    return Tracer(ListSink(), wall=False)


def test_span_nesting_records_parent_seq():
    tracer = canonical_tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    tracer.event("ping")
    inner.close()
    outer.close()
    records = tracer.sink.records
    # spans are written at close: inner-first file order
    assert [r["name"] for r in records] == ["ping", "inner", "outer"]
    by_name = {r["name"]: r for r in records}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["seq"]
    assert by_name["ping"]["parent"] == by_name["inner"]["seq"]


def test_seq_is_allocated_at_open_and_unique():
    tracer = canonical_tracer()
    with tracer.span("a"):
        tracer.event("e1")
    tracer.event("e2")
    seqs = [r["seq"] for r in tracer.sink.records]
    assert len(seqs) == len(set(seqs))
    by_name = {r["name"]: r for r in tracer.sink.records}
    # the span opened before e1 fired, so its seq is lower
    assert by_name["a"]["seq"] < by_name["e1"]["seq"]


def test_canonical_mode_has_no_clock_fields():
    tracer = canonical_tracer()
    with tracer.span("s", rung="MOT"):
        tracer.event("e")
    tracer.metrics("sample", {"x": 1})
    for record in tracer.sink.records:
        assert "ts" not in record
        assert "dur" not in record


def test_wall_mode_stamps_ts_and_dur():
    tracer = Tracer(ListSink(), wall=True)
    with tracer.span("s"):
        tracer.event("e")
    by_name = {r["name"]: r for r in tracer.sink.records}
    assert "ts" in by_name["e"]
    assert "ts" in by_name["s"] and "dur" in by_name["s"]


def test_span_add_and_error_on_context_exit():
    tracer = canonical_tracer()
    try:
        with tracer.span("risky") as span:
            span.add(frame=3)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (record,) = tracer.sink.records
    assert record["frame"] == 3
    assert record["error"] == "RuntimeError"


def test_close_flushes_open_spans_innermost_first():
    tracer = canonical_tracer()
    tracer.span("outer")
    tracer.span("inner")
    tracer.close()
    names = [r["name"] for r in tracer.sink.records]
    assert names == ["inner", "outer"]
    assert all(r["error"] == "unclosed" for r in tracer.sink.records)


def test_list_sink_cap_counts_drops():
    sink = ListSink(cap=2)
    for i in range(5):
        sink.write({"seq": i})
    assert len(sink.records) == 2
    assert sink.dropped == 3


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path), wall=False)
    tracer.write_header("campaign", circuit="s27")
    with tracer.span("s"):
        tracer.event("e", frame=1)
    tracer.close()
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert records[0]["kind"] == "trace-header"
    assert records[0]["source"] == "campaign"
    assert {r.get("name") for r in records[1:]} == {"s", "e"}


def test_encode_record_is_deterministic():
    a = encode_record({"b": 1, "a": {"z": 2, "y": 3}})
    b = encode_record({"a": {"y": 3, "z": 2}, "b": 1})
    assert a == b
    assert " " not in a


def test_replay_renumbers_and_stamps():
    child = canonical_tracer()
    with child.span("shard-root"):
        child.event("detect", fault="f1")
    parent = canonical_tracer()
    with parent.span("shard", shard="0001") as span:
        parent.replay(child.sink.records, shard="0001", worker=2)
        span_seq = span._record["seq"]
    records = parent.sink.records
    by_name = {r["name"]: r for r in records}
    # the child's root is re-parented under the enclosing span
    assert by_name["shard-root"]["parent"] == span_seq
    assert by_name["detect"]["parent"] == by_name["shard-root"]["seq"]
    assert all(
        r["shard"] == "0001" and r["worker"] == 2
        for r in records if r["name"] != "shard"
    )
    # replay advances the parent's seq counter past the spliced records
    parent.event("after")
    seqs = [r["seq"] for r in parent.sink.records]
    assert len(seqs) == len(set(seqs))


def test_replay_is_deterministic():
    child = canonical_tracer()
    with child.span("a"):
        child.event("b")

    def merged():
        parent = canonical_tracer()
        with parent.span("shard"):
            parent.replay(child.sink.records, shard="0000")
        return [encode_record(r) for r in parent.sink.records]

    assert merged() == merged()


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("x") as span:
        span.add(a=1)
    NULL_TRACER.event("e")
    NULL_TRACER.metrics("m", {})
    NULL_TRACER.summary({})
    NULL_TRACER.replay([{"seq": 0}])
    NULL_TRACER.close()
    assert isinstance(NULL_TRACER, NullTracer)


def test_jsonl_sink_reopens_after_fork(tmp_path):
    if not hasattr(os, "fork"):
        return  # non-POSIX: nothing to test
    path = tmp_path / "forked.jsonl"
    sink = JsonlSink(path)
    sink.write({"kind": "event", "name": "parent", "seq": 0})
    pid = os.fork()
    if pid == 0:  # child
        sink.write({"kind": "event", "name": "child", "seq": 1})
        os._exit(0)
    os.waitpid(pid, 0)
    sink.write({"kind": "event", "name": "parent", "seq": 2})
    sink.close()
    records = [
        json.loads(line)
        for line in path.read_text().strip().splitlines()
    ]
    # no interleaved garbage: three whole records
    assert sorted(r["seq"] for r in records) == [0, 1, 2]
