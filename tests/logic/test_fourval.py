"""The four-valued value-history lattice of ID_X-red."""

import pytest

from repro.logic import fourval as fv
from repro.logic import threeval as tv

ALL = (fv.IX_X, fv.IX_X0, fv.IX_X1, fv.IX_X01)


def test_join_is_lattice_join():
    for a in ALL:
        for b in ALL:
            j = fv.ix_join(a, b)
            # join is an upper bound ...
            assert j | a == j and j | b == j
            # ... and the least one (bits only from a and b)
            assert j == (a | b)


def test_join_properties():
    for a in ALL:
        assert fv.ix_join(a, a) == a
        assert fv.ix_join(a, fv.IX_X) == a
        assert fv.ix_join(a, fv.IX_X01) == fv.IX_X01
        for b in ALL:
            assert fv.ix_join(a, b) == fv.ix_join(b, a)


def test_from_threeval():
    assert fv.ix_from_threeval(tv.ZERO) == fv.IX_X0
    assert fv.ix_from_threeval(tv.ONE) == fv.IX_X1
    assert fv.ix_from_threeval(tv.X) == fv.IX_X


def test_saw_predicates():
    assert not fv.ix_saw_zero(fv.IX_X)
    assert not fv.ix_saw_one(fv.IX_X)
    assert fv.ix_saw_zero(fv.IX_X0) and not fv.ix_saw_one(fv.IX_X0)
    assert fv.ix_saw_one(fv.IX_X1) and not fv.ix_saw_zero(fv.IX_X1)
    assert fv.ix_saw_zero(fv.IX_X01) and fv.ix_saw_one(fv.IX_X01)


def test_rendering():
    assert fv.ix_to_str(fv.IX_X) == "{X}"
    assert fv.ix_to_str(fv.IX_X01) == "{X,0,1}"


def test_accumulating_a_trace():
    history = fv.IX_X
    for value in (tv.X, tv.ZERO, tv.X, tv.ONE):
        history = fv.ix_join(history, fv.ix_from_threeval(value))
    assert history == fv.IX_X01
