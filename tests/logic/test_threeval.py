"""Three-valued logic: exhaustive table checks and the abstraction
property relating it to Boolean logic."""

import pytest

from repro.logic import threeval as tv


def completions(value):
    """All Boolean values a three-valued value may stand for."""
    return (0, 1) if value == tv.X else (value,)


@pytest.mark.parametrize("a", tv.all_values())
@pytest.mark.parametrize("b", tv.all_values())
def test_and_abstraction(a, b):
    result = tv.and3(a, b)
    outcomes = {ca & cb for ca in completions(a) for cb in completions(b)}
    if result == tv.X:
        assert len(outcomes) >= 1  # X may stand for anything
    else:
        assert outcomes == {result}


@pytest.mark.parametrize("a", tv.all_values())
@pytest.mark.parametrize("b", tv.all_values())
def test_or_abstraction(a, b):
    result = tv.or3(a, b)
    outcomes = {ca | cb for ca in completions(a) for cb in completions(b)}
    if result != tv.X:
        assert outcomes == {result}


@pytest.mark.parametrize("a", tv.all_values())
@pytest.mark.parametrize("b", tv.all_values())
def test_xor_abstraction(a, b):
    result = tv.xor3(a, b)
    outcomes = {ca ^ cb for ca in completions(a) for cb in completions(b)}
    if result != tv.X:
        assert outcomes == {result}


@pytest.mark.parametrize("a", tv.all_values())
def test_not_abstraction(a):
    result = tv.not3(a)
    outcomes = {1 - ca for ca in completions(a)}
    if result != tv.X:
        assert outcomes == {result}


def test_exact_known_tables():
    assert tv.and3(tv.ONE, tv.ONE) == tv.ONE
    assert tv.and3(tv.ZERO, tv.X) == tv.ZERO
    assert tv.and3(tv.X, tv.ZERO) == tv.ZERO
    assert tv.and3(tv.ONE, tv.X) == tv.X
    assert tv.or3(tv.ONE, tv.X) == tv.ONE
    assert tv.or3(tv.X, tv.ONE) == tv.ONE
    assert tv.or3(tv.ZERO, tv.X) == tv.X
    assert tv.xor3(tv.X, tv.ZERO) == tv.X
    assert tv.not3(tv.X) == tv.X


@pytest.mark.parametrize("a", tv.all_values())
@pytest.mark.parametrize("b", tv.all_values())
def test_commutativity(a, b):
    assert tv.and3(a, b) == tv.and3(b, a)
    assert tv.or3(a, b) == tv.or3(b, a)
    assert tv.xor3(a, b) == tv.xor3(b, a)


def test_is_known():
    assert tv.is_known(tv.ZERO)
    assert tv.is_known(tv.ONE)
    assert not tv.is_known(tv.X)


def test_char_roundtrip():
    for v in tv.all_values():
        assert tv.from_char(tv.to_char(v)) == v
    assert tv.from_char("x") == tv.X
    with pytest.raises(ValueError):
        tv.from_char("2")


def test_demorgan_consistency():
    for a in tv.all_values():
        for b in tv.all_values():
            assert tv.not3(tv.and3(a, b)) == tv.or3(tv.not3(a), tv.not3(b))
