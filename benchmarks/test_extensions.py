"""Benchmarks for the extension subsystems built on the paper's core:
MOT-guided ATPG, synchronizing-sequence search, sequential equivalence
checking, symbolic diagnosis, and sequence compaction."""

import random

import pytest

from conftest import prepared
from repro.analysis.equivalence import check_equivalence
from repro.analysis.synchronizing import find_synchronizing_sequence
from repro.atpg.generator import generate_mot_tests
from repro.circuit.netlist import Gate
from repro.circuits.registry import get_circuit
from repro.diagnosis import diagnose
from repro.sequences.compaction import compact_sequence
from repro.symbolic.evaluation import generate_response


def test_atpg_mot_guided(benchmark):
    compiled, faults, _ = prepared("johnson8")
    result = benchmark(
        lambda: generate_mot_tests(
            compiled, list(faults), strategy="MOT", max_length=40,
            seed=1, patience=20,
        )
    )
    benchmark.extra_info["length"] = len(result.sequence)
    benchmark.extra_info["detected"] = len(result.detected)


@pytest.mark.parametrize("name", ["s27", "syncc6", "shift8"])
def test_synchronizing_search(benchmark, name):
    compiled, _faults, _ = prepared(name)
    result = benchmark(
        lambda: find_synchronizing_sequence(
            compiled, max_length=16, beam_width=16
        )
    )
    benchmark.extra_info["found"] = result.found
    if result.found:
        benchmark.extra_info["length"] = len(result.sequence)


def test_equivalence_check_positive(benchmark):
    a = get_circuit("s27")
    b = get_circuit("s27")
    result = benchmark(lambda: check_equivalence(a, b))
    assert result.equivalent
    benchmark.extra_info["steps"] = result.steps


def test_equivalence_check_negative(benchmark):
    a = get_circuit("s27")
    b = get_circuit("s27")
    b.gates["G17"] = Gate("G17", "BUF", ["G11"])
    result = benchmark(lambda: check_equivalence(a, b))
    assert not result.equivalent
    benchmark.extra_info["cex_length"] = len(result.counterexample)


def test_diagnosis(benchmark):
    compiled, faults, sequence = prepared("s27", length=30)
    rng = random.Random(1)
    state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
    response = generate_response(compiled, sequence, state,
                                 fault=faults[4])
    result = benchmark(
        lambda: diagnose(compiled, sequence, response, list(faults))
    )
    benchmark.extra_info["candidates"] = len(result.candidates)
    benchmark.extra_info["exonerated"] = len(result.exonerated)


def test_compaction(benchmark):
    compiled, faults, sequence = prepared("s27", length=30)
    result = benchmark(
        lambda: compact_sequence(
            compiled, sequence, list(faults), strategy="MOT"
        )
    )
    benchmark.extra_info["original"] = result.original_length
    benchmark.extra_info["compacted"] = result.compacted_length
