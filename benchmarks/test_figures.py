"""Figures 1-3 benchmark: regenerating each figure's demonstration
(symbolic output sequences + detection function + strategy verdicts).

These are tiny by construction — the point is that the harness covers
every figure of the paper, not that they are expensive.
"""

import pytest

from repro.circuits.figures import (
    figure1_circuit,
    figure2_circuit,
    figure3_circuit,
)
from repro.experiments.figures import run_figure

FIGURES = {
    "figure1": figure1_circuit,
    "figure2": figure2_circuit,
    "figure3": figure3_circuit,
}


@pytest.mark.parametrize("label", sorted(FIGURES))
def test_figure(benchmark, label):
    text, verdicts, _detection = benchmark(
        lambda: run_figure(FIGURES[label], label)
    )
    assert verdicts["MOT"]
    assert not verdicts["SOT"]
    benchmark.extra_info["verdicts"] = {
        k: bool(v) for k, v in verdicts.items()
    }
