"""Table II benchmark: symbolic SOT vs rMOT vs MOT on the faults the
conventional flow could not classify, random sequences.

Paper shape: SOT and rMOT cost about the same, MOT costs more (extra
rename + all-output terms); accuracy is SOT <= rMOT <= MOT.
"""

import pytest

from conftest import fresh_set, prepared
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.symbolic.hybrid import hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant

CIRCUITS = ["ctr8", "syncc6", "johnson8", "lfsr8"]
STRATEGIES = ["SOT", "rMOT", "MOT"]


def conventional_pass(compiled, faults, sequence):
    fs = fresh_set(faults)
    eliminate_x_redundant(compiled, sequence, fs)
    fault_simulate_3v_parallel(compiled, sequence, fs)
    return fs


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_symbolic_strategy(benchmark, name, strategy):
    compiled, faults, sequence = prepared(name)
    base = conventional_pass(compiled, faults, sequence)
    baseline_detected = base.counts()["detected"]

    def run():
        fs = base.clone()
        hybrid_fault_simulate(compiled, sequence, fs, strategy=strategy)
        return fs

    fs = benchmark(run)
    extra = fs.counts()["detected"] - baseline_detected
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["f_u"] = len(base.symbolic_candidates())
    benchmark.extra_info["extra_detected"] = extra
