"""Micro-benchmarks of the observability exporters.

Exporters run on the operator's critical path (a Prometheus scrape
holds an HTTP worker; ``repro export-trace`` runs over multi-thousand
record traces), so their costs are worth pinning alongside the BDD
micro-benchmarks.
"""

from repro.obs.export import (
    render_prometheus,
    trace_to_chrome,
    trace_to_collapsed,
)
from repro.obs.metrics import MetricsRegistry


def make_registry(n_counters=50, n_hist_samples=500):
    registry = MetricsRegistry()
    for i in range(n_counters):
        registry.inc(f"component{i % 5}.counter{i}", i + 1)
        registry.gauge(f"component{i % 5}.gauge{i}", i * 3)
    for i in range(n_hist_samples):
        registry.observe("fault.bdd_size", (i * 37) % 4096 + 1)
        registry.observe("frame.micros", (i * 113) % 100_000 + 1)
    return registry


def make_trace(spans=2000):
    """A canonical fabric-style trace: spans, events, counters."""
    records = [
        {"kind": "trace-header", "v": 1, "source": "bench"},
        {"kind": "span", "name": "campaign", "seq": 0, "parent": None},
    ]
    seq = 1
    for i in range(spans):
        parent = 0
        records.append({
            "kind": "span", "name": "fault", "seq": seq,
            "parent": parent, "shard": str(i % 8), "worker": i % 4,
        })
        span_seq = seq
        seq += 1
        records.append({
            "kind": "event", "name": "detect", "seq": seq,
            "parent": span_seq,
        })
        seq += 1
        if i % 10 == 0:
            records.append({
                "kind": "metrics", "name": "sample", "seq": seq,
                "parent": span_seq, "values": {"bdd.nodes": i},
            })
            seq += 1
    return records


def test_render_prometheus(benchmark):
    registry = make_registry()
    text = benchmark(lambda: render_prometheus(registry))
    benchmark.extra_info["bytes"] = len(text)
    assert text.endswith("\n")


def test_trace_to_chrome(benchmark):
    records = make_trace()
    doc = benchmark(lambda: trace_to_chrome(records))
    benchmark.extra_info["events"] = len(doc["traceEvents"])
    assert doc["traceEvents"]


def test_trace_to_collapsed(benchmark):
    records = make_trace()
    text = benchmark(lambda: trace_to_collapsed(records))
    benchmark.extra_info["lines"] = len(text.splitlines())
    assert text
