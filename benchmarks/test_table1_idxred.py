"""Table I benchmark: three-valued fault simulation with and without
the ID_X-red pre-pass, and the pre-pass itself.

Paper shape to reproduce: X01_p (with pre-pass) is significantly faster
than X01 on circuits with many X-redundant faults, and the ID_X-red
time itself is negligible against either.
"""

import pytest

from conftest import fresh_set, prepared
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.xred.idxred import eliminate_x_redundant

# circuits spanning the X-redundancy spectrum (paper rows in comments)
CIRCUITS = [
    "ctr8",      # s208.1: ~90% X-redundant
    "tlc",       # s298: low X-redundancy
    "rfsm21a",   # s382: high X-redundancy
    "syncc6",    # s510: fully X-redundant
]


@pytest.mark.parametrize("name", CIRCUITS)
def test_x01_plain_three_valued(benchmark, name):
    """X01: conventional three-valued fault simulation, full list."""
    compiled, faults, sequence = prepared(name)

    def run():
        fs = fresh_set(faults)
        fault_simulate_3v(compiled, sequence, fs)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["paper_row"] = name
    benchmark.extra_info["faults"] = len(fs)
    benchmark.extra_info["detected"] = fs.counts()["detected"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_x01p_with_idxred_prepass(benchmark, name):
    """X01_p: ID_X-red first, then three-valued simulation."""
    compiled, faults, sequence = prepared(name)

    def run():
        fs = fresh_set(faults)
        eliminate_x_redundant(compiled, sequence, fs)
        fault_simulate_3v(compiled, sequence, fs)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["x_redundant"] = fs.counts()["x_redundant"]
    benchmark.extra_info["detected"] = fs.counts()["detected"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_idxred_alone(benchmark, name):
    """The pre-pass itself: linear time, negligible."""
    compiled, faults, sequence = prepared(name)

    def run():
        fs = fresh_set(faults)
        eliminate_x_redundant(compiled, sequence, fs)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["x_redundant"] = fs.counts()["x_redundant"]
