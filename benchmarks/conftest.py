"""Shared helpers for the benchmark harness.

Benchmarks use smaller workloads than the full experiment drivers
(``python -m repro.experiments tableN`` prints the complete paper-style
tables); here the goal is stable, repeatable timing of each pipeline
stage plus the ablations called out in DESIGN.md.
"""

import pytest

from repro.circuit.compile import compile_circuit
from repro.circuits.registry import get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.sequences.random_seq import random_sequence_for

BENCH_LENGTH = 60


def prepared(name, length=BENCH_LENGTH, seed=1):
    """(compiled, fault_list, sequence) for a registry circuit."""
    compiled = compile_circuit(get_circuit(name))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, length, seed=seed)
    return compiled, faults, sequence


def fresh_set(faults):
    return FaultSet(faults)
