"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. event-driven single-fault propagation vs full per-fault re-evaluation,
2. fault dropping on vs off,
3. ID_X-red vs SCOAP as the X-redundancy identifier,
4. interleaved vs blocked x/y variable order for MOT,
5. hybrid-simulator node-limit sensitivity.
"""

import pytest

from conftest import fresh_set, prepared
from repro.engines.algebra import THREE_VALUED
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.serial_fault_sim import (
    _check_sot_detection,
    fault_simulate_3v,
)
from repro.baselines.scoap import scoap_x_redundant
from repro.faults.model import BRANCH, DBRANCH, STEM
from repro.symbolic.fault_sim import symbolic_fault_simulate
from repro.symbolic.hybrid import hybrid_fault_simulate
from repro.xred.idxred import id_x_red


# ----------------------------------------------------------------------
# 1. event-driven vs full re-evaluation
# ----------------------------------------------------------------------
def _full_reeval_fault_sim(compiled, sequence, fault_set):
    """Reference simulator: every fault re-evaluates the whole frame."""
    algebra = THREE_VALUED
    from repro.logic import threeval

    live = list(fault_set.undetected())
    states = {
        id(r): [threeval.X] * compiled.num_dffs for r in live
    }
    good_state = [threeval.X] * compiled.num_dffs
    for time, vector in enumerate(sequence, start=1):
        good_values = simulate_frame(compiled, algebra, vector, good_state)
        survivors = []
        for record in live:
            values = _faulty_frame(
                compiled, algebra, vector, states[id(record)], record.fault
            )
            detected = False
            for po_pos, sig in enumerate(compiled.pos):
                good = good_values[sig]
                faulty = values[sig]
                if (
                    algebra.is_known(good)
                    and algebra.is_known(faulty)
                    and good != faulty
                ):
                    detected = True
                    break
            if detected:
                record.mark_detected("3-valued", time)
                continue
            nxt = [values[s] for s in compiled.dff_d]
            if record.fault.lead[0] == DBRANCH:
                nxt[record.fault.lead[1]] = algebra.const(
                    record.fault.value
                )
            states[id(record)] = nxt
            survivors.append(record)
        live = survivors
        good_state = next_state_of(compiled, good_values)
    return fault_set


def _faulty_frame(compiled, algebra, vector, state, fault):
    from repro.engines.evaluate import eval_gate

    values = [None] * compiled.num_signals
    stem = fault.lead[1] if fault.lead[0] == STEM else None
    branch = (
        (fault.lead[1], fault.lead[2]) if fault.lead[0] == BRANCH else None
    )
    for sig, bit in zip(compiled.pis, vector):
        values[sig] = algebra.const(bit)
    for sig, value in zip(compiled.ppis, state):
        values[sig] = value
    if stem is not None and values[stem] is not None:
        values[stem] = algebra.const(fault.value)
    for cg in compiled.gates:
        if stem is not None and cg.out == stem:
            values[cg.out] = algebra.const(fault.value)
            continue
        operands = [values[src] for src in cg.fanins]
        if branch is not None and cg.pos == branch[0]:
            operands[branch[1]] = algebra.const(fault.value)
        values[cg.out] = eval_gate(algebra, cg.kind, operands)
    return values


def test_ablation_event_driven(benchmark):
    compiled, faults, sequence = prepared("tlc", length=40)

    def run():
        fs = fresh_set(faults)
        fault_simulate_3v(compiled, sequence, fs)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["engine"] = "event-driven"
    benchmark.extra_info["detected"] = fs.counts()["detected"]


def test_ablation_full_reevaluation(benchmark):
    compiled, faults, sequence = prepared("tlc", length=40)

    def run():
        fs = fresh_set(faults)
        _full_reeval_fault_sim(compiled, sequence, fs)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["engine"] = "full-reeval"
    benchmark.extra_info["detected"] = fs.counts()["detected"]


# ----------------------------------------------------------------------
# 2. fault dropping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("drop", [True, False],
                         ids=["dropping", "no-dropping"])
def test_ablation_fault_dropping(benchmark, drop):
    compiled, faults, sequence = prepared("shift16", length=60)

    def run():
        fs = fresh_set(faults)
        fault_simulate_3v(compiled, sequence, fs, drop_detected=drop)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["detected"] = fs.counts()["detected"]


# ----------------------------------------------------------------------
# 3. ID_X-red vs SCOAP
# ----------------------------------------------------------------------
def test_ablation_idxred_identifier(benchmark):
    compiled, faults, sequence = prepared("ctr16", length=60)
    result = benchmark(lambda: id_x_red(compiled, sequence, faults))
    identified = sum(1 for f in faults if result.is_x_redundant(f))
    benchmark.extra_info["identified"] = identified
    benchmark.extra_info["faults"] = len(faults)


def test_ablation_scoap_identifier(benchmark):
    compiled, faults, _sequence = prepared("ctr16", length=60)
    red = benchmark(lambda: scoap_x_redundant(compiled, faults))
    benchmark.extra_info["identified"] = len(red)
    benchmark.extra_info["faults"] = len(faults)


# ----------------------------------------------------------------------
# 4. variable order for MOT
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["interleaved", "blocked"])
def test_ablation_variable_order(benchmark, scheme):
    compiled, faults, sequence = prepared("ctr8", length=40)

    def run():
        fs = fresh_set(faults)
        return symbolic_fault_simulate(
            compiled, sequence, fs, strategy="MOT",
            variable_scheme=scheme,
        )

    result = benchmark(run)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["peak_nodes"] = result.peak_nodes


# ----------------------------------------------------------------------
# 5. node-limit sensitivity of the hybrid simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("limit", [1000, 5000, 30000])
def test_ablation_node_limit(benchmark, limit):
    compiled, faults, sequence = prepared("nlfsr12", length=30)

    def run():
        fs = fresh_set(faults)
        return hybrid_fault_simulate(
            compiled, sequence, fs, strategy="MOT", node_limit=limit
        ), fs

    result, fs = benchmark(run)
    benchmark.extra_info["node_limit"] = limit
    benchmark.extra_info["fallbacks"] = result.fallbacks
    benchmark.extra_info["detected"] = fs.counts()["detected"]
