"""Table IV benchmark: symbolic test evaluation.

Paper shape: building the symbolic output sequence is the expensive
part; evaluating one observed response against it is fast, and the
shared OBDD of the whole output sequence stays moderate.
"""

import random

import pytest

from conftest import prepared
from repro.symbolic.evaluation import (
    generate_response,
    symbolic_output_sequence,
)

CIRCUITS = ["ctr8", "syncc6", "johnson8"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_build_symbolic_output_sequence(benchmark, name):
    compiled, _faults, sequence = prepared(name, length=100)
    symbolic = benchmark(
        lambda: symbolic_output_sequence(compiled, sequence)
    )
    benchmark.extra_info["bdd_size"] = symbolic.bdd_size()
    benchmark.extra_info["frames"] = len(sequence)


@pytest.mark.parametrize("name", CIRCUITS)
def test_evaluate_response(benchmark, name):
    compiled, _faults, sequence = prepared(name, length=100)
    symbolic = symbolic_output_sequence(compiled, sequence)
    rng = random.Random(3)
    state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
    response = generate_response(compiled, sequence, state)

    accepted, _ = benchmark(lambda: symbolic.evaluate(response))
    assert accepted
    benchmark.extra_info["bdd_size"] = symbolic.bdd_size()
    benchmark.extra_info["outputs"] = compiled.num_pos
