"""Table III benchmark: the same strategy comparison on compact
deterministic sequences (plus the generator itself).

Paper shape: the deterministic sequences are much shorter than the
random 200-vector workload, rMOT is sometimes *faster* than SOT (faults
drop earlier), and the accuracy ordering is preserved.
"""

import pytest

from conftest import fresh_set, prepared
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.sequences.deterministic import deterministic_sequence
from repro.symbolic.hybrid import hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant

CIRCUITS = ["tlc", "syncc6", "shift8"]
STRATEGIES = ["SOT", "rMOT", "MOT"]


def det_sequence(compiled, faults, seed=1):
    seq = deterministic_sequence(compiled, faults, max_length=100,
                                 seed=seed)
    if not seq:
        from repro.sequences.random_seq import random_sequence_for

        seq = random_sequence_for(compiled, 16, seed=seed)
    return seq


@pytest.mark.parametrize("name", CIRCUITS)
def test_deterministic_generation(benchmark, name):
    compiled, faults, _ = prepared(name)
    seq = benchmark(lambda: det_sequence(compiled, faults))
    benchmark.extra_info["length"] = len(seq)


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_symbolic_on_deterministic(benchmark, name, strategy):
    compiled, faults, _ = prepared(name)
    sequence = det_sequence(compiled, faults)
    base = fresh_set(faults)
    eliminate_x_redundant(compiled, sequence, base)
    fault_simulate_3v_parallel(compiled, sequence, base)
    baseline = base.counts()["detected"]

    def run():
        fs = base.clone()
        hybrid_fault_simulate(compiled, sequence, fs, strategy=strategy)
        return fs

    fs = benchmark(run)
    benchmark.extra_info["length"] = len(sequence)
    benchmark.extra_info["extra_detected"] = (
        fs.counts()["detected"] - baseline
    )
