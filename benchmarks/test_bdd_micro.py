"""Micro-benchmarks of the OBDD package itself (the substrate every
symbolic experiment stands on)."""

import pytest

from repro.bdd import BddManager, StateVariables


def build_parity(manager, n):
    f = manager.const(0)
    for i in range(n):
        f = manager.xor(f, manager.mk_var(i))
    return f


def build_adder_bits(manager, n):
    """Carry chain: stresses ite with shared subgraphs."""
    carry = manager.const(0)
    outs = []
    for i in range(n):
        a = manager.mk_var(2 * i)
        b = manager.mk_var(2 * i + 1)
        s = manager.xor(manager.xor(a, b), carry)
        carry = manager.or_(
            manager.and_(a, b), manager.and_(carry, manager.xor(a, b))
        )
        outs.append(s)
    return outs, carry


def test_bdd_parity_construction(benchmark):
    f = benchmark(lambda: build_parity(BddManager(num_vars=40), 40))
    assert f >= 2


def test_bdd_adder_construction(benchmark):
    def run():
        m = BddManager(num_vars=32)
        outs, carry = build_adder_bits(m, 16)
        return m, outs

    m, outs = benchmark(run)
    benchmark.extra_info["nodes"] = m.num_nodes


def test_bdd_rename_x_to_y(benchmark):
    sv = StateVariables(16)
    mapping = sv.x_to_y()

    def run():
        # fresh manager per round so the rename cache cannot hide work
        m = BddManager(num_vars=sv.num_vars)
        f = m.const(1)
        for i in range(0, 16, 2):
            f = m.and_(
                f, m.xor(m.mk_var(sv.x(i)), m.mk_var(sv.x(i + 1)))
            )
        return m.rename(f, mapping)

    benchmark(run)


def test_bdd_satcount(benchmark):
    m = BddManager(num_vars=24)
    f = build_parity(m, 24)
    count = benchmark(lambda: m.sat_count(f, range(24)))
    assert count == 1 << 23


def test_bdd_window_reordering(benchmark):
    """Window-permutation reordering on the order-sensitive pairs
    function (blocked layout -> near-linear after reordering)."""
    from repro.bdd.reorder import window_search

    n = 5

    def run():
        m = BddManager(num_vars=2 * n)
        f = m.const(1)
        for i in range(n):
            f = m.and_(f, m.xnor(m.mk_var(i), m.mk_var(n + i)))
        before = m.size(f)
        new_manager, (g,), _order = window_search(m, [f], window=3,
                                                  passes=3)
        return before, new_manager.size([g])

    before, after = benchmark(run)
    benchmark.extra_info["size_before"] = before
    benchmark.extra_info["size_after"] = after
    assert after <= before


def test_bdd_garbage_collection(benchmark):
    def run():
        m = BddManager(num_vars=24)
        keep = build_parity(m, 24)
        for i in range(23):
            m.and_(m.mk_var(i), m.mk_var(i + 1))  # garbage
        translate = m.collect([keep])
        return translate[keep]

    benchmark(run)


def test_bdd_disabled_observability_overhead(benchmark):
    """Guard: observability off must not tax the ITE hot path.

    Runs the same adder construction with the manager's stat counters
    off (the default) and on, inside each benchmark round.  Stats-off
    executes the uninstrumented code, so its time must not drift up
    toward the stats-on time — that would mean instrumentation leaked
    out of its opt-in guard.  The ratio assert is lenient because the
    enabled overhead is itself small; absolute regressions are caught
    by comparing against the saved pytest-benchmark baselines.
    """
    import time

    def once(enable):
        m = BddManager(num_vars=32)
        if enable:
            m.enable_stats()
        t0 = time.perf_counter()
        build_adder_bits(m, 16)
        return time.perf_counter() - t0

    def run():
        disabled = min(once(False) for _ in range(5))
        enabled = min(once(True) for _ in range(5))
        return disabled, enabled

    disabled, enabled = benchmark(run)
    benchmark.extra_info["disabled_s"] = round(disabled, 6)
    benchmark.extra_info["enabled_s"] = round(enabled, 6)
    benchmark.extra_info["ratio"] = round(disabled / enabled, 3)
    assert disabled <= enabled * 1.10


def test_bdd_disabled_failpoints_overhead(benchmark):
    """Guard: an empty failpoint registry must not tax the node
    allocator.

    With nothing armed, ``BddManager`` installs no alloc hook at all,
    so ``mk()`` runs the uninstrumented path; with ``bdd.alloc`` armed
    at an unreachable threshold the hook is installed and evaluated on
    every fresh node.  Disabled must not drift up toward the armed
    time — that would mean the injection plumbing leaked out of its
    arm-time guard.
    """
    import time

    from repro import failpoints

    def once(arm):
        failpoints.clear()
        if arm:
            failpoints.set_failpoint("bdd.alloc", "after:1000000000")
        try:
            m = BddManager(num_vars=32)
            t0 = time.perf_counter()
            build_adder_bits(m, 16)
            return time.perf_counter() - t0
        finally:
            failpoints.clear()

    def run():
        disabled = min(once(False) for _ in range(5))
        armed = min(once(True) for _ in range(5))
        return disabled, armed

    disabled, armed = benchmark(run)
    benchmark.extra_info["disabled_s"] = round(disabled, 6)
    benchmark.extra_info["armed_s"] = round(armed, 6)
    benchmark.extra_info["ratio"] = round(disabled / armed, 3)
    assert disabled <= armed * 1.10


def test_disabled_failpoint_fire_dispatch(benchmark):
    """The disarmed ``fire()`` site cost: one falsy dict check."""
    from repro import failpoints

    failpoints.clear()

    def run():
        for _ in range(10_000):
            failpoints.fire("checkpoint.write.enospc")

    benchmark(run)


def test_null_tracer_dispatch(benchmark):
    """The no-op tracer's per-site cost: one attribute check / call."""
    from repro.obs.tracer import NULL_TRACER

    def run():
        for _ in range(10_000):
            if NULL_TRACER.enabled:  # the hot-path guard idiom
                NULL_TRACER.event("never")
        with NULL_TRACER.span("frame") as span:
            span.add(outcome="stepped")

    benchmark(run)
