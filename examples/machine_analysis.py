"""Symbolic machine analysis: why some circuits defeat conventional
fault simulation, quantified.

For a spread of benchmark circuits this example reports:

* whether a synchronizing sequence exists (and its length) — circuits
  without one can never be driven to a known state, which is the root
  cause of the paper's X-redundancy numbers;
* how far a random test sequence shrinks the machine's uncertainty set
  (the number of states the machine could still be in);
* how many flip-flops a three-valued simulation of the same sequence
  initialises — the gap between the two columns is exactly the
  information the three-valued logic throws away and the symbolic MOT
  machinery recovers;
* a sequential equivalence check between the circuit and a deliberately
  mutated copy, with the distinguishing sequence found by the miter
  reachability engine.

Run with:  python examples/machine_analysis.py
"""

from repro import compile_circuit, random_sequence_for
from repro.analysis import (
    check_equivalence,
    find_synchronizing_sequence,
    uncertainty_after,
)
from repro.analysis.observability import three_valued_initialised_bits
from repro.circuit.netlist import Gate
from repro.circuits import get_circuit


def analyse(name):
    circuit = get_circuit(name)
    compiled = compile_circuit(circuit)
    sync = find_synchronizing_sequence(compiled, max_length=20,
                                       beam_width=16)
    sequence = random_sequence_for(compiled, 30, seed=3)
    _set, uncertainty = uncertainty_after(compiled, sequence)
    init = three_valued_initialised_bits(compiled, sequence)
    known = sum(1 for t in init if t is not None)
    return {
        "name": name,
        "dffs": compiled.num_dffs,
        "sync": len(sync.sequence) if sync.found else None,
        "uncertainty": uncertainty,
        "known_3v": known,
    }


def main():
    print(f"{'circuit':10} {'DFFs':>5} {'sync len':>9} "
          f"{'|S| after 30 vec':>17} {'3V-known FFs':>13}")
    for name in ("s27", "shift8", "syncc6", "tlc", "ctr8", "lfsr8"):
        row = analyse(name)
        sync = row["sync"] if row["sync"] is not None else "none"
        print(f"{row['name']:10} {row['dffs']:>5} {str(sync):>9} "
              f"{row['uncertainty']:>17} {row['known_3v']:>13}")

    print("\nsyncc6: the uncertainty column collapses to 1 while the "
          "3V column stays 0 — fully synchronizable, yet invisible to "
          "three-valued logic (the paper's s510 phenomenon).")

    # equivalence check against a mutated copy of s27
    good = get_circuit("s27")
    bad = good.copy(name="s27_bug")
    bad.gates["G17"] = Gate("G17", "BUF", ["G11"])  # dropped inverter
    result = check_equivalence(good, bad)
    print(f"\nequivalence vs mutated s27 (inverter dropped on G17): "
          f"{'EQUIVALENT' if result.equivalent else 'DIFFERENT'}")
    if not result.equivalent:
        print(f"  distinguishing sequence from reset: "
              f"{result.counterexample} (output {result.output_index})")


if __name__ == "__main__":
    main()
