"""Quickstart: the full fault-simulation flow of the paper on s27.

Pipeline (exactly the order the paper uses):

1. compile the circuit and build the collapsed stuck-at fault list,
2. run ``ID_X-red`` to strike faults the sequence can never detect
   under the three-valued logic (Section III),
3. run conventional three-valued fault simulation on the survivors,
4. hand everything still unclassified (including the X-redundant
   faults!) to the symbolic MOT fault simulator (Section IV).

Run with:  python examples/quickstart.py
"""

from repro import (
    FaultSet,
    collapse_faults,
    compile_circuit,
    eliminate_x_redundant,
    fault_simulate_3v,
    hybrid_fault_simulate,
    random_sequence_for,
)
from repro.circuits import s27


def main():
    circuit = s27()
    compiled = compile_circuit(circuit)
    print(f"circuit: {compiled!r}")

    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    print(f"collapsed stuck-at faults: {len(fault_set)}")

    sequence = random_sequence_for(compiled, length=100, seed=42)

    eliminate_x_redundant(compiled, sequence, fault_set)
    print(f"after ID_X-red:          {fault_set.counts()}")

    fault_simulate_3v(compiled, sequence, fault_set)
    print(f"after 3-valued sim:      {fault_set.counts()}")

    result = hybrid_fault_simulate(
        compiled, sequence, fault_set, strategy="MOT"
    )
    print(f"after symbolic MOT sim:  {fault_set.counts()}")
    print(
        f"MOT verdicts are {'exact' if result.exact else 'conservative'}"
        f" (fallbacks: {result.fallbacks}, peak OBDD nodes:"
        f" {result.peak_nodes})"
    )

    print("\nremaining undetected faults:")
    for record in fault_set.undetected() + fault_set.x_redundant():
        print(f"  {record.fault.describe(compiled)}")


if __name__ == "__main__":
    main()
