"""Symbolic test evaluation on the tester (Section IV.B).

A MOT test sequence cannot be evaluated by comparing the CUT response
with *the* golden response — with an unknown initial state there is a
whole *set* of correct responses, one per initial state, and that set
can be exponential.  The paper's answer: keep the fault-free output
sequence symbolic (one OBDD per output per time step over the
initial-state variables) and evaluate

    prod_t prod_j [ o_j(x, t) == c_j(t) ]

against the observed response c.  Product == 0  <=>  no initial state
explains the response  <=>  the CUT is faulty.

This example plays tester: it builds the symbolic response of a Johnson
counter, then feeds it (a) fault-free responses from random initial
states — all accepted — and (b) responses of faulty machines — rejected
whenever the injected fault is MOT-detectable by the sequence.

Run with:  python examples/tester_evaluation.py
"""

import random

from repro import (
    FaultSet,
    collapse_faults,
    compile_circuit,
    random_sequence_for,
    symbolic_fault_simulate,
    symbolic_output_sequence,
)
from repro.circuits.generators import johnson
from repro.symbolic.evaluation import generate_response


def main():
    rng = random.Random(11)
    compiled = compile_circuit(johnson(8))
    sequence = random_sequence_for(compiled, 64, seed=11)

    symbolic = symbolic_output_sequence(compiled, sequence)
    print(
        f"symbolic output sequence built: {len(sequence)} frames x "
        f"{compiled.num_pos} outputs, shared OBDD size "
        f"{symbolic.bdd_size()} nodes"
    )

    # (a) fault-free CUTs from arbitrary initial states must pass
    for trial in range(5):
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(compiled, sequence, state)
        accepted, _ = symbolic.evaluate(response)
        print(f"fault-free CUT, initial state {state}: "
              f"{'accepted' if accepted else 'REJECTED (bug!)'}")
        assert accepted

    # (b) faulty CUTs: rejected exactly when the fault is MOT-detected
    faults, _ = collapse_faults(compiled)
    shown = 0
    for fault in faults:
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy="MOT")
        mot_detected = fs.counts()["detected"] == 1
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(compiled, sequence, state, fault=fault)
        accepted, conflict = symbolic.evaluate(response)
        if mot_detected:
            assert not accepted, "MOT-detected fault slipped through"
        verdict = "rejected at t=%s" % conflict if not accepted else "passed"
        print(f"faulty CUT ({fault.describe(compiled)}): {verdict}"
              f"  [MOT says {'detectable' if mot_detected else 'maybe'}]")
        shown += 1
        if shown >= 8:
            break

    print("\nevery MOT-detectable fault was caught on the tester; "
          "responses that passed came from faults the sequence cannot "
          "distinguish from some fault-free initial state.")


if __name__ == "__main__":
    main()
