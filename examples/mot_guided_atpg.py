"""MOT-guided test generation, then compaction and tester hand-off.

The paper's introduction: "MOT-based test generation should be
supported by a MOT-based fault simulation to obtain the full power of
the MOT strategy."  This example closes the loop on a circuit class
where conventional (three-valued) generation is hopeless — a Johnson counter
whose state never initialises under the three-valued logic:

1. confirm the conventional flow detects (almost) nothing,
2. generate a sequence with the MOT-guided generator,
3. compact it without losing MOT coverage,
4. verify the compacted sequence still rejects faulty responses in the
   symbolic tester evaluation.

Run with:  python examples/mot_guided_atpg.py
"""

import random

from repro import (
    FaultSet,
    collapse_faults,
    compact_sequence,
    compile_circuit,
    fault_simulate_3v,
    generate_mot_tests,
    random_sequence_for,
    symbolic_output_sequence,
)
from repro.circuits.generators import johnson
from repro.symbolic.evaluation import generate_response


def main():
    compiled = compile_circuit(johnson(8))
    faults, _ = collapse_faults(compiled)
    print(f"circuit: {compiled!r}, {len(faults)} collapsed faults")

    # 1. conventional flow: nothing to see
    fs = FaultSet(faults)
    fault_simulate_3v(
        compiled, random_sequence_for(compiled, 100, seed=1), fs
    )
    print(f"three-valued flow detects: {fs.counts()['detected']}")

    # 2. MOT-guided generation
    result = generate_mot_tests(
        compiled, faults, strategy="MOT", max_length=80, seed=1,
        candidates=4, patience=25,
    )
    print(f"MOT-guided ATPG: |T| = {len(result.sequence)}, "
          f"{result.fault_set.counts()['detected']} faults detected")

    # 3. compaction
    compacted = compact_sequence(
        compiled, result.sequence, faults, strategy="MOT",
        max_trials=30,
    )
    print(f"compacted: {compacted.original_length} -> "
          f"{compacted.compacted_length} vectors, coverage preserved")

    # 4. the compacted sequence on the tester
    symbolic = symbolic_output_sequence(compiled, compacted.compacted)
    rng = random.Random(2)
    rejected = 0
    detected_keys = compacted.detected
    for fault in faults:
        if fault.key() not in detected_keys:
            continue
        state = [rng.randrange(2) for _ in range(compiled.num_dffs)]
        response = generate_response(
            compiled, compacted.compacted, state, fault=fault
        )
        accepted, _ = symbolic.evaluate(response)
        if not accepted:
            rejected += 1
    print(f"tester: {rejected}/{len(detected_keys)} MOT-detected faults "
          f"rejected on a random faulty-machine response")
    # MOT detection means the fault-free and faulty response sets are
    # disjoint, so rejection is guaranteed for EVERY faulty initial
    # state as long as the symbolic output sequence is exact.
    assert not symbolic.exact or rejected == len(detected_keys)


if __name__ == "__main__":
    main()
