"""Re-enact Figures 1-3 of the paper.

Each figure shows a stuck-at fault the SOT strategy misses; the script
prints the symbolic output sequences (as small formulas over the
initial-state variables x / y), the detection function of Lemma 1, and
the verdict of each observation strategy.

Run with:  python examples/figures_from_paper.py
"""

from repro.experiments.figures import run_all_figures


def main():
    print(run_all_figures())


if __name__ == "__main__":
    main()
