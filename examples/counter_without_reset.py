"""The s208.1 story: a divider/counter without reset.

An n-bit binary counter with no reset line is the classic circuit on
which conventional fault simulation collapses: with an unknown initial
state every flip-flop stays X forever under the three-valued logic, so
nearly the whole fault universe is "X-redundant" and the reported fault
coverage is close to zero.  The MOT strategy recovers real coverage:
even though no single output ever has a well-defined value, the
*relationship* between output sequences of the fault-free and faulty
machines is captured symbolically, and many faults provably corrupt it
for every pair of initial states.

This example sweeps the counter width and prints, per strategy, how
many faults are detected — reproducing the accuracy ordering
3-valued < SOT <= rMOT <= MOT of Table II on its purest instance.

Run with:  python examples/counter_without_reset.py
"""

from repro import (
    FaultSet,
    collapse_faults,
    compile_circuit,
    eliminate_x_redundant,
    fault_simulate_3v_parallel,
    hybrid_fault_simulate,
    random_sequence_for,
)
from repro.circuits.generators import counter


def run(bits, length=200, seed=7):
    compiled = compile_circuit(counter(bits))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, length, seed=seed)

    base = FaultSet(faults)
    eliminate_x_redundant(compiled, sequence, base)
    fault_simulate_3v_parallel(compiled, sequence, base)
    counts = base.counts()

    row = {
        "bits": bits,
        "|F|": counts["total"],
        "X-red": counts["x_redundant"],
        "3-valued": counts["detected"],
    }
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = base.clone()
        hybrid_fault_simulate(compiled, sequence, fs, strategy=strategy)
        row[strategy] = fs.counts()["detected"]
    return row


def main():
    print("binary counter without reset, 200 random vectors")
    print(f"{'bits':>5} {'|F|':>5} {'X-red':>6} {'3-valued':>9} "
          f"{'SOT':>5} {'rMOT':>5} {'MOT':>5}")
    for bits in (4, 6, 8, 10):
        row = run(bits)
        print(f"{row['bits']:>5} {row['|F|']:>5} {row['X-red']:>6} "
              f"{row['3-valued']:>9} {row['SOT']:>5} {row['rMOT']:>5} "
              f"{row['MOT']:>5}")
    print("\nNote how the three-valued column stays near zero while the")
    print("MOT column grows with the fault universe — the coverage the")
    print("conventional flow under-reports is real and testable.")


if __name__ == "__main__":
    main()
