"""Legacy entry point so editable installs work without the ``wheel``
package (this environment is offline; see README, Installation)."""

from setuptools import setup

setup()
