"""Table I — influence of ``ID_X-red`` on three-valued fault simulation.

For each circuit and a random test sequence of length 200 the paper
reports: the fault count |F|, the number of X-redundant faults, the
number of faults the three-valued simulation detects (F_d), the run
time of three-valued fault simulation without the pre-pass (X01), with
it (X01_p), and the run time of ``ID_X-red`` itself.
"""

from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.experiments.common import (
    Timer,
    fmt_time,
    format_table,
    paper_name_for,
    prepare,
)
from repro.sequences.random_seq import random_sequence_for
from repro.xred.idxred import eliminate_x_redundant

DEFAULT_CIRCUITS = [
    "ctr8",
    "tlc",
    "shift8",
    "shift16",
    "rfsm21a",
    "rfsm13r",
    "rfsm21b",
    "ctr16",
    "rfsm21c",
    "syncc6",
    "lfsr8",
    "pipe8x3",
    "pipe12x4",
    "rfsm32r",
    "ctr24",
    "johnson8",
    "nlfsr12",
    "nlfsr20",
]


class Table1Row:
    def __init__(self, circuit, paper, num_faults, x_red, detected,
                 time_x01, time_x01p, time_idxred):
        self.circuit = circuit
        self.paper = paper
        self.num_faults = num_faults
        self.x_red = x_red
        self.detected = detected
        self.time_x01 = time_x01
        self.time_x01p = time_x01p
        self.time_idxred = time_idxred

    @property
    def speedup(self):
        if self.time_x01p <= 0:
            return float("inf")
        return self.time_x01 / self.time_x01p


def run_circuit(name, length=200, seed=1, engine="parallel"):
    """One Table-I row."""
    simulate = (
        fault_simulate_3v_parallel
        if engine == "parallel"
        else fault_simulate_3v
    )
    compiled, fault_set = prepare(name)
    sequence = random_sequence_for(compiled, length, seed=seed)

    # X01: plain three-valued fault simulation over the full list
    fs_plain = fault_set.clone()
    with Timer() as t_x01:
        simulate(compiled, sequence, fs_plain)

    # ID_X-red then three-valued simulation over the survivors
    fs_pre = fault_set.clone()
    with Timer() as t_idxred:
        eliminate_x_redundant(compiled, sequence, fs_pre)
    x_red = fs_pre.counts()["x_redundant"]
    with Timer() as t_x01p:
        simulate(compiled, sequence, fs_pre)

    detected_plain = fs_plain.counts()["detected"]
    detected_pre = fs_pre.counts()["detected"]
    if detected_plain != detected_pre:
        raise AssertionError(
            f"{name}: ID_X-red changed the detected count "
            f"({detected_plain} vs {detected_pre}) — it must be exact"
        )
    return Table1Row(
        name,
        paper_name_for(name),
        len(fault_set),
        x_red,
        detected_pre,
        t_x01.seconds,
        t_x01p.seconds,
        t_idxred.seconds,
    )


def run_table1(circuits=None, length=200, seed=1, engine="parallel"):
    circuits = circuits or DEFAULT_CIRCUITS
    return [run_circuit(name, length, seed, engine) for name in circuits]


def render(rows):
    body = [
        (
            r.circuit,
            r.paper,
            r.num_faults,
            r.x_red,
            r.detected,
            fmt_time(r.time_x01),
            fmt_time(r.time_x01p),
            fmt_time(r.time_idxred),
            f"{r.speedup:.1f}x",
        )
        for r in rows
    ]
    total_x = sum(r.x_red for r in rows)
    total_f = sum(r.num_faults for r in rows)
    table = format_table(
        ["Circ.", "paper row", "|F|", "X-red.", "F_d",
         "X01", "X01_p", "ID_X-red", "speedup"],
        body,
        title="Table I: influence of ID_X-red on three-valued fault "
              "simulation (random sequences, length 200)",
    )
    share = 100.0 * total_x / total_f if total_f else 0.0
    return table + (
        f"\n\nX-redundant faults overall: {total_x}/{total_f}"
        f" ({share:.0f}%; the paper reports 38% on ISCAS-89)"
    )


def main(argv=None):
    rows = run_table1()
    print(render(rows))


if __name__ == "__main__":
    main()
