"""Coverage-versus-sequence-length curves (extension experiment).

The paper reports endpoint numbers (Tables II/III); this driver traces
the whole curve: for growing prefixes of one random sequence, the fault
coverage proved by the conventional three-valued flow versus each
symbolic strategy.  The series makes the paper's qualitative claims
visible at a glance — the three-valued curve saturating early (or at
zero), rMOT tracking MOT closely, and the MOT gap persisting with
length on counter-class circuits.
"""

from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.experiments.common import format_table, paper_name_for, prepare
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT, hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant

DEFAULT_LENGTHS = (10, 25, 50, 100, 200)
DEFAULT_CIRCUITS = ("ctr8", "syncc6", "johnson8")


class CurvePoint:
    def __init__(self, length, detected):
        self.length = length
        self.detected = detected  # dict: "3v"/"SOT"/"rMOT"/"MOT" -> n


def run_curve(
    name,
    lengths=DEFAULT_LENGTHS,
    seed=1,
    node_limit=DEFAULT_NODE_LIMIT,
):
    """Coverage per strategy at each prefix length of one sequence."""
    compiled, base_set = prepare(name)
    full = random_sequence_for(compiled, max(lengths), seed=seed)
    points = []
    for length in lengths:
        sequence = full[:length]
        fs = base_set.clone()
        eliminate_x_redundant(compiled, sequence, fs)
        fault_simulate_3v_parallel(compiled, sequence, fs)
        detected = {"3v": fs.counts()["detected"]}
        for strategy in ("SOT", "rMOT", "MOT"):
            fs_s = fs.clone()
            hybrid_fault_simulate(
                compiled, sequence, fs_s, strategy=strategy,
                node_limit=node_limit,
            )
            detected[strategy] = fs_s.counts()["detected"]
        points.append(CurvePoint(length, detected))
    return compiled, points


def render(name, compiled, points):
    total = None
    rows = []
    for point in points:
        rows.append(
            (
                point.length,
                point.detected["3v"],
                point.detected["SOT"],
                point.detected["rMOT"],
                point.detected["MOT"],
            )
        )
    table = format_table(
        ["|T|", "3-valued", "SOT", "rMOT", "MOT"],
        rows,
        title=(
            f"coverage curve: {name} (stands in for "
            f"{paper_name_for(name)}), detected faults per strategy"
        ),
    )
    return table


def main(argv=None):
    circuits = argv if argv else list(DEFAULT_CIRCUITS)
    for name in circuits:
        compiled, points = run_curve(name)
        print(render(name, compiled, points))
        print()


if __name__ == "__main__":
    main()
