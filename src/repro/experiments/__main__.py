"""CLI dispatcher: ``python -m repro.experiments <table1|table2|table3|table4|figures|all>``."""

import sys

from repro.experiments import figures, table1, table2, table4
from repro.experiments import coverage_curve


def _run(which, argv):
    if which == "curves":
        coverage_curve.main(argv)
    elif which == "stats":
        from repro.experiments import stats_runner

        stats_runner.main(argv)
    elif which == "table1":
        table1.main(argv)
    elif which == "table2":
        table2.main(argv)
    elif which == "table3":
        table2.main(["deterministic"] + list(argv or []))
    elif which == "table4":
        table4.main(argv)
    elif which == "figures":
        figures.main(argv)
    elif which == "all":
        for name in ("figures", "table1", "table2", "table3", "table4"):
            print(f"\n=== {name} ===")
            _run(name, [])
    else:
        raise SystemExit(
            f"unknown experiment {which!r}; choose table1..table4, "
            "figures or all"
        )


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    _run(sys.argv[1], sys.argv[2:])


if __name__ == "__main__":
    main()
