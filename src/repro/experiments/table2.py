"""Tables II and III — symbolic SOT vs rMOT vs MOT.

The paper first removes everything the conventional flow classifies as
detected (three-valued fault simulation after ``ID_X-red``); the
remaining faults F_u (X-redundant + three-valued-undetected) are then
simulated symbolically under each observation strategy with the hybrid
simulator, reporting additionally detected faults and CPU time.  An
asterisk marks results obtained with at least one temporary change to
the three-valued logic (node limit exceeded).

Table III is the same measurement over deterministic sequences, which
is why this module implements both (see ``run_table``'s *sequence_fn*).
"""

from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.experiments.common import (
    Timer,
    fmt_time,
    format_table,
    paper_name_for,
    prepare,
)
from repro.sequences.deterministic import deterministic_sequence
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT, hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant

STRATEGIES = ("SOT", "rMOT", "MOT")

DEFAULT_CIRCUITS = [
    "ctr8",
    "tlc",
    "shift8",
    "rfsm21a",
    "rfsm13r",
    "ctr16",
    "rfsm21c",
    "syncc6",
    "lfsr8",
    "pipe8x3",
    "rfsm32r",
    "johnson8",
    "nlfsr12",
]


class StrategyOutcome:
    def __init__(self, detected, seconds, exact):
        self.detected = detected
        self.seconds = seconds
        self.exact = exact

    def render_detected(self):
        star = "" if self.exact else "*"
        return f"{star}{self.detected}"


class Table2Row:
    def __init__(self, circuit, paper, seq_len, num_faults, f_u, outcomes):
        self.circuit = circuit
        self.paper = paper
        self.seq_len = seq_len
        self.num_faults = num_faults
        self.f_u = f_u
        self.outcomes = outcomes  # strategy name -> StrategyOutcome


def run_circuit(
    name,
    sequence=None,
    length=200,
    seed=1,
    node_limit=DEFAULT_NODE_LIMIT,
    strategies=STRATEGIES,
):
    compiled, fault_set = prepare(name)
    if sequence is None:
        sequence = random_sequence_for(compiled, length, seed=seed)

    eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v_parallel(compiled, sequence, fault_set)
    baseline = fault_set.counts()["detected"]
    f_u = len(fault_set.symbolic_candidates())

    outcomes = {}
    for strategy in strategies:
        fs = fault_set.clone()
        with Timer() as timer:
            result = hybrid_fault_simulate(
                compiled, sequence, fs, strategy=strategy,
                node_limit=node_limit,
            )
        extra = fs.counts()["detected"] - baseline
        outcomes[strategy] = StrategyOutcome(
            extra, timer.seconds, result.exact
        )
    return Table2Row(
        name,
        paper_name_for(name),
        len(sequence),
        len(fault_set),
        f_u,
        outcomes,
    )


def run_table(
    circuits=None,
    deterministic=False,
    length=200,
    seed=1,
    node_limit=DEFAULT_NODE_LIMIT,
    strategies=STRATEGIES,
):
    """Run Table II (random) or Table III (deterministic)."""
    circuits = circuits or DEFAULT_CIRCUITS
    rows = []
    for name in circuits:
        sequence = None
        if deterministic:
            compiled, fault_set = prepare(name)
            sequence = deterministic_sequence(
                compiled,
                fault_set,
                max_length=length,
                seed=seed,
            )
            if not sequence:
                # circuit opaque to the 3-valued generator: fall back to
                # a short random probe sequence, as a test bench would
                sequence = random_sequence_for(compiled, 16, seed=seed)
        rows.append(
            run_circuit(
                name,
                sequence=sequence,
                length=length,
                seed=seed,
                node_limit=node_limit,
                strategies=strategies,
            )
        )
    return rows


def exactness_summary(rows):
    """The paper's headline claims, recomputed on our rows.

    A circuit's MOT coverage is *exact* when the MOT run finished
    without any three-valued fallback; rMOT "already computed the exact
    MOT coverage" when additionally its detected count equals MOT's.
    Returns ``(mot_exact, rmot_matches_mot, mot_strictly_better,
    total)``.
    """
    mot_exact = 0
    rmot_matches = 0
    strictly_better = []
    for row in rows:
        mot = row.outcomes.get("MOT")
        rmot = row.outcomes.get("rMOT")
        if mot is None or rmot is None:
            continue
        if mot.exact:
            mot_exact += 1
            if rmot.exact and rmot.detected == mot.detected:
                rmot_matches += 1
        if mot.detected > rmot.detected:
            strictly_better.append(row.circuit)
    return mot_exact, rmot_matches, strictly_better, len(rows)


def render(rows, deterministic=False):
    headers = ["Circ.", "paper row", "|T|", "|F|", "F_u"]
    strategies = list(rows[0].outcomes) if rows else list(STRATEGIES)
    headers += [f"{s} det" for s in strategies]
    headers += [f"{s} time" for s in strategies]
    body = []
    for r in rows:
        row = [r.circuit, r.paper, r.seq_len, r.num_faults, r.f_u]
        row += [r.outcomes[s].render_detected() for s in strategies]
        row += [fmt_time(r.outcomes[s].seconds) for s in strategies]
        body.append(row)
    total = ["(sum)", "", "", "", ""]
    total += [
        sum(r.outcomes[s].detected for r in rows) for s in strategies
    ]
    total += [
        fmt_time(sum(r.outcomes[s].seconds for r in rows))
        for s in strategies
    ]
    body.append(total)
    which = "III (deterministic sequences)" if deterministic \
        else "II (random sequences, length 200)"
    table = format_table(
        headers,
        body,
        title=f"Table {which}: symbolic SOT vs rMOT vs MOT on the "
              "faults the conventional flow left unclassified "
              "(* = three-valued fallback used)",
    )
    if "MOT" in (rows[0].outcomes if rows else {}):
        mot_exact, rmot_matches, better, total = exactness_summary(rows)
        table += (
            f"\n\nexact MOT coverage computed for {mot_exact} of "
            f"{total} circuits; rMOT already reached it on "
            f"{rmot_matches} of those {mot_exact}"
        )
        if better:
            table += (
                f"; MOT strictly beat rMOT on: {', '.join(better)}"
            )
        table += (
            "\n(the paper: 14 of 23 exact, rMOT sufficient in 12 of "
            "14, MOT strictly better only on s208.1, s510, s5378)"
        )
    return table


def main(argv=None):
    deterministic = bool(argv and "deterministic" in argv)
    rows = run_table(deterministic=deterministic)
    print(render(rows, deterministic=deterministic))


if __name__ == "__main__":
    main()
