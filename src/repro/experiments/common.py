"""Shared plumbing for the table/figure reproduction drivers."""

import time

from repro.circuit.compile import compile_circuit
from repro.circuits.registry import PAPER_ROWS, get_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._start
        return False


def paper_name_for(our_name):
    """The ISCAS-89 row a synthetic circuit stands in for (or '-')."""
    matches = [paper for paper, ours, _note in PAPER_ROWS if ours == our_name]
    return "/".join(matches) if matches else "-"


def prepare(circuit_name):
    """Compile a registered circuit and build its collapsed fault set."""
    circuit = get_circuit(circuit_name)
    compiled = compile_circuit(circuit)
    faults, _class_map = collapse_faults(compiled)
    return compiled, FaultSet(faults)


def format_table(headers, rows, title=None):
    """Plain-text fixed-width table (the paper look)."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_time(seconds):
    return f"{seconds:.2f}"
