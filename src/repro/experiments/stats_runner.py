"""Multi-seed statistics for the strategy comparison.

The paper reports one random sequence per circuit; this helper reruns
the Table-II measurement over several seeds and reports mean and spread
of the additionally detected faults per strategy — useful when judging
whether a stand-in circuit's SOT/rMOT/MOT gaps are stable properties or
single-seed artefacts.
"""

import statistics

from repro.experiments.common import format_table, paper_name_for
from repro.experiments.table2 import STRATEGIES, run_circuit
from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT


class StrategyStats:
    def __init__(self, samples):
        self.samples = samples

    @property
    def mean(self):
        return statistics.fmean(self.samples)

    @property
    def stdev(self):
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    @property
    def minimum(self):
        return min(self.samples)

    @property
    def maximum(self):
        return max(self.samples)

    def render(self):
        return f"{self.mean:.1f}±{self.stdev:.1f}"


def run_stats(
    name,
    seeds=(1, 2, 3, 4, 5),
    length=100,
    node_limit=DEFAULT_NODE_LIMIT,
    strategies=STRATEGIES,
):
    """Per-strategy :class:`StrategyStats` over the given seeds."""
    samples = {strategy: [] for strategy in strategies}
    for seed in seeds:
        row = run_circuit(
            name, length=length, seed=seed, node_limit=node_limit,
            strategies=strategies,
        )
        for strategy in strategies:
            samples[strategy].append(row.outcomes[strategy].detected)
    return {
        strategy: StrategyStats(values)
        for strategy, values in samples.items()
    }


def render_stats(results):
    """*results*: dict circuit -> per-strategy stats."""
    strategies = None
    body = []
    for name, stats in results.items():
        if strategies is None:
            strategies = list(stats)
        body.append(
            [name, paper_name_for(name)]
            + [stats[s].render() for s in strategies]
        )
    return format_table(
        ["Circ.", "paper row"] + [f"{s} det" for s in strategies],
        body,
        title="additional detections, mean±stdev over seeds",
    )


def main(argv=None):
    circuits = argv or ["ctr8", "syncc6", "johnson8"]
    results = {name: run_stats(name) for name in circuits}
    print(render_stats(results))


if __name__ == "__main__":
    main()
