"""Figures 1-3 — the paper's illustrating examples, re-enacted.

Each figure is reproduced by simulating the reconstructed circuit under
all three observation strategies and printing which strategy detects
the fault, together with the symbolic output values the paper's
waveforms show (for Fig. 3, the full detection-function computation
``D(x,y) = [x == ~y]*[x == y] = 0``).
"""

from repro.bdd import BddManager, StateVariables
from repro.bdd.manager import FALSE
from repro.circuit.compile import compile_circuit
from repro.circuits.figures import (
    figure1_circuit,
    figure2_circuit,
    figure3_circuit,
)
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.faults.model import stem_fault
from repro.faults.status import FaultSet
from repro.symbolic.detection import detection_function
from repro.symbolic.fault_sim import symbolic_fault_simulate


def _strategy_verdicts(compiled, fault, sequence):
    verdicts = {}
    for strategy in ("SOT", "rMOT", "MOT"):
        fs = FaultSet([fault])
        symbolic_fault_simulate(compiled, sequence, fs, strategy=strategy)
        verdicts[strategy] = fs.counts()["detected"] == 1
    return verdicts


def _symbolic_outputs(compiled, fault, sequence):
    """(good_outputs, faulty_outputs) per frame, as BDDs over x."""
    state_vars = StateVariables(compiled.num_dffs)
    manager = BddManager(num_vars=compiled.num_dffs)
    algebra = BddAlgebra(manager)
    good_state = [
        manager.mk_var(state_vars.x(i)) for i in range(compiled.num_dffs)
    ]
    diff = {}
    good_seq, faulty_seq = [], []
    for vector in sequence:
        pi_values = [algebra.const(b) for b in vector]
        values = simulate_frame(compiled, algebra, pi_values, good_state)
        result = propagate_fault(compiled, algebra, values, fault, diff)
        good_seq.append(outputs_of(compiled, values))
        faulty_seq.append(
            [result.faulty_value(values, sig) for sig in compiled.pos]
        )
        diff = result.next_state_diff
        good_state = next_state_of(compiled, values)
    return manager, state_vars, good_seq, faulty_seq


def _describe(manager, state_vars, bdd):
    """Tiny pretty-printer for the 1-variable functions of the figures."""
    value = manager.const_value(bdd)
    if value is not None:
        return str(value)
    names = {}
    for i in range(state_vars.num_dffs):
        names[state_vars.x(i)] = f"x{i}" if state_vars.num_dffs > 1 else "x"
        names[state_vars.y(i)] = f"y{i}" if state_vars.num_dffs > 1 else "y"
    if manager.var(bdd) in names and manager.is_terminal(manager.low(bdd)):
        name = names[manager.var(bdd)]
        if manager.high(bdd) == 1 and manager.low(bdd) == 0:
            return name
        if manager.high(bdd) == 0 and manager.low(bdd) == 1:
            return f"~{name}"
    return f"<bdd {manager.size(bdd)} nodes>"


def run_figure(factory, label):
    circuit, net, value, sequence = factory()
    compiled = compile_circuit(circuit)
    fault = stem_fault(compiled, net, value)
    verdicts = _strategy_verdicts(compiled, fault, sequence)
    manager, state_vars, good_seq, faulty_seq = _symbolic_outputs(
        compiled, fault, sequence
    )
    rename = state_vars.x_to_y()
    detection = detection_function(manager, good_seq, faulty_seq, rename)

    lines = [f"{label}: {circuit.name}, fault {net} s-a-{value}, "
             f"sequence {sequence}"]
    for t, (good, faulty) in enumerate(zip(good_seq, faulty_seq), start=1):
        g = ", ".join(_describe(manager, state_vars, b) for b in good)
        f = ", ".join(
            _describe(manager, state_vars, manager.rename(b, rename))
            for b in faulty
        )
        lines.append(f"  t={t}: o(x,{t}) = [{g}]   o^f(y,{t}) = [{f}]")
    lines.append(
        f"  detection function D(x,y) "
        f"{'== 0  =>  MOT-detectable' if detection == FALSE else '!= 0'}"
    )
    lines.append(
        "  verdicts: "
        + "  ".join(
            f"{s}={'detected' if v else 'not detected'}"
            for s, v in verdicts.items()
        )
    )
    return "\n".join(lines), verdicts, detection


def run_all_figures():
    outputs = []
    for factory, label in (
        (figure1_circuit, "Figure 1 (SOT misses the fault)"),
        (figure2_circuit, "Figure 2 (SOT misses it despite initialisation)"),
        (figure3_circuit, "Figure 3 (worked MOT example)"),
    ):
        text, _verdicts, _detection = run_figure(factory, label)
        outputs.append(text)
    return "\n\n".join(outputs)


def main(argv=None):
    print(run_all_figures())


if __name__ == "__main__":
    main()
