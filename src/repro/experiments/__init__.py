"""Experiment drivers regenerating every table and figure of the paper.

Command line::

    python -m repro.experiments table1
    python -m repro.experiments table2
    python -m repro.experiments table3
    python -m repro.experiments table4
    python -m repro.experiments figures
    python -m repro.experiments all
"""

from repro.experiments import table1, table2, table4, figures

__all__ = ["table1", "table2", "table4", "figures"]
