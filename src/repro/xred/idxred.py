"""The ``ID_X-red`` procedure of Section III.

Identifies faults that a *given* test sequence cannot detect under the
three-valued logic and the SOT strategy ("X-redundant faults"), in four
steps:

1. three-valued true-value simulation of the whole sequence, recording
   per lead the set of Boolean values it assumed (four-valued lattice
   {X}, {X,0}, {X,1}, {X,0,1});
2. a backward fixpoint that lowers a lead to {X} when every path from
   it to a primary or secondary output is blocked by an {X} lead
   (iterated until the secondary inputs stabilise);
3. a backward observability traversal inside each fanout-free region:
   a gate input is observable only if the gate output is observable and
   every side input assumed a non-controlling value at some time;
4. the sufficient undetectability check per stuck-at fault
   (never activated, value history {X}, or observability 0).

The run time is O(|C|·|Z|) for step 1 and O(|C|) for steps 2-4, exactly
as the paper states; the whole procedure is linear and is meant to be
negligible next to the fault simulation it accelerates.
"""

from repro.circuit import gates as gatelib
from repro.circuit.regions import is_head
from repro.engines.true_value import value_histories
from repro.faults.model import BRANCH, DBRANCH, STEM
from repro.logic.fourval import IX_X, ix_saw_one, ix_saw_zero


class XRedResult:
    """Everything the procedure computed, for inspection and tests."""

    def __init__(self, stem_ix, pin_ix, dpin_ix, ob_stem, ob_pin, ob_dpin,
                 x_redundant):
        self.stem_ix = stem_ix  # per-signal recomputed I_X value
        self.pin_ix = pin_ix  # (gate_pos, pin) -> I_X value
        self.dpin_ix = dpin_ix  # dff_idx -> I_X value
        self.ob_stem = ob_stem  # per-signal observability 0/1
        self.ob_pin = ob_pin  # (gate_pos, pin) -> observability
        self.ob_dpin = ob_dpin  # dff_idx -> observability
        self.x_redundant = x_redundant  # set of fault keys

    def is_x_redundant(self, fault):
        return fault.key() in self.x_redundant


def _step2_backward_fixpoint(compiled, i1):
    """Recompute lead I_X values until the secondary inputs stabilise."""
    cur = list(i1)
    ppi_set = frozenset(compiled.ppis)

    # reverse topological order over all signals: gates high->low level,
    # then the level-0 sources (their order among themselves is free).
    order = [cg.out for cg in reversed(compiled.gates)]
    order.extend(compiled.pis)
    order.extend(compiled.ppis)

    while True:
        changed_ppi = False
        for sig in order:
            if cur[sig] == IX_X:
                continue
            alive = False
            for gate_pos, _pin in compiled.fanout_gates[sig]:
                if cur[compiled.gates[gate_pos].out] != IX_X:
                    alive = True
                    break
            if not alive:
                for dff_idx in compiled.dff_sinks[sig]:
                    if cur[compiled.ppis[dff_idx]] != IX_X:
                        alive = True
                        break
            if not alive and compiled.po_sinks[sig]:
                alive = True
            if not alive:
                cur[sig] = IX_X
                if sig in ppi_set:
                    changed_ppi = True
        if not changed_ppi:
            break
    return cur


def _branch_values(compiled, i1, stem_ix):
    """Step-2 I_X values of the branch leads (gate pins and D pins)."""
    pin_ix = {}
    for cg in compiled.gates:
        out_dead = stem_ix[cg.out] == IX_X
        for pin, src in enumerate(cg.fanins):
            if out_dead:
                pin_ix[(cg.pos, pin)] = IX_X
            else:
                pin_ix[(cg.pos, pin)] = i1[src]
    dpin_ix = {}
    for dff_idx, d_sig in enumerate(compiled.dff_d):
        if stem_ix[compiled.ppis[dff_idx]] == IX_X:
            dpin_ix[dff_idx] = IX_X
        else:
            dpin_ix[dff_idx] = i1[d_sig]
    return pin_ix, dpin_ix


def _side_input_allows(kind, side_values):
    """Can a fault effect pass this gate, given the side-input histories?"""
    base, _inverted = gatelib.base_op(kind)
    if base == "AND":
        return all(ix_saw_one(v) for v in side_values)
    if base == "OR":
        return all(ix_saw_zero(v) for v in side_values)
    if base == "XOR":
        return all(v != IX_X for v in side_values)
    return True  # ID gates have no side inputs


def _step3_observability(compiled, stem_ix, pin_ix, dpin_ix):
    """Backward traversal inside the fanout-free regions."""
    ob_stem = [0] * compiled.num_signals
    ob_pin = {}

    order = [cg.out for cg in reversed(compiled.gates)]
    order.extend(compiled.pis)
    order.extend(compiled.ppis)

    for sig in order:
        if is_head(compiled, sig):
            ob_stem[sig] = 0 if stem_ix[sig] == IX_X else 1
        else:
            # unique sink, and it is a gate pin (region-internal net)
            gate_pos, pin = compiled.fanout_gates[sig][0]
            ob_stem[sig] = ob_pin.get((gate_pos, pin), 0)
        driver = compiled.gate_at[sig]
        if driver is None:
            continue
        cg = compiled.gates[driver]
        for pin in range(len(cg.fanins)):
            if ob_stem[sig]:
                side = [
                    pin_ix[(cg.pos, other)]
                    for other in range(len(cg.fanins))
                    if other != pin
                ]
                ob_pin[(cg.pos, pin)] = (
                    1 if _side_input_allows(cg.kind, side) else 0
                )
            else:
                ob_pin[(cg.pos, pin)] = 0

    ob_dpin = {}
    for dff_idx in range(compiled.num_dffs):
        dead = stem_ix[compiled.ppis[dff_idx]] == IX_X
        ob_dpin[dff_idx] = 0 if dead else 1
    return ob_stem, ob_pin, ob_dpin


def _lead_ix_and_ob(result, lead):
    kind = lead[0]
    if kind == STEM:
        return result.stem_ix[lead[1]], result.ob_stem[lead[1]]
    if kind == BRANCH:
        key = (lead[1], lead[2])
        return result.pin_ix[key], result.ob_pin[key]
    return result.dpin_ix[lead[1]], result.ob_dpin[lead[1]]


def _fault_is_x_redundant(result, fault):
    ix, ob = _lead_ix_and_ob(result, fault.lead)
    if ix == IX_X:
        return True
    if ob == 0:
        return True
    if fault.value == 0 and not ix_saw_one(ix):
        return True  # never 1: a stuck-at-0 is never activated
    if fault.value == 1 and not ix_saw_zero(ix):
        return True  # never 0: a stuck-at-1 is never activated
    return False


def id_x_red(compiled, sequence, faults, initial_state=None):
    """Run the full four-step procedure.

    Returns an :class:`XRedResult`; the X-redundant subset of *faults*
    is available as ``result.x_redundant`` (a set of fault keys) or via
    ``result.is_x_redundant(fault)``.
    """
    i1 = value_histories(compiled, sequence, initial_state)
    stem_ix = _step2_backward_fixpoint(compiled, i1)
    pin_ix, dpin_ix = _branch_values(compiled, i1, stem_ix)
    ob_stem, ob_pin, ob_dpin = _step3_observability(
        compiled, stem_ix, pin_ix, dpin_ix
    )
    result = XRedResult(
        stem_ix, pin_ix, dpin_ix, ob_stem, ob_pin, ob_dpin, set()
    )
    for fault in faults:
        if _fault_is_x_redundant(result, fault):
            result.x_redundant.add(fault.key())
    return result


def eliminate_x_redundant(compiled, sequence, fault_set, initial_state=None):
    """Mark the X-redundant records of *fault_set* (the Table-I pre-pass).

    Returns the :class:`XRedResult` for inspection.
    """
    faults = [r.fault for r in fault_set.undetected()]
    result = id_x_red(compiled, sequence, faults, initial_state)
    for record in fault_set.undetected():
        if result.is_x_redundant(record.fault):
            record.mark_x_redundant()
    return result
