"""X-redundant fault identification (the ``ID_X-red`` procedure)."""

from repro.xred.idxred import XRedResult, eliminate_x_redundant, id_x_red

__all__ = ["XRedResult", "id_x_red", "eliminate_x_redundant"]
