"""Sharded audits on the existing worker fabric.

Witness replay is embarrassingly parallel — each detected fault's
audit is a pure function of (circuit, sequence, claim, audit options) —
so the detected-side audits reuse :class:`~repro.runtime.fabric.
coordinator.ShardFabric` wholesale: the worker pool, heartbeat
liveness, retry/backoff, poison-shard bisection.  Differences from a
campaign run:

* shards carry audit *findings* home instead of fault states (states
  are echoed unchanged so the base payload plumbing applies cleanly to
  a **clone** of the fault set — audit infrastructure failures must
  never mutate campaign verdicts);
* there is no fabric checkpoint: durability lives in the audit
  runner's own finding-level checkpoint, fed through *sink* the moment
  a shard's payload lands;
* findings contain no wall-clock data and the runner re-orders them by
  fault-universe index, so a sharded audit's report is byte-identical
  to a serial one regardless of shard layout or completion order.
"""

from repro.audit.report import (
    AuditFinding,
    INCONCLUSIVE_BUDGET,
)
from repro.audit.runner import (
    AuditOptions,
    _claim_base,
    audit_detected_record,
)
from repro.faults.status import FaultRecord
from repro.runtime.errors import BudgetExceeded
from repro.runtime.fabric.coordinator import FabricConfig, ShardFabric
from repro.runtime.fabric.sharding import aligned_shard_size, plan_shards


def run_audit_shard(compiled, faults, sequence, indices, audit_init,
                    governor=None, tracer=None, metrics=None):
    """Audit one shard of detected faults; returns a result payload.

    *audit_init* is the picklable dict from the coordinator's init
    payload: the audit options, the campaign's recorded per-fault
    states (aligned with *faults*), and the complete/exact flags.
    The single execution path for pooled workers and inline mode.
    """
    options = AuditOptions.from_json(audit_init["options"])
    states = audit_init["states"]
    findings = []
    stopped = "completed"
    nodes = 0
    for position, index in enumerate(indices):
        if governor is not None:
            try:
                governor.check_frame(position)
            except BudgetExceeded as exc:
                stopped = exc.kind
                for left_behind in indices[position:]:
                    findings.append(
                        _budget_finding(
                            faults, states, left_behind, exc
                        ).to_json()
                    )
                break
        record = FaultRecord(faults[index])
        record.state_from_json(states[index])
        finding = audit_detected_record(
            compiled, sequence, record, index, options
        )
        nodes += finding.witness_nodes
        findings.append(finding.to_json())
    return {
        "findings": findings,
        # echoed unchanged: the coordinator applies these to its clone
        "states": [states[i] for i in indices],
        "stopped": stopped,
        "quarantined": [],
        "nodes_allocated": nodes,
    }


def _budget_finding(faults, states, index, exc):
    record = FaultRecord(faults[index])
    record.state_from_json(states[index])
    return AuditFinding(
        classification=INCONCLUSIVE_BUDGET,
        note=f"audit budget exhausted before this fault ({exc.kind})",
        **_claim_base(record, index, "detected"),
    )


class _AuditFabric(ShardFabric):
    """A ShardFabric that dispatches audit tasks instead of campaigns."""

    def __init__(self, compiled, sequence, fault_set, indices, audit_init,
                 strategy="MOT", config=None, sink=None):
        super().__init__(
            compiled,
            sequence,
            # a clone: crash-quarantine bookkeeping and state echo must
            # not touch the real campaign records
            fault_set.clone(),
            strategy=strategy,
            config=config,
            checkpoint_path=None,
        )
        self._audit_indices = list(indices)
        self._audit_init = audit_init
        self._sink = sink

    def _live_indices(self):
        return list(self._audit_indices)

    def _plan(self):
        # no resume absorption and no pack alignment: audit shards are
        # plain index ranges, sized for the pool
        live = self._live_indices()
        size = aligned_shard_size(
            len(live), max(self.config.workers, 1),
            shard_size=self.config.shard_size, align=None,
        )
        self._pending = plan_shards(live, size)
        self.accounting.shards_planned = len(self._pending)

    def _init_payload(self):
        payload = super()._init_payload()
        payload["task"] = "audit"
        payload["audit"] = self._audit_init
        # worker-side tracing is off for audits: the runner emits the
        # canonical audit spans itself, in fault order, identically for
        # serial and sharded runs
        payload["observe"] = False
        return payload

    def _apply_payload(self, shard_id, indices, payload,
                       checkpointed=False):
        fresh = shard_id not in self._results
        super()._apply_payload(shard_id, indices, payload, checkpointed)
        if fresh and self._sink is not None:
            for finding_json in payload.get("findings") or ():
                self._sink(AuditFinding.from_json(finding_json))

    def _run_inline(self):
        from repro.runtime.governor import ResourceGovernor

        while self._pending:
            self._check_stop_conditions()
            if self._draining:
                break
            self._pending.sort(key=lambda s: s.shard_id)
            shard = self._pending.pop(0)
            opts = self._task_opts()
            governor = ResourceGovernor(
                deadline=opts["deadline"],
                node_budget=opts["node_budget"],
                fault_frame_nodes=opts["fault_frame_nodes"],
                fault_frame_events=opts["fault_frame_events"],
                rss_budget=opts["rss_budget"],
                cache_budget=opts["cache_budget"],
            )
            try:
                payload = run_audit_shard(
                    self.compiled, self._faults, self.sequence,
                    shard.indices, self._audit_init, governor=governor,
                )
            except Exception as exc:
                shard.not_before = 0.0  # no backoff sleeps inline
                self._record_crash(shard, f"{type(exc).__name__}: {exc}")
                continue
            self._apply_payload(shard.shard_id, shard.indices, payload)
            self._emit_progress()

    def _merge(self):
        # findings already flowed through the sink per applied payload;
        # nothing campaign-shaped to merge
        return None


def run_audit_fabric(
    compiled,
    sequence,
    fault_set,
    indices,
    options,
    *,
    strategy="MOT",
    complete=True,
    exact=True,
    workers=None,
    config=None,
    sink=None,
):
    """Audit *indices* (detected faults) across the worker fabric.

    Findings are delivered through *sink* as shards complete (the
    runner checkpoints and collects them there).
    """
    if config is None:
        config = FabricConfig(workers=2 if workers is None else workers)
    audit_init = {
        "options": options.to_json(),
        "strategy": strategy,
        "complete": complete,
        "exact": exact,
        "states": [record.state_to_json() for record in fault_set],
    }
    fabric = _AuditFabric(
        compiled,
        sequence,
        fault_set,
        indices,
        audit_init,
        strategy=strategy,
        config=config,
        sink=sink,
    )
    fabric.run()
    return fabric.accounting
