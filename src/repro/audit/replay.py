"""Concrete witness replay through the independent evaluation engine.

The replay side of the audit deliberately shares nothing with the
symbolic fault simulator beyond the compiled netlist: it drives
:func:`repro.symbolic.evaluation.generate_response` — a plain Boolean
frame-by-frame evaluation with single-fault propagation — from the
concrete initial states the witness extraction produced, and compares
the fault-free and faulty output sequences position by position.
"""

from repro.symbolic.evaluation import generate_response

#: Divergence transcripts are capped so a pathological witness cannot
#: bloat findings, checkpoints or traces.
TRANSCRIPT_CAP = 16


def replay_pair(compiled, sequence, p, q, fault):
    """Fault-free response from *p* and faulty response from *q*."""
    good = generate_response(compiled, sequence, p)
    faulty = generate_response(compiled, sequence, q, fault=fault)
    return good, faulty


def response_divergences(good, faulty):
    """Every (frame, PO) where the two responses differ, in order."""
    out = []
    for frame, (good_frame, faulty_frame) in enumerate(
        zip(good, faulty), start=1
    ):
        for pos, (g, f) in enumerate(zip(good_frame, faulty_frame)):
            if g != f:
                out.append(
                    {"frame": frame, "po": pos, "good": g, "faulty": f}
                )
    return out


def is_observed(observed, divergence):
    """Was this divergence on a PO the strategy actually constrained?

    *observed* is the per-frame list from the detection rebuild: the
    entry for a frame is None ("all POs", the MOT view) or a tuple of
    constrained PO positions.  Frames past the end of the list carry no
    constraints at all.
    """
    frame_pos = divergence["frame"] - 1
    if frame_pos >= len(observed):
        return False
    entry = observed[frame_pos]
    if entry is None:
        return True
    return divergence["po"] in entry


def bits_text(state):
    """A state as a compact '0101' string (None passes through)."""
    if state is None:
        return None
    return "".join(str(int(b)) for b in state)
