"""The audit runner: orchestrates witness extraction and replay.

One :func:`run_audit` call checks a finished campaign's verdicts:

* every (or, in ``sample`` mode, a seeded sample of) *detected* fault
  gets its detection function rebuilt exactly and — for the symbolic
  strategies — a witness pair of initial states walked out of the BDD
  and replayed concretely; SOT/3-valued detections claim a *constant*
  output divergence, so any seeded random initial state is a witness;
* a seeded sample of *undetected* faults is cross-checked two ways:
  an independent three-valued simulation (which must not detect them)
  and a survivor certificate — a pair of initial states satisfying the
  full detection function, whose concrete replay must agree on every
  observed output.

Every random draw comes from ``random.Random`` instances seeded with
strings derived from the single audit seed and the fault key
(``"{seed}:witness:{key}"`` / ``"{seed}:sample:detected"`` ...), never
from ``hash()`` — so audits are reproducible bit-for-bit across
processes, resumes and shard layouts.  See also
:class:`repro.runtime.fabric.FabricConfig.seed`, which feeds only the
coordinator's retry-backoff jitter and never influences verdicts.
"""

import json
import os
import random
import warnings

from repro.audit.replay import (
    TRANSCRIPT_CAP,
    bits_text,
    is_observed,
    replay_pair,
    response_divergences,
)
from repro.audit.report import (
    CONFIRMED,
    EXTRACTION_FAILED,
    INCONCLUSIVE_CONSERVATIVE_MISS,
    INCONCLUSIVE_CRASH,
    INCONCLUSIVE_LATE_COLLAPSE,
    AuditFinding,
    AuditReport,
    REFUTED,
)
from repro.audit.witness import rebuild_detection
from repro.bdd.errors import SpaceLimitExceeded
from repro.engines.serial_fault_sim import fault_simulate_3v
from repro.faults.status import (
    BY_MOT,
    BY_RMOT,
    DETECTED,
    FaultSet,
    UNDETECTED,
    fault_key_to_json,
)
from repro.obs.tracer import NULL_TRACER
from repro.runtime.checkpoint import (
    CheckpointWriter,
    circuit_fingerprint,
    read_jsonl_records,
)
from repro.runtime.errors import CheckpointError


class AuditOptions:
    """Knobs of one audit run (shippable to fabric workers as JSON)."""

    MODES = ("sample", "full")

    def __init__(
        self,
        mode="full",
        seed=0,
        node_limit=None,
        sample_detected=32,
        sample_undetected=8,
        checkpoint_path=None,
    ):
        if mode not in self.MODES:
            raise ValueError(
                f"unknown audit mode {mode!r}; choose from {self.MODES}"
            )
        self.mode = mode
        self.seed = seed
        #: node limit for per-fault detection rebuilds (None = unbounded;
        #: blowing it yields witness-extraction-failed, never a verdict)
        self.node_limit = node_limit
        #: detected-side sample size in ``sample`` mode (``full`` audits
        #: every detected fault)
        self.sample_detected = sample_detected
        #: undetected-side sample size (both modes: the undetected
        #: cross-check is always sampled)
        self.sample_undetected = sample_undetected
        self.checkpoint_path = checkpoint_path

    def to_json(self):
        return {
            "mode": self.mode,
            "seed": self.seed,
            "node_limit": self.node_limit,
            "sample_detected": self.sample_detected,
            "sample_undetected": self.sample_undetected,
        }

    @classmethod
    def from_json(cls, data):
        return cls(
            mode=data.get("mode", "full"),
            seed=data.get("seed", 0),
            node_limit=data.get("node_limit"),
            sample_detected=data.get("sample_detected", 32),
            sample_undetected=data.get("sample_undetected", 8),
        )


def _key_text(key):
    return json.dumps(
        fault_key_to_json(key), sort_keys=True, separators=(",", ":")
    )


def _claim_base(record, index, side):
    return {
        "index": index,
        "fault_key": record.fault.key(),
        "side": side,
        "status": record.status,
        "detected_by": record.detected_by,
        "detected_at": record.detected_at,
    }


def audit_detected_record(compiled, sequence, record, index, options):
    """Audit one detected-fault claim; always returns a finding."""
    base = _claim_base(record, index, "detected")
    by = record.detected_by
    if by in (BY_MOT, BY_RMOT):
        return _audit_symbolic_detection(
            compiled, sequence, record, options, base, by
        )
    return _audit_constant_detection(
        compiled, sequence, record, options, base
    )


def _audit_symbolic_detection(compiled, sequence, record, options, base, by):
    try:
        rebuild = rebuild_detection(
            compiled, sequence, record.fault, by, options.node_limit
        )
    except SpaceLimitExceeded as exc:
        return AuditFinding(
            classification=EXTRACTION_FAILED,
            note=f"detection rebuild blew the audit node limit ({exc})",
            **base,
        )
    if rebuild.collapsed_at is None:
        return AuditFinding(
            classification=REFUTED,
            witness_nodes=rebuild.nodes,
            note=(
                f"exact {by} rebuild never collapses — the fault is not "
                f"{by}-detectable by this sequence"
            ),
            **base,
        )
    witness = {"p": bits_text(rebuild.p), "q": bits_text(rebuild.q)}
    if rebuild.collapsed_at > record.detected_at:
        # conservative degradation can only delay detections in the
        # campaign, never in this exact rebuild — so a later collapse
        # here means the recorded frame is early/odd, but the fault IS
        # detectable: report, don't refute
        return AuditFinding(
            classification=INCONCLUSIVE_LATE_COLLAPSE,
            audited_at=rebuild.collapsed_at,
            witness=witness,
            witness_nodes=rebuild.nodes,
            note=(
                f"exact rebuild collapses at t={rebuild.collapsed_at}, "
                f"after the claimed t={record.detected_at}"
            ),
            **base,
        )
    good, faulty = replay_pair(
        compiled, sequence, rebuild.p, rebuild.q, record.fault
    )
    divergences = response_divergences(good, faulty)
    early = [
        d
        for d in divergences
        if d["frame"] < rebuild.collapsed_at and is_observed(
            rebuild.observed, d
        )
    ]
    if early:
        return AuditFinding(
            classification=REFUTED,
            audited_at=early[0]["frame"],
            witness=witness,
            transcript=early[:TRANSCRIPT_CAP],
            witness_nodes=rebuild.nodes,
            note=(
                "witness replay diverges on an observed output before "
                "the collapse frame (symbolic/concrete engine mismatch)"
            ),
            **base,
        )
    at_collapse = [
        d
        for d in divergences
        if d["frame"] == rebuild.collapsed_at and is_observed(
            rebuild.observed, d
        )
    ]
    if not at_collapse:
        return AuditFinding(
            classification=REFUTED,
            witness=witness,
            witness_nodes=rebuild.nodes,
            note=(
                f"witness replay does not diverge at the collapse frame "
                f"t={rebuild.collapsed_at}"
            ),
            **base,
        )
    return AuditFinding(
        classification=CONFIRMED,
        audited_at=rebuild.collapsed_at,
        witness=witness,
        transcript=at_collapse[:TRANSCRIPT_CAP],
        witness_nodes=rebuild.nodes,
        **base,
    )


def _audit_constant_detection(compiled, sequence, record, options, base):
    """SOT / 3-valued detections claim a divergence that holds for
    *every* initial state (both engines start from all-X), so a seeded
    random initial state is a complete witness: the replay must diverge
    at exactly the claimed frame, and its absence soundly refutes."""
    rng = random.Random(
        f"{options.seed}:witness:{_key_text(record.fault.key())}"
    )
    state = [rng.randint(0, 1) for _ in range(compiled.num_dffs)]
    good, faulty = replay_pair(
        compiled, sequence, state, state, record.fault
    )
    divergences = response_divergences(good, faulty)
    witness = {"p": bits_text(state), "q": bits_text(state)}
    at_claim = [
        d for d in divergences if d["frame"] == record.detected_at
    ]
    if not at_claim:
        return AuditFinding(
            classification=REFUTED,
            witness=witness,
            note=(
                f"claimed definite ({record.detected_by}) divergence at "
                f"t={record.detected_at} is absent in a concrete replay"
            ),
            **base,
        )
    return AuditFinding(
        classification=CONFIRMED,
        audited_at=record.detected_at,
        witness=witness,
        transcript=at_claim[:TRANSCRIPT_CAP],
        **base,
    )


def audit_undetected_record(
    compiled, sequence, record, index, options, strategy, complete, exact
):
    """Cross-check one undetected-fault claim.

    A missed detection only *refutes* a completed, exact campaign —
    degraded or interrupted runs may miss detections legitimately
    (conservatively), which classifies as inconclusive instead.
    """
    base = _claim_base(record, index, "undetected")
    hard = complete and exact
    # independent three-valued recheck: 3v detection implies
    # detectability under every strategy, so it must not fire
    clone = FaultSet([record.fault])
    fault_simulate_3v(compiled, sequence, clone)
    recheck = clone.records[0]
    if recheck.status == DETECTED:
        return AuditFinding(
            classification=REFUTED if hard else (
                INCONCLUSIVE_CONSERVATIVE_MISS
            ),
            audited_at=recheck.detected_at,
            note=(
                f"3-valued recheck detects this 'undetected' fault at "
                f"t={recheck.detected_at}"
            ),
            **base,
        )
    if strategy == "3v":
        # a campaign whose top rung is the plain three-valued engine
        # claims nothing beyond what the recheck just reproduced
        return AuditFinding(
            classification=CONFIRMED,
            note="3-valued recheck agrees (campaign top rung is 3v)",
            **base,
        )
    try:
        rebuild = rebuild_detection(
            compiled, sequence, record.fault, strategy, options.node_limit
        )
    except SpaceLimitExceeded as exc:
        return AuditFinding(
            classification=EXTRACTION_FAILED,
            note=f"survivor rebuild blew the audit node limit ({exc})",
            **base,
        )
    if rebuild.collapsed_at is not None:
        return AuditFinding(
            classification=REFUTED if hard else (
                INCONCLUSIVE_CONSERVATIVE_MISS
            ),
            audited_at=rebuild.collapsed_at,
            witness_nodes=rebuild.nodes,
            note=(
                f"exact {strategy} rebuild detects this 'undetected' "
                f"fault at t={rebuild.collapsed_at}"
            ),
            **base,
        )
    if rebuild.p is None:
        # SOT keeps no accumulator: nothing to replay beyond the
        # 3-valued recheck that already passed
        return AuditFinding(
            classification=CONFIRMED,
            witness_nodes=rebuild.nodes,
            note="no SOT detection in exact rebuild; 3-valued recheck "
                 "agrees",
            **base,
        )
    good, faulty = replay_pair(
        compiled, sequence, rebuild.p, rebuild.q, record.fault
    )
    witness = {"p": bits_text(rebuild.p), "q": bits_text(rebuild.q)}
    observed_divergences = [
        d
        for d in response_divergences(good, faulty)
        if is_observed(rebuild.observed, d)
    ]
    if observed_divergences:
        return AuditFinding(
            classification=REFUTED,
            audited_at=observed_divergences[0]["frame"],
            witness=witness,
            transcript=observed_divergences[:TRANSCRIPT_CAP],
            witness_nodes=rebuild.nodes,
            note=(
                "survivor certificate replay diverges on an observed "
                "output (symbolic/concrete engine mismatch)"
            ),
            **base,
        )
    return AuditFinding(
        classification=CONFIRMED,
        witness=witness,
        witness_nodes=rebuild.nodes,
        note="survivor certificate replay agrees on every observed "
             "output",
        **base,
    )


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------

class AuditCheckpointWriter(CheckpointWriter):
    """Appends audit-header / audit-finding records (fsync'd JSONL)."""

    def __init__(self, path, fsync=True):
        super().__init__(path, fsync=fsync, site_prefix="audit.checkpoint")

    def write_audit_header(self, fingerprint, options, strategy,
                           complete, exact):
        self._write(
            {
                "type": "audit-header",
                "fingerprint": fingerprint,
                "mode": options.mode,
                "seed": options.seed,
                "node_limit": options.node_limit,
                "sample_detected": options.sample_detected,
                "sample_undetected": options.sample_undetected,
                "strategy": strategy,
                "complete": complete,
                "exact": exact,
            }
        )

    def write_finding(self, finding):
        self._write(
            {"type": "audit-finding", "finding": finding.to_json()}
        )
        self.checkpoints_written += 1


def _load_audit_resume(path, fingerprint, options, strategy):
    """Completed findings of a partial audit (torn-tail tolerant).

    Returns ``(header_seen, {key_text: AuditFinding})``; refuses files
    whose header disagrees on fingerprint, mode, seed or strategy —
    resuming under different knobs would mix incomparable verdicts.
    """
    header_seen = False
    findings = {}
    if not os.path.exists(path):
        return header_seen, findings

    def quarantine(report):
        # a finding failing its CRC just stops counting as done — the
        # audit re-derives it, which is exact (the header checks below
        # still run strict: resuming under unknown knobs is refused)
        warnings.warn(
            f"audit checkpoint {path}: quarantined corrupt record at "
            f"line {report['line']} ({report['reason']})",
            RuntimeWarning,
            stacklevel=2,
        )

    for record in read_jsonl_records(path, on_corrupt=quarantine):
        kind = record.get("type")
        if kind == "audit-header":
            header_seen = True
            recorded = record.get("fingerprint")
            if recorded is not None and recorded != fingerprint:
                raise CheckpointError(
                    path,
                    f"audit fingerprint mismatch: checkpoint has "
                    f"{recorded}, current circuit/faults hash to "
                    f"{fingerprint}",
                )
            for field, current in (
                ("mode", options.mode),
                ("seed", options.seed),
                ("strategy", strategy),
            ):
                if record.get(field) != current:
                    raise CheckpointError(
                        path,
                        f"audit {field} mismatch: checkpoint has "
                        f"{record.get(field)!r}, run requested "
                        f"{current!r}",
                    )
        elif kind == "audit-finding":
            finding = AuditFinding.from_json(record["finding"])
            findings[_key_text(finding.fault_key)] = finding
    return header_seen, findings


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

def _select(pool, sample_size, rng):
    """Seeded, order-preserving sample of *pool* (indices)."""
    if sample_size is None or len(pool) <= sample_size:
        return list(pool)
    chosen = sorted(rng.sample(range(len(pool)), sample_size))
    return [pool[i] for i in chosen]


def run_audit(
    compiled,
    sequence,
    fault_set,
    *,
    options=None,
    strategy="MOT",
    complete=True,
    exact=True,
    workers=None,
    fabric_config=None,
    tracer=None,
    metrics=None,
    quarantine=False,
):
    """Audit *fault_set*'s verdicts; returns an :class:`AuditReport`.

    *strategy* is the campaign's top (least degraded) strategy: the one
    an undetected fault must genuinely survive.  *complete*/*exact*
    describe the campaign run being audited and gate whether a missed
    detection refutes or is merely inconclusive.  With *quarantine*
    True, refuted faults are quarantined in *fault_set* (reason:
    audit).  *workers*/*fabric_config* shard the detected-side audits
    across the worker fabric; verdicts are byte-identical to a serial
    run.  Progress persists through ``options.checkpoint_path``.
    """
    options = options or AuditOptions()
    tracer = tracer or NULL_TRACER
    sequence = [tuple(v) for v in sequence]
    records = fault_set.records
    keys = [r.fault.key() for r in records]
    fingerprint = circuit_fingerprint(compiled, keys)

    detected_pool = [
        i for i, r in enumerate(records) if r.status == DETECTED
    ]
    undetected_pool = [
        i for i, r in enumerate(records) if r.status == UNDETECTED
    ]
    sample_detected = (
        options.sample_detected if options.mode == "sample" else None
    )
    selected_detected = _select(
        detected_pool,
        sample_detected,
        random.Random(f"{options.seed}:sample:detected"),
    )
    selected_undetected = _select(
        undetected_pool,
        options.sample_undetected,
        random.Random(f"{options.seed}:sample:undetected"),
    )

    findings = {}
    writer = None
    if options.checkpoint_path:
        header_seen, resumed = _load_audit_resume(
            options.checkpoint_path, fingerprint, options, strategy
        )
        for key_text, finding in resumed.items():
            record = records[finding.index]
            # a finding only resumes if the claim it audited is still
            # the recorded claim (the campaign may have been re-run)
            if (
                record.fault.key() == finding.fault_key
                and record.status == finding.status
                and record.detected_by == finding.detected_by
                and record.detected_at == finding.detected_at
            ):
                findings[key_text] = finding
        writer = AuditCheckpointWriter(options.checkpoint_path)
        if not header_seen:
            writer.write_audit_header(
                fingerprint, options, strategy, complete, exact
            )

    root = tracer.span(
        "audit", mode=options.mode, seed=options.seed, strategy=strategy
    )
    try:
        def sink(finding):
            findings[_key_text(finding.fault_key)] = finding
            if writer is not None:
                writer.write_finding(finding)

        pending = [
            i
            for i in selected_detected
            if _key_text(keys[i]) not in findings
        ]
        if pending and (
            workers is not None or fabric_config is not None
        ):
            from repro.audit.fabric import run_audit_fabric

            run_audit_fabric(
                compiled,
                sequence,
                fault_set,
                pending,
                options,
                strategy=strategy,
                complete=complete,
                exact=exact,
                workers=workers,
                config=fabric_config,
                sink=sink,
            )
        else:
            for i in pending:
                sink(
                    audit_detected_record(
                        compiled, sequence, records[i], i, options
                    )
                )
        for i in selected_detected:
            key_text = _key_text(keys[i])
            if key_text not in findings:
                # a poison audit shard died through every retry; not
                # checkpointed, so a resumed audit tries again
                findings[key_text] = AuditFinding(
                    classification=INCONCLUSIVE_CRASH,
                    note="audit shard crashed repeatedly; fault not "
                         "audited",
                    **_claim_base(records[i], i, "detected"),
                )
        # the undetected cross-check always runs in-process: it is
        # sampled and cheap, and keeping it out of the shard fabric
        # guarantees serial and sharded reports match byte-for-byte
        for i in selected_undetected:
            if _key_text(keys[i]) in findings:
                continue
            sink(
                audit_undetected_record(
                    compiled,
                    sequence,
                    records[i],
                    i,
                    options,
                    strategy,
                    complete,
                    exact,
                )
            )

        report = AuditReport(
            options.mode,
            options.seed,
            [
                findings[_key_text(keys[i])]
                for i in selected_detected + selected_undetected
            ],
            detected_total=len(detected_pool),
            undetected_total=len(undetected_pool),
        )

        if quarantine:
            for finding in report.refuted():
                records[finding.index].mark_quarantined()
                tracer.event(
                    "audit-refuted",
                    fault=_key_text(finding.fault_key),
                    note=finding.note,
                )

        summary = report.summary()
        if tracer.enabled:
            for finding in report.findings:
                tracer.span(
                    "audit-fault",
                    fault=_key_text(finding.fault_key),
                    side=finding.side,
                    classification=finding.classification,
                    by=finding.detected_by,
                    claimed_at=finding.detected_at,
                    audited_at=finding.audited_at,
                    witness_nodes=finding.witness_nodes,
                ).close()
            tracer.event("audit-summary", **summary)
        if metrics is not None:
            metrics.set_total("audit.confirmed", summary["confirmed"])
            metrics.set_total("audit.refuted", summary["refuted"])
            metrics.set_total(
                "audit.inconclusive", summary["inconclusive"]
            )
            metrics.set_total(
                "audit.extraction_failed", summary["extraction_failed"]
            )
            for finding in report.findings:
                if finding.witness_nodes:
                    metrics.observe(
                        "audit.witness_nodes", finding.witness_nodes
                    )
        return report
    finally:
        root.close()
        if writer is not None:
            writer.close()
