"""Structured audit verdicts: per-fault findings and the report.

The audit never raises on a discrepancy — every audited fault produces
exactly one :class:`AuditFinding` whose ``classification`` says what
the replay proved:

``confirmed``
    The campaign's claim survived an independent check (witness replay
    diverged where claimed, or a survivor certificate replayed clean).
``refuted``
    The claim is demonstrably wrong: an exact detection-function
    rebuild contradicts the recorded verdict, or the concrete replay of
    an extracted witness disagrees with the symbolic engine.  Refuted
    faults are the audit's hard failures; the campaign exit code
    reflects them.
``witness-extraction-failed``
    The per-fault symbolic rebuild blew the audit node limit before a
    witness could be walked out of the detection BDD.  Says nothing
    about the claim either way.
``inconclusive-*``
    The check could not be completed soundly (``-late-collapse``,
    ``-budget``, ``-crash``) or the discrepancy has an innocent
    conservative explanation (``-conservative-miss``: a degraded /
    interrupted campaign may legitimately miss detections, so a missed
    detection only *refutes* an exact, completed run).
"""

from repro.faults.status import fault_key_from_json, fault_key_to_json

CONFIRMED = "confirmed"
REFUTED = "refuted"
EXTRACTION_FAILED = "witness-extraction-failed"
INCONCLUSIVE_LATE_COLLAPSE = "inconclusive-late-collapse"
INCONCLUSIVE_BUDGET = "inconclusive-budget"
INCONCLUSIVE_CRASH = "inconclusive-crash"
INCONCLUSIVE_CONSERVATIVE_MISS = "inconclusive-conservative-miss"

CLASSIFICATIONS = (
    CONFIRMED,
    REFUTED,
    EXTRACTION_FAILED,
    INCONCLUSIVE_LATE_COLLAPSE,
    INCONCLUSIVE_BUDGET,
    INCONCLUSIVE_CRASH,
    INCONCLUSIVE_CONSERVATIVE_MISS,
)


def is_inconclusive(classification):
    return classification.startswith("inconclusive-")


class AuditFinding:
    """The audit's verdict on one fault."""

    __slots__ = (
        "index",
        "fault_key",
        "side",
        "status",
        "detected_by",
        "detected_at",
        "classification",
        "audited_at",
        "witness",
        "transcript",
        "witness_nodes",
        "note",
    )

    def __init__(
        self,
        index,
        fault_key,
        side,
        status,
        detected_by,
        detected_at,
        classification,
        audited_at=None,
        witness=None,
        transcript=None,
        witness_nodes=0,
        note="",
    ):
        if classification not in CLASSIFICATIONS:
            raise ValueError(f"unknown classification {classification!r}")
        #: position in the campaign's fault universe (report order)
        self.index = index
        self.fault_key = fault_key
        #: which claim was checked: "detected" or "undetected"
        self.side = side
        self.status = status
        self.detected_by = detected_by
        self.detected_at = detected_at
        self.classification = classification
        #: frame where the audit itself observed the divergence
        self.audited_at = audited_at
        #: {"p": "01...", "q": "01..."} initial states, or None
        self.witness = witness
        #: capped list of {"frame", "po", "good", "faulty"} divergences
        self.transcript = transcript or []
        self.witness_nodes = witness_nodes
        self.note = note

    def to_json(self):
        return {
            "index": self.index,
            "fault": fault_key_to_json(self.fault_key),
            "side": self.side,
            "status": self.status,
            "detected_by": self.detected_by,
            "detected_at": self.detected_at,
            "classification": self.classification,
            "audited_at": self.audited_at,
            "witness": self.witness,
            "transcript": self.transcript,
            "witness_nodes": self.witness_nodes,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data):
        return cls(
            index=data["index"],
            fault_key=fault_key_from_json(data["fault"]),
            side=data["side"],
            status=data["status"],
            detected_by=data["detected_by"],
            detected_at=data["detected_at"],
            classification=data["classification"],
            audited_at=data.get("audited_at"),
            witness=data.get("witness"),
            transcript=data.get("transcript") or [],
            witness_nodes=data.get("witness_nodes", 0),
            note=data.get("note", ""),
        )

    def __repr__(self):
        return (
            f"AuditFinding({self.fault_key!r}: {self.classification}"
            f"{' at t=' + str(self.audited_at) if self.audited_at else ''})"
        )


class AuditReport:
    """Every finding of one audit run, plus headline accounting.

    Findings are kept in fault-universe order, carry no wall-clock
    data, and serialize with sorted keys — a sharded audit therefore
    produces a byte-identical report to the serial one.
    """

    def __init__(
        self,
        mode,
        seed,
        findings,
        detected_total=0,
        undetected_total=0,
    ):
        self.mode = mode
        self.seed = seed
        self.findings = sorted(findings, key=lambda f: f.index)
        self.detected_total = detected_total
        self.undetected_total = undetected_total

    def counts(self):
        out = {name: 0 for name in CLASSIFICATIONS}
        for finding in self.findings:
            out[finding.classification] += 1
        return out

    def refuted(self):
        return [f for f in self.findings if f.classification == REFUTED]

    def refuted_keys(self):
        return [f.fault_key for f in self.refuted()]

    @property
    def ok(self):
        """True when no claim was refuted (inconclusives are tolerated)."""
        return not self.refuted()

    def _side_count(self, side):
        return sum(1 for f in self.findings if f.side == side)

    def summary(self):
        counts = self.counts()
        detected_audited = self._side_count("detected")
        undetected_checked = self._side_count("undetected")
        sampled_fraction = (
            detected_audited / self.detected_total
            if self.detected_total
            else 1.0
        )
        return {
            "mode": self.mode,
            "seed": self.seed,
            "detected_total": self.detected_total,
            "detected_audited": detected_audited,
            "undetected_total": self.undetected_total,
            "undetected_checked": undetected_checked,
            "sampled_fraction": round(sampled_fraction, 4),
            "confirmed": counts[CONFIRMED],
            "refuted": counts[REFUTED],
            "extraction_failed": counts[EXTRACTION_FAILED],
            "inconclusive": sum(
                counts[name]
                for name in CLASSIFICATIONS
                if is_inconclusive(name)
            ),
            "ok": self.ok,
            "refuted_faults": [str(key) for key in self.refuted_keys()],
        }

    def to_json(self):
        return {
            "summary": self.summary(),
            "findings": [f.to_json() for f in self.findings],
        }

    def render(self):
        """Human-readable report, one headline plus refuted details."""
        s = self.summary()
        lines = [
            (
                f"audit ({s['mode']}, seed {s['seed']}): "
                f"{s['confirmed']} confirmed, {s['refuted']} refuted, "
                f"{s['inconclusive']} inconclusive, "
                f"{s['extraction_failed']} extraction-failed"
            ),
            (
                f"  detected: {s['detected_audited']}/{s['detected_total']}"
                f" audited ({s['sampled_fraction'] * 100:.1f}%); "
                f"undetected: {s['undetected_checked']}/"
                f"{s['undetected_total']} cross-checked"
            ),
        ]
        for finding in self.refuted():
            lines.append(
                f"  REFUTED {finding.fault_key}: {finding.note}"
            )
        lines.append("audit: OK" if self.ok else "audit: FAILED")
        return "\n".join(lines)
