"""Witness extraction: exact per-fault rebuild of the detection BDD.

The campaign's symbolic sessions are long gone by the time the audit
runs (and a sharded campaign never had them in one process), so the
audit re-derives each fault's detection function from scratch: one
clean symbolic simulation of the fault-free and faulty machines from an
all-X initial state, feeding the *same* strategy observation code the
campaign used (:mod:`repro.symbolic.strategies`), with no degradation
ladder, no fallback frames and no demotions.  The rebuild is exact by
construction, which is what makes its witnesses trustworthy:

* if the accumulator collapses at frame ``T_a``, any satisfying
  assignment of the accumulator *before* that frame's terms is a pair
  of initial states ``(p, q)`` whose responses agree on every observed
  output up to ``T_a - 1`` and must diverge on some observed output at
  ``T_a`` — a concrete, replayable certificate of detection;
* if it never collapses, any satisfying assignment of the final
  accumulator is a *survivor* certificate: a pair of initial states the
  strategy can never tell apart, which a concrete replay must confirm.

Because the campaign only ever degrades conservatively, an exact
rebuild can collapse *earlier* than the campaign claimed but never
later; a later collapse is reported (inconclusive), an absent collapse
refutes the detection claim outright.
"""

from repro.bdd import BddManager, StateVariables
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.symbolic.strategies import FrameContext, get_strategy


class DetectionRebuild:
    """Outcome of one exact detection-function rebuild."""

    __slots__ = (
        "strategy_name",
        "collapsed_at",
        "p",
        "q",
        "observed",
        "nodes",
    )

    def __init__(self, strategy_name, collapsed_at, p, q, observed, nodes):
        self.strategy_name = strategy_name
        #: 1-based frame where the accumulator hit FALSE, or None
        self.collapsed_at = collapsed_at
        #: fault-free / faulty initial states (lists of bits), or None
        #: for strategies without an accumulator (SOT)
        self.p = p
        self.q = q
        #: per-frame observed PO positions: None means "all POs" (MOT),
        #: otherwise a sorted tuple of positions the strategy actually
        #: constrained that frame (rMOT/SOT observe only constant
        #: fault-free outputs the fault reached)
        self.observed = observed
        #: peak BDD nodes of the rebuild manager (audit.witness_nodes)
        self.nodes = nodes


def _observed_positions(strategy, manager, good_po, po_diff):
    if strategy.needs_y_variables:
        return None  # MOT constrains every PO of every frame
    return tuple(
        pos
        for pos in sorted(po_diff)
        if manager.is_const(good_po[pos])
    )


def _pick_states(manager, state_vars, strategy, acc, num_dffs):
    """Walk one satisfying assignment of *acc* into (p, q) states."""
    if acc is None:  # SOT keeps no accumulator
        return None, None
    if strategy.needs_y_variables:
        variables = list(state_vars.x_vars()) + list(state_vars.y_vars())
        assignment = manager.pick_assignment(acc, variables=variables)
        if assignment is None:
            return None, None
        p = [assignment[state_vars.x(i)] for i in range(num_dffs)]
        q = [assignment[state_vars.y(i)] for i in range(num_dffs)]
        return p, q
    assignment = manager.pick_assignment(
        acc, variables=list(state_vars.x_vars())
    )
    if assignment is None:
        return None, None
    p = [assignment[state_vars.x(i)] for i in range(num_dffs)]
    return p, list(p)


def rebuild_detection(
    compiled, sequence, fault, strategy_name, node_limit=None
):
    """Exact symbolic rebuild of *fault*'s detection function.

    Raises :class:`repro.bdd.errors.SpaceLimitExceeded` when
    *node_limit* (None = unbounded) is blown — the caller classifies
    that as a witness-extraction failure, never as a verdict.
    """
    strategy = get_strategy(strategy_name)
    num_dffs = compiled.num_dffs
    state_vars = StateVariables(num_dffs)
    manager = BddManager(
        num_vars=state_vars.num_vars, node_limit=node_limit
    )
    algebra = BddAlgebra(manager)
    state = [manager.mk_var(state_vars.x(i)) for i in range(num_dffs)]
    acc = strategy.initial_state(manager)
    diff = {}
    observed = []
    collapsed_at = None
    # the accumulator to extract the witness from: at a collapse, the
    # value *before* the collapsing frame's terms (still satisfiable);
    # with no collapse, the final accumulator (the survivors)
    witness_acc = acc
    for time, vector in enumerate(sequence, start=1):
        pi_values = [algebra.const(b) for b in vector]
        values = simulate_frame(compiled, algebra, pi_values, state)
        result = propagate_fault(compiled, algebra, values, fault, diff)
        good_po = outputs_of(compiled, values)
        po_diff = {
            pos: result.diff[sig]
            for pos, sig in enumerate(compiled.pos)
            if sig in result.diff
        }
        ctx = FrameContext(manager, state_vars, good_po)
        observed.append(
            _observed_positions(strategy, manager, good_po, po_diff)
        )
        witness_acc = acc
        detected, acc = strategy.observe(ctx, acc, po_diff)
        if detected:
            collapsed_at = time
            break
        witness_acc = acc
        diff = result.next_state_diff
        state = next_state_of(compiled, values)
    p, q = _pick_states(manager, state_vars, strategy, witness_acc, num_dffs)
    return DetectionRebuild(
        strategy_name, collapsed_at, p, q, observed, manager.peak_nodes
    )
