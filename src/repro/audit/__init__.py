"""Witness-replay audit: independent verification of campaign verdicts.

The audit closes the loop the paper's symbolic engine leaves open: the
campaign *claims* a fault is detected (or not), and the audit checks
that claim end to end with machinery the symbolic simulator does not
share — a concrete witness extracted from an exact detection-function
rebuild, replayed through the plain Boolean evaluation engine.  See
``docs/audit.md`` for the witness semantics per strategy and the
soundness argument behind each classification.
"""

from repro.audit.report import (
    CLASSIFICATIONS,
    CONFIRMED,
    EXTRACTION_FAILED,
    INCONCLUSIVE_BUDGET,
    INCONCLUSIVE_CONSERVATIVE_MISS,
    INCONCLUSIVE_CRASH,
    INCONCLUSIVE_LATE_COLLAPSE,
    REFUTED,
    AuditFinding,
    AuditReport,
    is_inconclusive,
)
from repro.audit.runner import AuditOptions, run_audit

__all__ = [
    "AuditFinding",
    "AuditOptions",
    "AuditReport",
    "run_audit",
    "CLASSIFICATIONS",
    "CONFIRMED",
    "REFUTED",
    "EXTRACTION_FAILED",
    "INCONCLUSIVE_LATE_COLLAPSE",
    "INCONCLUSIVE_BUDGET",
    "INCONCLUSIVE_CRASH",
    "INCONCLUSIVE_CONSERVATIVE_MISS",
    "is_inconclusive",
]
