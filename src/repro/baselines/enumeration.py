"""Explicit-enumeration fault simulation — baseline and oracle.

Pomeranz and Reddy's MOT fault simulator [13] enumerates initial states
explicitly (the paper notes they restrict themselves to at most 6
memory elements, i.e. 64 states).  This module reimplements that
approach exactly — two-valued simulation from *every* initial state of
the fault-free and the faulty machine — which makes it:

* the baseline the symbolic approach is measured against, and
* a ground-truth oracle: on small circuits the symbolic SOT/rMOT/MOT
  verdicts must coincide with these definitions (tested extensively).

Everything here is exponential in the number of flip-flops by design;
:data:`MAX_DFFS` guards against accidental blow-ups.
"""

from itertools import product

from repro.circuit import gates as gatelib
from repro.engines.algebra import BOOL
from repro.engines.evaluate import eval_gate, next_state_of, outputs_of
from repro.faults.model import BRANCH, DBRANCH, STEM

MAX_DFFS = 14


def _check_size(compiled):
    if compiled.num_dffs > MAX_DFFS:
        raise ValueError(
            f"explicit enumeration over {compiled.num_dffs} flip-flops "
            f"(> {MAX_DFFS}) refused; use the symbolic simulator"
        )


def _faulty_frame(compiled, vector, state, fault):
    """Full two-valued evaluation of one frame with the fault injected."""
    values = [None] * compiled.num_signals
    stem_force = None
    branch_gate = branch_pin = None
    if fault is not None:
        kind = fault.lead[0]
        if kind == STEM:
            stem_force = (fault.lead[1], fault.value)
        elif kind == BRANCH:
            branch_gate, branch_pin = fault.lead[1], fault.lead[2]

    for sig, bit in zip(compiled.pis, vector):
        values[sig] = 1 if bit else 0
    for sig, bit in zip(compiled.ppis, state):
        values[sig] = 1 if bit else 0
    if stem_force is not None and (
        stem_force[0] in compiled.pis or stem_force[0] in compiled.ppis
    ):
        values[stem_force[0]] = stem_force[1]

    for cg in compiled.gates:
        if stem_force is not None and cg.out == stem_force[0]:
            values[cg.out] = stem_force[1]
            continue
        operands = [values[src] for src in cg.fanins]
        if cg.pos == branch_gate:
            operands[branch_pin] = fault.value
        values[cg.out] = eval_gate(BOOL, cg.kind, operands)
    return values


def simulate_concrete(compiled, sequence, initial_state, fault=None):
    """Two-valued output sequence from a concrete initial state.

    With *fault* given, the faulty machine is simulated (full
    re-evaluation with the fault injected — deliberately an independent
    implementation from the event-driven engine).
    """
    state = [1 if b else 0 for b in initial_state]
    response = []
    for vector in sequence:
        values = _faulty_frame(compiled, vector, state, fault)
        response.append(tuple(outputs_of(compiled, values)))
        state = next_state_of(compiled, values)
        if fault is not None and fault.lead[0] == DBRANCH:
            state[fault.lead[1]] = fault.value
    return tuple(response)


def all_states(num_dffs):
    """All 2^m initial states as tuples."""
    return list(product((0, 1), repeat=num_dffs))


def response_set(compiled, sequence, fault=None):
    """The set of output sequences over all initial states."""
    _check_size(compiled)
    return {
        simulate_concrete(compiled, sequence, state, fault)
        for state in all_states(compiled.num_dffs)
    }


def mot_detectable(compiled, sequence, fault):
    """Definition 3: every (p, q) pair yields different output sequences.

    Equivalent to the fault-free and faulty response sets being
    disjoint — the Pomeranz-Reddy formulation.
    """
    good = response_set(compiled, sequence, fault=None)
    faulty = response_set(compiled, sequence, fault=fault)
    return good.isdisjoint(faulty)


def well_defined_positions(compiled, sequence):
    """Positions (t, i) where the fault-free output is the same Boolean
    value for every initial state, with that value.

    These are the positions the rMOT strategy may observe.
    """
    _check_size(compiled)
    responses = [
        simulate_concrete(compiled, sequence, state)
        for state in all_states(compiled.num_dffs)
    ]
    positions = {}
    n = len(sequence)
    l = compiled.num_pos
    for t in range(n):
        for i in range(l):
            values = {resp[t][i] for resp in responses}
            if len(values) == 1:
                positions[(t, i)] = values.pop()
    return positions


def sot_detectable(compiled, sequence, fault):
    """Definition 2: some (t, i) where the fault-free output is a fixed
    b for all p and the faulty output is ~b for all q."""
    _check_size(compiled)
    good = well_defined_positions(compiled, sequence)
    if not good:
        return False
    faulty_responses = [
        simulate_concrete(compiled, sequence, state, fault)
        for state in all_states(compiled.num_dffs)
    ]
    for (t, i), b in good.items():
        if all(resp[t][i] == 1 - b for resp in faulty_responses):
            return True
    return False


def rmot_detectable(compiled, sequence, fault):
    """rMOT: every faulty initial state q disagrees with the fault-free
    machine on at least one well-defined output position."""
    _check_size(compiled)
    good = well_defined_positions(compiled, sequence)
    if not good:
        return False
    for state in all_states(compiled.num_dffs):
        resp = simulate_concrete(compiled, sequence, state, fault)
        if all(resp[t][i] == b for (t, i), b in good.items()):
            return False  # this q mimics the fault-free machine
    return True
