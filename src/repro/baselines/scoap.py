"""Sequential SCOAP testability analysis (Goldstein [6]).

The paper cites SCOAP as the prior art for identifying faults that no
test sequence can detect under the three-valued logic: a fault whose
activation value is uncontrollable (infinite controllability) or whose
site is unobservable (infinite observability) is X-redundant for every
sequence.  ``ID_X-red`` is strictly more powerful because it exploits
the *given* sequence; the ablation benchmark quantifies the gap.

Controllabilities here count combinational depth (+1 per gate) and +1
per flip-flop crossing; ``math.inf`` marks "cannot be set at all",
which is the only property the X-redundancy check uses — the finite
magnitudes are the usual SCOAP heuristics.
"""

import math

from repro.circuit import gates as gatelib
from repro.faults.model import BRANCH, DBRANCH, STEM

INF = math.inf


def _gate_controllability(kind, cc_pairs):
    """(CC0, CC1) of a gate output from its inputs' (CC0, CC1) pairs."""
    base, inverted = gatelib.base_op(kind)
    if base == "CONST":
        cc0, cc1 = (INF, 1) if inverted else (1, INF)
        return cc0, cc1
    if base == "ID":
        cc0, cc1 = cc_pairs[0]
        result = (cc0 + 1, cc1 + 1)
    elif base == "AND":
        cc0 = min(p[0] for p in cc_pairs) + 1
        cc1 = sum(p[1] for p in cc_pairs) + 1
        result = (cc0, cc1)
    elif base == "OR":
        cc0 = sum(p[0] for p in cc_pairs) + 1
        cc1 = min(p[1] for p in cc_pairs) + 1
        result = (cc0, cc1)
    else:  # XOR: parity over all inputs; cheapest consistent assignment
        even = 0
        odd = INF
        for cc0, cc1 in cc_pairs:
            new_even = min(even + cc0, odd + cc1)
            new_odd = min(even + cc1, odd + cc0)
            even, odd = new_even, new_odd
        result = (even + 1, odd + 1)
    if inverted:
        result = (result[1], result[0])
    return result


def _improve_pair(table, sig, new):
    """Componentwise minimum update; True when something improved."""
    old = table[sig]
    merged = (min(old[0], new[0]), min(old[1], new[1]))
    if merged != old:
        table[sig] = merged
        return True
    return False


def controllabilities(compiled):
    """Per-signal (CC0, CC1), iterated to a fixpoint across flip-flops."""
    cc = [(INF, INF)] * compiled.num_signals
    for sig in compiled.pis:
        cc[sig] = (1, 1)
    changed = True
    while changed:
        changed = False
        for dff_idx, d_sig in enumerate(compiled.dff_d):
            q_sig = compiled.ppis[dff_idx]
            new = (cc[d_sig][0] + 1, cc[d_sig][1] + 1)
            if _improve_pair(cc, q_sig, new):
                changed = True
        for cg in compiled.gates:
            pairs = [cc[src] for src in cg.fanins]
            new = _gate_controllability(cg.kind, pairs)
            if _improve_pair(cc, cg.out, new):
                changed = True
    return cc


def observabilities(compiled, cc=None):
    """Per-signal observability CO (and per-branch, see return value).

    Returns ``(co_stem, co_pin)`` where *co_pin* maps ``(gate_pos,
    pin)`` to the observability of that gate input.
    """
    if cc is None:
        cc = controllabilities(compiled)
    co = [INF] * compiled.num_signals
    co_pin = {}
    for sig in compiled.pos:
        co[sig] = 0

    def pin_observability(cg, pin):
        base, _inverted = gatelib.base_op(cg.kind)
        out_co = co[cg.out]
        if out_co == INF:
            return INF
        cost = out_co + 1
        for other, src in enumerate(cg.fanins):
            if other == pin:
                continue
            cc0, cc1 = cc[src]
            if base == "AND":
                cost += cc1
            elif base == "OR":
                cost += cc0
            elif base == "XOR":
                cost += min(cc0, cc1)
            # ID gates have no side inputs
        return cost

    changed = True
    while changed:
        changed = False
        for dff_idx, d_sig in enumerate(compiled.dff_d):
            q_sig = compiled.ppis[dff_idx]
            if co[q_sig] != INF:
                new = co[q_sig] + 1
                if new < co[d_sig]:
                    co[d_sig] = new
                    changed = True
        for cg in reversed(compiled.gates):
            for pin, src in enumerate(cg.fanins):
                new = pin_observability(cg, pin)
                old = co_pin.get((cg.pos, pin), INF)
                if new < old:
                    co_pin[(cg.pos, pin)] = new
                if new < co[src]:
                    co[src] = new
                    changed = True
    return co, co_pin


def scoap_x_redundant(compiled, faults):
    """Faults provably undetectable by *any* sequence (SCOAP view).

    A stuck-at-v fault needs the complementary value ~v... precisely:
    stuck-at-0 needs the line at 1 (activation) and an observable site;
    infinite CC1 or CO means no three-valued test sequence exists.
    Returns the set of fault keys.
    """
    cc = controllabilities(compiled)
    co, co_pin = observabilities(compiled, cc)
    redundant = set()
    for fault in faults:
        kind = fault.lead[0]
        if kind == STEM:
            sig = fault.lead[1]
            site_cc = cc[sig]
            site_co = co[sig]
        elif kind == BRANCH:
            gate_pos, pin = fault.lead[1], fault.lead[2]
            sig = compiled.gates[gate_pos].fanins[pin]
            site_cc = cc[sig]
            site_co = co_pin.get((gate_pos, pin), INF)
        else:  # DBRANCH
            dff_idx = fault.lead[1]
            sig = compiled.dff_d[dff_idx]
            site_cc = cc[sig]
            q_sig = compiled.ppis[dff_idx]
            site_co = co[q_sig] + 1 if co[q_sig] != INF else INF
        activation = site_cc[1] if fault.value == 0 else site_cc[0]
        if activation == INF or site_co == INF:
            redundant.add(fault.key())
    return redundant
