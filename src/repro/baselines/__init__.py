"""Baselines and oracles: explicit-enumeration MOT/rMOT/SOT fault
simulation (Pomeranz-Reddy style [13]) and SCOAP testability [6]."""

from repro.baselines.enumeration import (
    MAX_DFFS,
    all_states,
    mot_detectable,
    response_set,
    rmot_detectable,
    simulate_concrete,
    sot_detectable,
    well_defined_positions,
)
from repro.baselines.scoap import (
    controllabilities,
    observabilities,
    scoap_x_redundant,
)

__all__ = [
    "MAX_DFFS",
    "all_states",
    "simulate_concrete",
    "response_set",
    "mot_detectable",
    "rmot_detectable",
    "sot_detectable",
    "well_defined_positions",
    "controllabilities",
    "observabilities",
    "scoap_x_redundant",
]
