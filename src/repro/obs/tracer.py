"""Nestable tracing spans and point events over a JSONL sink.

Design constraints, in order:

1. **The disabled path costs ~nothing.**  Every instrumented call site
   either checks ``tracer.enabled`` (a plain attribute) or calls into
   :data:`NULL_TRACER`, whose methods are empty.  Hot per-node loops
   are never traced — only per-call, per-frame and per-event sites.
2. **Canonical traces are byte-reproducible.**  A tracer constructed
   with ``wall=False`` omits wall-clock fields (``ts``/``dur``)
   entirely; record ordering is the deterministic ``seq`` counter and
   every record is serialized with sorted keys.  This is the mode the
   shard fabric uses so two runs with the same seeds produce
   byte-identical merged traces.
3. **Fork safety.**  :class:`JsonlSink` remembers the opening pid and
   transparently reopens the file (append mode) if it finds itself in
   a forked child, so a tracer captured by a ``fork``-start worker
   cannot interleave garbage into the parent's file.

Record shapes are documented in :mod:`repro.obs.schema` and
``docs/observability.md``.
"""

import json
import os
import time


def _jsonable(value):
    """Coerce a field value to something JSON-serializable, stably."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def encode_record(record):
    """The one true serialization: sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JsonlSink:
    """Append-mode JSONL writer, flushed per record, fork-safe."""

    def __init__(self, path):
        self.path = str(path)
        self._pid = os.getpid()
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record):
        if os.getpid() != self._pid:  # forked child inherited the sink
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = open(self.path, "a", encoding="utf-8")
            self._pid = os.getpid()
        self._handle.write(encode_record(record) + "\n")
        self._handle.flush()

    def close(self):
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close race on teardown
            pass


class ListSink:
    """In-memory sink with an optional record cap.

    Fabric workers trace into one of these and ship the records back in
    the shard result payload; the cap bounds payload size for
    pathological shards.  Dropped records are *counted* — a truncated
    trace announces itself instead of silently looking complete.
    """

    def __init__(self, cap=None):
        self.records = []
        self.cap = cap
        self.dropped = 0

    def write(self, record):
        if self.cap is not None and len(self.records) >= self.cap:
            self.dropped += 1
            return
        self.records.append(record)

    def close(self):
        pass


class _Span:
    """A live span; closing writes one record to the sink."""

    __slots__ = ("_tracer", "_record", "_start", "closed")

    def __init__(self, tracer, record, start):
        self._tracer = tracer
        self._record = record
        self._start = start
        self.closed = False

    def add(self, **fields):
        """Attach fields to the span before it closes."""
        for key, value in fields.items():
            self._record[key] = _jsonable(value)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close(error=exc_type.__name__ if exc_type else None)
        return False

    def close(self, error=None):
        if self.closed:
            return
        self.closed = True
        if error:
            self._record["error"] = error
        self._tracer._close_span(self, self._record, self._start)


class _NullSpan:
    """The span returned by :class:`NullTracer`: every method a no-op."""

    __slots__ = ()
    closed = True

    def add(self, **fields):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def close(self, error=None):
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing.

    Instrumented code holds a reference to *some* tracer
    unconditionally; when tracing is off it is this one.  ``enabled``
    is False so call sites that would pay to *compute* a field (e.g. a
    BDD size) can skip the work entirely.
    """

    enabled = False
    wall = False

    def write_header(self, source, **fields):
        pass

    def span(self, name, **fields):
        return _NULL_SPAN

    def event(self, name, **fields):
        pass

    def metrics(self, name, values):
        pass

    def summary(self, payload):
        pass

    def replay(self, records, **extra):
        pass

    def close(self):
        pass


#: Shared no-op tracer: the default value of every ``tracer`` argument.
NULL_TRACER = NullTracer()


class Tracer:
    """Writes nestable spans and point events to a sink.

    Spans are cheap bookkeeping while open and produce exactly one
    record when they close (so a crash loses only open spans, never
    corrupts closed ones).  Each record carries a monotonically
    increasing ``seq`` and the ``seq`` of its enclosing span as
    ``parent``; with ``wall=True`` (the default) records also carry
    ``ts`` (seconds since the tracer was created, monotonic clock) and
    spans a ``dur``.  ``wall=False`` is canonical mode: no clock fields
    at all, for byte-reproducible traces.
    """

    enabled = True

    def __init__(self, sink, wall=True):
        self.sink = sink
        self.wall = wall
        self._seq = -1
        self._stack = []
        self._t0 = time.monotonic()

    # -- internals ----------------------------------------------------

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def _now(self):
        return round(time.monotonic() - self._t0, 6)

    def _write(self, record):
        self.sink.write(record)

    def _close_span(self, span, record, start):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # out-of-order close: drop it from wherever it sits
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        if self.wall:
            record["ts"] = start
            record["dur"] = round(self._now() - start, 6)
        self._write(record)

    def _parent_seq(self):
        return self._stack[-1]._record["seq"] if self._stack else None

    # -- public API ---------------------------------------------------

    def write_header(self, source, **fields):
        """Write the one trace-header record (call once, first)."""
        record = {
            "v": 1,
            "kind": "trace-header",
            "source": source,
            "seq": self._next_seq(),
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self._write(record)

    def span(self, name, **fields):
        """Open a nestable span; use as a context manager."""
        record = {"kind": "span", "name": name,
                  "seq": self._next_seq(), "parent": self._parent_seq()}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        span = _Span(self, record, self._now() if self.wall else None)
        self._stack.append(span)
        return span

    def event(self, name, **fields):
        """Write a point event under the current span."""
        record = {"kind": "event", "name": name,
                  "seq": self._next_seq(), "parent": self._parent_seq()}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        if self.wall:
            record["ts"] = self._now()
        self._write(record)

    def metrics(self, name, values):
        """Write a metrics sample (a flat name→number mapping)."""
        record = {"kind": "metrics", "name": name,
                  "seq": self._next_seq(), "parent": self._parent_seq(),
                  "values": _jsonable(values)}
        if self.wall:
            record["ts"] = self._now()
        self._write(record)

    def summary(self, payload):
        """Write the final summary record (campaign accounting)."""
        record = {"kind": "summary", "seq": self._next_seq(),
                  "parent": self._parent_seq()}
        for key, value in payload.items():
            record[key] = _jsonable(value)
        self._write(record)

    def replay(self, records, **extra):
        """Re-emit canonical records from a child tracer.

        Used by the fabric coordinator to splice each worker's shard
        trace into the merged file: ``seq``/``parent`` are renumbered
        into this tracer's sequence space, records whose parent was the
        child's root are re-parented under the current span, and
        *extra* fields (shard id, worker attribution) are stamped onto
        every record.  Replaying is deterministic: output depends only
        on the input records and the current ``seq``.
        """
        parent = self._parent_seq()
        base = self._seq + 1
        top = -1
        for record in records:
            out = dict(record)
            seq = out.get("seq")
            if seq is not None:
                top = max(top, seq)
                out["seq"] = base + seq
            child_parent = out.get("parent")
            out["parent"] = (
                base + child_parent if child_parent is not None else parent
            )
            for key, value in extra.items():
                out[key] = _jsonable(value)
            self._write(out)
        if top >= 0:
            self._seq = base + top

    def close(self):
        """Close any open spans (innermost first) and the sink."""
        while self._stack:
            self._stack[-1].close(error="unclosed")
        self.sink.close()
