"""Exporters: Prometheus text exposition and standard trace formats.

PR 4 gave the engine canonical traces and deterministic metrics; this
module makes both consumable by the tools an operator would actually
point at a fault-simulation farm:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4) with ``# HELP``/``# TYPE`` lines, counters suffixed
  ``_total``, gauges, and histograms expanded into cumulative
  ``_bucket``/``_sum``/``_count`` series.  Served by the campaign
  service's ``/metrics`` under content negotiation and dumpable
  offline via ``repro metrics-export``.
* :func:`trace_to_chrome` — converts a canonical JSONL trace into the
  Chrome ``trace_event`` JSON format, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Wall-clock
  traces keep real timings; canonical (``wall=False``) traces get a
  synthetic timeline derived from ``seq`` nesting, so the *structure*
  of a byte-reproducible trace is still explorable.
* :func:`trace_to_collapsed` — folds span nesting into collapsed-stack
  lines (``root;child;leaf <weight>``), the input format of every
  flamegraph renderer (Brendan Gregg's ``flamegraph.pl``, speedscope,
  inferno).

Everything here is a pure function over already-validated records —
no I/O, no clock reads — so exports are deterministic and unit-testable
without files.
"""

# -- Prometheus exposition ---------------------------------------------

#: the content type Prometheus scrapers send in Accept and expect back
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def sanitize_metric_name(name):
    """Make *name* a legal Prometheus metric name.

    Registry names use dots (``bdd.cache_hits``, ``service.sheds``);
    Prometheus allows ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Every illegal
    character becomes ``_`` and a leading digit gets a ``_`` prefix,
    so distinct-but-odd registry names stay distinct in the common
    case and are always *legal* in every case.
    """
    out = "".join(c if c in _NAME_OK else "_" for c in str(name))
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value):
    """Escape a label value per the exposition format rules."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_number(value):
    """Exposition-format numbers: integers stay integral."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels_text(labels):
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(metrics, prefix="repro", labels=None, help_text=None):
    """Render a registry (or its snapshot) as Prometheus exposition text.

    *metrics* is a :class:`~repro.obs.metrics.MetricsRegistry` or a
    snapshot dict (``{"counters", "gauges", "histograms",
    "histogram_sums"}``); a flat ``name -> number`` mapping (the
    service's JSON ``/metrics`` body) is accepted too and rendered as
    untyped gauges.  Counters get the conventional ``_total`` suffix.
    Output is deterministic: families sorted by name, one trailing
    newline.  *labels* are stamped on every series (the service uses
    none; ``repro metrics-export --label`` can attach provenance).
    """
    if hasattr(metrics, "snapshot"):
        snapshot = metrics.snapshot()
    else:
        snapshot = metrics
    if "counters" not in snapshot and "gauges" not in snapshot:
        # a flat mapping: render everything as a gauge
        snapshot = {"counters": {}, "gauges": dict(snapshot)}
    help_text = help_text or {}
    label_part = _labels_text(labels)
    lines = []

    def family(raw_name, kind, suffix=""):
        name = prefix + "_" if prefix else ""
        name += sanitize_metric_name(raw_name) + suffix
        text = help_text.get(raw_name, f"repro metric {raw_name}")
        lines.append(f"# HELP {name} {escape_label_value(text)}")
        lines.append(f"# TYPE {name} {kind}")
        return name

    for raw, value in sorted(snapshot.get("counters", {}).items()):
        name = family(raw, "counter", suffix="_total")
        lines.append(f"{name}{label_part} {_format_number(value)}")
    for raw, value in sorted(snapshot.get("gauges", {}).items()):
        name = family(raw, "gauge")
        lines.append(f"{name}{label_part} {_format_number(value)}")
    sums = snapshot.get("histogram_sums", {})
    for raw, hist in sorted(snapshot.get("histograms", {}).items()):
        name = family(raw, "histogram")
        running = 0
        for upper in sorted(int(b) for b in hist):
            running += hist[str(upper)] if str(upper) in hist else hist[upper]
            bucket_labels = dict(labels or {})
            lines.append(
                f'{name}_bucket{{'
                + (
                    ",".join(
                        f'{sanitize_metric_name(k)}='
                        f'"{escape_label_value(v)}"'
                        for k, v in sorted(bucket_labels.items())
                    ) + ","
                    if bucket_labels else ""
                )
                + f'le="{upper}"}} {running}'
            )
        lines.append(
            f'{name}_bucket{{'
            + (
                ",".join(
                    f'{sanitize_metric_name(k)}="{escape_label_value(v)}"'
                    for k, v in sorted((labels or {}).items())
                ) + ","
                if labels else ""
            )
            + f'le="+Inf"}} {running}'
        )
        lines.append(
            f"{name}_sum{label_part} {_format_number(sums.get(raw, 0))}"
        )
        lines.append(f"{name}_count{label_part} {running}")
    return "\n".join(lines) + "\n"


def wants_prometheus(accept_header):
    """Content negotiation: does this Accept header ask for exposition?

    The JSON body stays the default — only an explicit ``text/plain``
    or OpenMetrics media type switches to exposition, so existing
    clients (tests, scripts, the CLI) keep their contract.
    """
    accept = (accept_header or "").lower()
    return "text/plain" in accept or "openmetrics" in accept


# -- Chrome trace_event export -----------------------------------------


def _subtree_spans(records):
    """seq -> (record, subtree_max_seq) for synthetic timelines.

    In a canonical trace a span's ``seq`` is assigned when it *opens*
    and every descendant gets a larger ``seq``, so the half-open
    interval ``[seq, max(subtree) + 1)`` nests exactly like the real
    spans did.  That interval is the synthetic duration (in
    microseconds) used when the trace carries no wall clock.
    """
    max_seq = {}
    parent_of = {}
    for record in records:
        seq = record.get("seq")
        if seq is None:
            continue
        parent_of[seq] = record.get("parent")
        node = seq
        while node is not None:
            max_seq[node] = max(max_seq.get(node, node), seq)
            node = parent_of.get(node)
    return max_seq


def _track_ids(record, shard_tracks):
    """(pid, tid) attribution for one record.

    Worker-attributed fabric records get their worker id as the pid;
    each shard gets its own tid lane so Perfetto lays shards out as
    parallel tracks.  Single-process traces collapse to (0, 0).
    """
    worker = record.get("worker")
    pid = worker if isinstance(worker, int) else 0
    shard = record.get("shard")
    if shard is None:
        return pid, 0
    if shard not in shard_tracks:
        shard_tracks[shard] = len(shard_tracks) + 1
    return pid, shard_tracks[shard]


_CORE_FIELDS = ("kind", "name", "seq", "parent", "ts", "dur", "pid", "tid")


def trace_to_chrome(records):
    """Convert validated trace records to a Chrome trace_event dict.

    Returns the JSON-ready ``{"traceEvents": [...], ...}`` object.
    Spans become complete (``"ph": "X"``) events, point events become
    instants (``"ph": "i"``), metrics samples become counter
    (``"ph": "C"``) events.  Wall traces use real ``ts``/``dur``
    (converted to microseconds); canonical traces synthesize a
    timeline from ``seq`` nesting (1 seq = 1 µs), preserving structure
    and relative ordering exactly.
    """
    shard_tracks = {}
    synthetic = _subtree_spans(records)
    events = []
    source = None
    for record in records:
        kind = record.get("kind")
        if kind == "trace-header":
            source = record.get("source")
            continue
        seq = record.get("seq")
        pid, tid = _track_ids(record, shard_tracks)
        args = {
            k: v for k, v in record.items() if k not in _CORE_FIELDS
        }
        args["seq"] = seq
        if kind == "span":
            if "ts" in record and "dur" in record:
                ts = round(record["ts"] * 1e6)
                dur = max(round(record["dur"] * 1e6), 1)
            else:
                ts = seq
                dur = synthetic.get(seq, seq) - seq + 1
            events.append({
                "name": record.get("name", "?"),
                "ph": "X", "ts": ts, "dur": dur,
                "pid": pid, "tid": tid, "cat": "span", "args": args,
            })
        elif kind == "event":
            ts = round(record["ts"] * 1e6) if "ts" in record else seq
            events.append({
                "name": record.get("name", "?"),
                "ph": "i", "s": "t", "ts": ts,
                "pid": pid, "tid": tid, "cat": "event", "args": args,
            })
        elif kind == "metrics":
            ts = round(record["ts"] * 1e6) if "ts" in record else seq
            values = {
                k: v for k, v in (record.get("values") or {}).items()
            }
            events.append({
                "name": record.get("name", "metrics"),
                "ph": "C", "ts": ts,
                "pid": pid, "tid": tid, "args": values,
            })
        elif kind == "summary":
            ts = synthetic.get(seq, seq) if seq is not None else 0
            events.append({
                "name": "summary", "ph": "i", "s": "g", "ts": ts,
                "pid": pid, "tid": tid, "cat": "summary", "args": args,
            })
    # stable presentation order for byte-reproducible exports
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"],
                               e["args"].get("seq", -1)
                               if isinstance(e.get("args"), dict) else -1))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": source or "campaign",
                      "exporter": "repro export-trace"},
    }


# -- collapsed-stack (flamegraph) export -------------------------------


def trace_to_collapsed(records):
    """Fold span nesting into collapsed-stack lines.

    One line per unique root-to-leaf span path:
    ``campaign;step;...;leaf <weight>``.  The weight is *self* time in
    microseconds for wall traces (a parent's children are subtracted,
    floored at zero) or self seq-span width for canonical traces — in
    both cases weights over a path sum to the root span's total, which
    is the invariant flamegraph renderers assume.  Lines are sorted
    for deterministic output.
    """
    spans = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        seq = record.get("seq")
        if seq is None:
            continue
        spans[seq] = record
    synthetic = _subtree_spans(list(spans.values()))

    def total_weight(record):
        if "dur" in record:
            return max(round(record["dur"] * 1e6), 1)
        seq = record["seq"]
        return synthetic.get(seq, seq) - seq + 1

    def frame_name(record):
        name = record.get("name", "?")
        shard = record.get("shard")
        return f"{name}[{shard}]" if shard is not None else name

    def path_of(record):
        frames = []
        node = record
        seen = set()
        while node is not None and node["seq"] not in seen:
            seen.add(node["seq"])
            frames.append(frame_name(node))
            parent = node.get("parent")
            node = spans.get(parent) if parent is not None else None
        return ";".join(reversed(frames))

    weights = {}
    child_weight = {}
    for seq, record in spans.items():
        parent = record.get("parent")
        if parent in spans:
            child_weight[parent] = (
                child_weight.get(parent, 0) + total_weight(record)
            )
    for seq, record in sorted(spans.items()):
        self_weight = max(
            total_weight(record) - child_weight.get(seq, 0), 0
        )
        if self_weight == 0:
            continue
        path = path_of(record)
        weights[path] = weights.get(path, 0) + self_weight
    return "\n".join(
        f"{path} {weight}" for path, weight in sorted(weights.items())
    ) + ("\n" if weights else "")
