"""Post-hoc trace analysis behind ``repro profile``.

Reads a JSONL trace produced by ``--trace`` (single-process campaign
or merged fabric trace), validates it, and reports:

* **hot faults** — the faults that consumed the most BDD allocation
  effort (``fault`` spans, emitted once per fault with its strategy,
  frame counts and node effort),
* **time per strategy** — wall seconds (wall traces) and frame-step
  counts per ladder rung and execution mode (``step`` spans),
* **cache-hit-rate trajectory** — the computed-table hit rate over
  campaign progress (``metrics`` samples),
* **pressure/demotion timeline** — every pressure action, demotion,
  quarantine and budget stop, in order,
* **failpoints** — on chaos runs (``--failpoints`` /
  ``REPRO_FAILPOINTS``), every injected-failure fire counted by site
  and reconciled against the summary's ``failpoints_fired``,
* **reconciliation** — event counts checked *exactly* against the
  campaign's own summary record; any mismatch means the trace is
  lying about the run and is reported loudly.
"""

import json

from repro.obs.schema import TraceSchemaError, validate_record

#: summary keys reconciled against trace-derived totals (when present
#: in both; the merged fabric summary omits coordinator-side counters
#: such as checkpoint writes, which have no trace events).
RECONCILE_KEYS = (
    "demotions",
    "quarantined",
    "fallbacks",
    "gc_runs",
    "detected",
    "checkpoints_written",
    "pressure_events",
    "failpoints_fired",
)

_TIMELINE_EVENTS = (
    "pressure", "demote", "quarantine", "budget", "audit-refuted",
    "disk",
)


def read_trace(path):
    """Load and validate a trace file; return the record list."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(line_no, f"invalid JSON: {exc}")
            records.append(validate_record(record, line_no))
    if not records:
        raise TraceSchemaError(0, "empty trace file")
    return records


def profile_trace(path, top=10):
    """Analyze the trace at *path*; return a JSON-ready profile dict."""
    records = read_trace(path)
    header = records[0] if records[0].get("kind") == "trace-header" else None

    faults = []
    strategy = {}
    trajectory = []
    timeline = []
    truncated = 0
    summary = None
    fabric = None
    failpoint_sites = {}  # site -> fired count (chaos runs only)
    audit_counts = {}  # classification -> audit-fault span count
    audit_summary = None  # the runner's audit-summary event
    totals = {
        "demotions": 0,
        "quarantined": 0,
        "fallbacks": 0,
        "gc_runs": 0,
        "detected": 0,
        "checkpoints_written": 0,
        "pressure_events": 0,
        "failpoints_fired": 0,
        "disk_events": 0,
    }

    for record in records:
        kind = record.get("kind")
        name = record.get("name")
        if kind == "span":
            if name == "fault":
                faults.append(record)
            elif name == "step":
                key = f"{record.get('rung', '?')}/{record.get('mode', '?')}"
                bucket = strategy.setdefault(
                    key, {"steps": 0, "seconds": 0.0, "timed": False}
                )
                bucket["steps"] += 1
                if "dur" in record:
                    bucket["seconds"] += record["dur"]
                    bucket["timed"] = True
            elif name == "prepass-3v":
                totals["detected"] += record.get("detected", 0)
            elif name == "shard":
                truncated += record.get("trace_dropped", 0) or 0
            elif name == "audit-fault":
                cls = record.get("classification", "?")
                audit_counts[cls] = audit_counts.get(cls, 0) + 1
        elif kind == "event":
            if name == "detect":
                totals["detected"] += 1
            elif name == "demote":
                totals["demotions"] += 1
            elif name == "quarantine":
                totals["quarantined"] += 1
            elif name == "fallback":
                totals["fallbacks"] += 1
            elif name == "gc":
                totals["gc_runs"] += 1
            elif name == "checkpoint":
                totals["checkpoints_written"] += 1
            elif name == "pressure":
                totals["pressure_events"] += 1
                if record.get("action") == "gc":
                    totals["gc_runs"] += 1
            elif name == "disk":
                totals["disk_events"] += 1
            elif name == "failpoint":
                totals["failpoints_fired"] += 1
                site = record["site"]
                failpoint_sites[site] = failpoint_sites.get(site, 0) + 1
            elif name == "fabric":
                fabric = {
                    k: v for k, v in record.items()
                    if k not in ("kind", "name", "seq", "parent", "ts")
                }
            elif name == "audit-summary":
                audit_summary = {
                    k: v for k, v in record.items()
                    if k not in ("kind", "name", "seq", "parent", "ts")
                }
            if name in _TIMELINE_EVENTS:
                timeline.append(_timeline_entry(record))
        elif kind == "metrics":
            if name in ("sample", "final"):
                trajectory.append(_trajectory_point(record))
        elif kind == "summary":
            if record.get("parent") is None:
                summary = {
                    k: v for k, v in record.items()
                    if k not in ("kind", "seq", "parent")
                }

    for bucket in strategy.values():
        bucket["seconds"] = (
            round(bucket["seconds"], 6) if bucket.pop("timed") else None
        )
    faults.sort(
        key=lambda r: (-(r.get("nodes") or 0),
                       -(r.get("frames_symbolic") or 0),
                       str(r.get("fault")))
    )
    hot = [
        {
            key: record.get(key)
            for key in ("fault", "nodes", "frames_symbolic", "frames_3v",
                        "rung", "state", "shard")
            if record.get(key) is not None
        }
        for record in faults[:top]
    ]

    audit = None
    if audit_summary is not None or audit_counts:
        audit = {
            "summary": audit_summary,
            "spans": dict(sorted(audit_counts.items())),
        }

    reconciliation = _reconcile(
        totals, summary, truncated, audit_counts, audit_summary
    )
    return {
        "source": (header or {}).get("source", "campaign"),
        "records": len(records),
        "truncated_records": truncated,
        "hot_faults": hot,
        "strategy": dict(sorted(strategy.items())),
        "cache_trajectory": [p for p in trajectory if p is not None],
        "timeline": timeline,
        "totals": totals,
        "summary": summary,
        "fabric": fabric,
        "failpoints": dict(sorted(failpoint_sites.items())),
        "audit": audit,
        "reconciliation": reconciliation,
    }


def _timeline_entry(record):
    entry = {"event": record["name"]}
    for key in ("frame", "fault", "from", "to", "reason", "action",
                "rung", "budget_kind", "shard", "freed", "observed",
                "limit", "records_before", "records_after",
                "checkpoint_every"):
        if key in record:
            entry[key] = record[key]
    if "ts" in record:
        entry["ts"] = record["ts"]
    return entry


def _trajectory_point(record):
    values = record.get("values", {})
    hits = values.get("bdd.cache_hits")
    misses = values.get("bdd.cache_misses")
    if hits is None and misses is None:
        return None
    hits = hits or 0
    misses = misses or 0
    lookups = hits + misses
    point = {
        "frame": values.get("campaign.frame"),
        "hits": hits,
        "misses": misses,
        "rate": round(hits / lookups, 4) if lookups else None,
    }
    if "shard" in record:
        point["shard"] = record["shard"]
    return point


def _reconcile(totals, summary, truncated, audit_counts=None,
               audit_summary=None):
    """Exact cross-check of trace-derived totals vs the summary record."""
    if summary is None:
        return {"ok": False, "reason": "no summary record", "mismatches": {}}
    if truncated:
        return {
            "ok": False,
            "reason": f"{truncated} shard trace records truncated; "
                      "totals are a lower bound",
            "mismatches": {},
        }
    mismatches = {}
    for key in RECONCILE_KEYS:
        if key not in summary or key not in totals:
            continue
        expected = summary[key]
        if expected is None:
            continue
        if totals[key] != expected:
            mismatches[key] = {"trace": totals[key], "summary": expected}
    _reconcile_audit(mismatches, audit_counts, audit_summary)
    return {"ok": not mismatches, "mismatches": mismatches}


def _reconcile_audit(mismatches, audit_counts, audit_summary):
    """Audit-fault spans must add up to the audit-summary event.

    A no-op when the trace carries no audit records at all; a summary
    without spans (or vice versa) is a mismatch like any other.
    """
    if not audit_counts and audit_summary is None:
        return
    if audit_summary is None:
        mismatches["audit"] = {
            "trace": sum(audit_counts.values()), "summary": None,
        }
        return
    derived = {
        "confirmed": audit_counts.get("confirmed", 0),
        "refuted": audit_counts.get("refuted", 0),
        "extraction_failed": audit_counts.get(
            "witness-extraction-failed", 0
        ),
        "inconclusive": sum(
            count
            for cls, count in audit_counts.items()
            if cls.startswith("inconclusive-")
        ),
    }
    for key, traced in derived.items():
        expected = audit_summary.get(key)
        if expected is None:
            continue
        if traced != expected:
            mismatches[f"audit.{key}"] = {
                "trace": traced, "summary": expected,
            }


def render_profile(profile, width=72):
    """Human-readable report for a :func:`profile_trace` result."""
    lines = []
    push = lines.append
    push("=" * width)
    push(f"trace profile · source={profile['source']} · "
         f"{profile['records']} records")
    push("=" * width)

    if profile["truncated_records"]:
        push(f"!! {profile['truncated_records']} records truncated in "
             "worker traces — totals are lower bounds")

    summary = profile.get("summary")
    if summary:
        bits = []
        for key in ("stopped", "frames_total", "detected", "total_faults",
                    "peak_nodes"):
            if key in summary:
                bits.append(f"{key}={summary[key]}")
        push("summary: " + ", ".join(bits))

    push("")
    push("time per strategy (rung/mode):")
    for key, bucket in profile["strategy"].items():
        seconds = bucket["seconds"]
        timing = f"{seconds:10.3f}s" if seconds is not None else "   (no wall)"
        push(f"  {key:<16} {bucket['steps']:6d} steps {timing}")
    if not profile["strategy"]:
        push("  (no step spans)")

    push("")
    push("hot faults (by node effort):")
    for entry in profile["hot_faults"]:
        where = f" shard={entry['shard']}" if "shard" in entry else ""
        push(f"  {str(entry.get('fault')):<28} nodes={entry.get('nodes', 0):>8}"
             f" frames={entry.get('frames_symbolic', 0)}"
             f"+{entry.get('frames_3v', 0)}x3v"
             f" state={entry.get('state', '?')}{where}")
    if not profile["hot_faults"]:
        push("  (no fault spans)")

    trajectory = profile["cache_trajectory"]
    push("")
    push("cache-hit-rate trajectory:")
    if trajectory:
        shown = trajectory if len(trajectory) <= 8 else (
            trajectory[:4] + trajectory[-4:]
        )
        for point in shown:
            rate = point["rate"]
            rate_text = f"{rate * 100:6.2f}%" if rate is not None else "     —"
            frame = point.get("frame")
            where = f" shard={point['shard']}" if "shard" in point else ""
            push(f"  frame={frame!s:<6} hits={point['hits']:>10} "
                 f"misses={point['misses']:>10} rate={rate_text}{where}")
        if len(trajectory) > 8:
            push(f"  ... ({len(trajectory) - 8} samples elided)")
    else:
        push("  (no metrics samples)")

    push("")
    push("pressure / demotion timeline:")
    for entry in profile["timeline"][:40]:
        bits = [f"{k}={v}" for k, v in entry.items() if k != "event"]
        push(f"  {entry['event']:<11} " + " ".join(bits))
    if len(profile["timeline"]) > 40:
        push(f"  ... ({len(profile['timeline']) - 40} entries elided)")
    if not profile["timeline"]:
        push("  (quiet run: no pressure, demotions or budget stops)")

    audit = profile.get("audit")
    if audit:
        push("")
        push("audit:")
        s = audit.get("summary")
        if s:
            push(f"  {s.get('mode', '?')} mode, seed {s.get('seed', '?')}"
                 f": {s.get('confirmed', 0)} confirmed, "
                 f"{s.get('refuted', 0)} refuted, "
                 f"{s.get('inconclusive', 0)} inconclusive, "
                 f"{s.get('extraction_failed', 0)} extraction-failed")
            for name in s.get("refuted_faults") or ():
                push(f"  REFUTED {name}")
        for cls, count in audit["spans"].items():
            push(f"  spans {cls:<32} {count}")

    if profile.get("failpoints"):
        push("")
        push("failpoints fired (chaos run):")
        for site, count in profile["failpoints"].items():
            push(f"  {site:<36} {count}")

    push("")
    rec = profile["reconciliation"]
    if rec["ok"]:
        push("reconciliation: OK — trace events match campaign accounting")
    elif rec.get("reason"):
        push(f"reconciliation: SKIPPED — {rec['reason']}")
    else:
        push("reconciliation: MISMATCH")
        for key, pair in rec["mismatches"].items():
            push(f"  {key}: trace={pair['trace']} summary={pair['summary']}")
    push("=" * width)
    return "\n".join(lines)
