"""An opt-in single-line TTY progress display for campaigns.

The campaign runtime and the shard fabric both expose a
``progress_hook(payload)`` callback; :class:`ProgressLine` is the CLI's
implementation.  It rewrites one terminal line (carriage return, no
scrollback spam), throttles itself by wall clock, and degrades to
plain newline-separated updates when stderr is not a TTY (so CI logs
stay readable).  It understands both payload shapes:

* campaign: ``{"frame", "frames", "live", "detected", ...}``
* fabric: ``{"shards_done", "shards", "workers", "frame", "metrics"}``
"""

import sys
import time


class ProgressLine:
    """Renders campaign/fabric progress payloads onto one TTY line."""

    def __init__(self, stream=None, interval=0.2):
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._last = 0.0
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._width = 0
        self._started = time.monotonic()

    def __call__(self, payload):
        self.update(payload)

    def update(self, payload):
        now = time.monotonic()
        if now - self._last < self._interval:
            return
        self._last = now
        text = self._format(payload, now - self._started)
        self._emit(text)

    def _format(self, payload, elapsed):
        parts = [f"[{elapsed:7.1f}s]"]
        if "shards_done" in payload:
            parts.append(
                f"shards {payload.get('shards_done', 0)}"
                f"/{payload.get('shards', '?')}"
            )
            if payload.get("workers") is not None:
                parts.append(f"workers {payload['workers']}")
        if payload.get("frame") is not None:
            frames = payload.get("frames")
            tail = f"/{frames}" if frames else ""
            parts.append(f"frame {payload['frame']}{tail}")
        for key, label in (("live", "live"), ("detected", "det"),
                           ("demotions", "dem"), ("quarantined", "quar")):
            if payload.get(key) is not None:
                parts.append(f"{label} {payload[key]}")
        metrics = payload.get("metrics")
        if metrics:
            nodes = metrics.get("bdd.nodes_created")
            if nodes is not None:
                parts.append(f"nodes {nodes}")
            hits = metrics.get("bdd.cache_hits", 0)
            misses = metrics.get("bdd.cache_misses", 0)
            if hits or misses:
                parts.append(f"hit {hits / (hits + misses) * 100:.0f}%")
        return " ".join(parts)

    def _emit(self, text):
        if self._tty:
            pad = max(0, self._width - len(text))
            self._stream.write("\r" + text + " " * pad)
            self._width = len(text)
        else:
            self._stream.write(text + "\n")
        self._stream.flush()

    def finish(self):
        """Terminate the progress line so following output starts clean."""
        if self._tty and self._width:
            self._stream.write("\n")
            self._stream.flush()
        self._width = 0
