"""An opt-in single-line TTY progress display for campaigns.

The campaign runtime and the shard fabric both expose a
``progress_hook(payload)`` callback; :class:`ProgressLine` is the CLI's
implementation.  It rewrites one terminal line (carriage return, no
scrollback spam), throttles itself by wall clock, and degrades to
plain newline-separated updates when stderr is not a TTY (so CI logs
stay readable).  It understands both payload shapes:

* campaign: ``{"frame", "frames_total", "live", "detected", ...}``
* fabric: ``{"shards_done", "shards", "faults_done", "faults_total",
  "workers", "frame", "metrics"}``

Both carry enough to derive throughput (faults or frames per second)
and an ETA, which the line renders when the denominator is known.  A
closed or otherwise unwritable stream (a piped consumer that exited,
a captured stderr torn down mid-campaign) permanently disables the
display instead of raising into the campaign loop — progress is a
convenience, never a failure mode.
"""

import sys
import time


class ProgressLine:
    """Renders campaign/fabric progress payloads onto one TTY line."""

    def __init__(self, stream=None, interval=0.2):
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._last = 0.0
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._width = 0
        self._started = time.monotonic()
        self._dead = False

    def __call__(self, payload):
        self.update(payload)

    def update(self, payload):
        if self._dead:
            return
        now = time.monotonic()
        if now - self._last < self._interval:
            return
        self._last = now
        text = self._format(payload, now - self._started)
        self._emit(text)

    @staticmethod
    def _rate_eta(done, total, elapsed):
        """(per-second rate, ETA seconds) — None where underivable."""
        if not done or not elapsed or elapsed <= 0:
            return None, None
        rate = done / elapsed
        if total and total > done and rate > 0:
            return rate, (total - done) / rate
        return rate, None

    @staticmethod
    def _duration(seconds):
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def _format(self, payload, elapsed):
        parts = [f"[{elapsed:7.1f}s]"]
        # the payload's own elapsed (campaign/fabric clock) beats ours:
        # it survives resume and does not count hook-attach latency
        work_elapsed = payload.get("elapsed") or elapsed
        rate = eta = None
        if "shards_done" in payload:
            parts.append(
                f"shards {payload.get('shards_done', 0)}"
                f"/{payload.get('shards', '?')}"
            )
            if payload.get("workers") is not None:
                parts.append(f"workers {payload['workers']}")
            rate, eta = self._rate_eta(
                payload.get("faults_done"),
                payload.get("faults_total"),
                work_elapsed,
            )
        if payload.get("frame") is not None:
            frames = payload.get("frames_total") or payload.get("frames")
            tail = f"/{frames}" if frames else ""
            parts.append(f"frame {payload['frame']}{tail}")
            if rate is None and "shards_done" not in payload:
                # serial campaign: detections accrue per frame; frame
                # progress is the honest throughput denominator
                _frame_rate, eta = self._rate_eta(
                    payload["frame"], frames, work_elapsed
                )
                detected = payload.get("detected")
                if detected and work_elapsed > 0:
                    rate = detected / work_elapsed
        for key, label in (("live", "live"), ("detected", "det"),
                           ("demotions", "dem"), ("quarantined", "quar")):
            if payload.get(key) is not None:
                parts.append(f"{label} {payload[key]}")
        if rate is not None:
            parts.append(f"{rate:.1f} faults/s")
        if eta is not None:
            parts.append(f"eta {self._duration(eta)}")
        metrics = payload.get("metrics")
        if metrics:
            nodes = metrics.get("bdd.nodes_created")
            if nodes is not None:
                parts.append(f"nodes {nodes}")
            hits = metrics.get("bdd.cache_hits", 0)
            misses = metrics.get("bdd.cache_misses", 0)
            if hits or misses:
                parts.append(f"hit {hits / (hits + misses) * 100:.0f}%")
        return " ".join(parts)

    def _emit(self, text):
        try:
            if self._tty:
                pad = max(0, self._width - len(text))
                self._stream.write("\r" + text + " " * pad)
                self._width = len(text)
            else:
                self._stream.write(text + "\n")
            self._stream.flush()
        except (ValueError, OSError):
            # closed or broken stream: silently stop displaying; the
            # campaign must not die because its audience left
            self._dead = True

    def finish(self):
        """Terminate the progress line so following output starts clean."""
        if self._dead:
            return
        if self._tty and self._width:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (ValueError, OSError):
                self._dead = True
        self._width = 0
