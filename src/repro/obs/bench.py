"""Benchmark sentinel: pinned workloads, calibrated runs, guarded diffs.

``repro bench`` runs a pinned suite of micro workloads (BDD substrate
operations) plus a small end-to-end campaign, and writes the timings
to ``BENCH_<label>.json``.  Raw seconds are useless across machines,
so every run first measures a fixed pure-Python calibration loop; each
workload is then reported both in seconds and *normalized* (seconds
divided by the calibration unit), which is what comparisons use — a
slower CI runner shifts both numerator and denominator.

:func:`compare_bench` diffs a current run against a committed baseline
(or a trajectory of past runs) with a noise-aware guardband: a
workload only counts as regressed when its normalized cost exceeds the
baseline by more than the relative guardband *and* the absolute
wall-clock excess is above a floor, so micro workloads jittering by
microseconds can never fail a build.  CI runs this on every push and
fails the ``bench-sentinel`` job on any regression.

Everything is stdlib-only and deterministic apart from the clock.
"""

import json
import platform
import sys
import time

BENCH_VERSION = 1

#: default relative guardband — normalized cost may grow this fraction
DEFAULT_GUARDBAND = 0.5
#: absolute floor (seconds): smaller wall-clock excesses never fail.
#: Workloads are deliberately sized to tens of milliseconds so a real
#: guardband breach always clears this, while scheduler jitter on a
#: single unlucky round cannot.
DEFAULT_FLOOR = 0.005


class BenchSchemaError(ValueError):
    """A bench JSON document violates the schema."""


# -- pinned workloads --------------------------------------------------


def _calibration_workload():
    # fixed integer-churn loop: measures this interpreter+machine's
    # basic speed, the denominator for machine normalization
    acc = 0
    for i in range(200_000):
        acc = (acc * 1103515245 + 12345 + i) & 0xFFFFFFFF
    return acc


# each micro workload is looped to tens of milliseconds: long enough
# that a guardband breach clears the absolute floor, short enough that
# the quick suite stays CI-cheap

def _bdd_parity():
    from repro.bdd import BddManager

    f = None
    for _ in range(20):
        m = BddManager(num_vars=32)
        f = m.const(0)
        for i in range(32):
            f = m.xor(f, m.mk_var(i))
    return f


def _bdd_adder():
    from repro.bdd import BddManager

    carry = None
    for _ in range(15):
        m = BddManager(num_vars=32)
        carry = m.const(0)
        for i in range(16):
            a = m.mk_var(2 * i)
            b = m.mk_var(2 * i + 1)
            m.xor(m.xor(a, b), carry)
            carry = m.or_(m.and_(a, b), m.and_(carry, m.xor(a, b)))
    return carry


def _bdd_satcount():
    from repro.bdd import BddManager

    m = BddManager(num_vars=20)
    f = m.const(0)
    for i in range(20):
        f = m.xor(f, m.mk_var(i))
    count = 0
    for _ in range(500):
        count = m.sat_count(f, range(20))
    return count


def _campaign(circuit, length, seed=3):
    from repro.circuit.compile import compile_circuit
    from repro.circuits.registry import get_circuit
    from repro.faults.collapse import collapse_faults
    from repro.faults.status import FaultSet
    from repro.runtime.campaign import run_campaign
    from repro.sequences.random_seq import random_sequence_for

    compiled = compile_circuit(get_circuit(circuit))
    faults, _ = collapse_faults(compiled)
    sequence = random_sequence_for(compiled, length, seed=seed)
    return run_campaign(compiled, sequence, FaultSet(faults))


# name -> (callable, repeats); min-of-repeats is the reported time
QUICK_SUITE = {
    "bdd_parity32": (_bdd_parity, 5),
    "bdd_adder16": (_bdd_adder, 5),
    "bdd_satcount20": (_bdd_satcount, 5),
    "campaign_ctr8_L12": (lambda: _campaign("ctr8", 12), 2),
}

FULL_SUITE = dict(QUICK_SUITE)
FULL_SUITE.update({
    "campaign_ctr8_L30": (lambda: _campaign("ctr8", 30), 2),
    "campaign_syncc6_L20": (lambda: _campaign("syncc6", 20), 2),
})


# -- running -----------------------------------------------------------


def calibrate(rounds=5):
    """Best-of-*rounds* seconds for the fixed calibration loop."""
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        _calibration_workload()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def _time_workload(fn, repeats):
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def run_suite(quick=True, label="local", progress=None):
    """Run the pinned suite and return a schema-valid bench document."""
    suite = QUICK_SUITE if quick else FULL_SUITE
    unit = calibrate()
    results = {}
    for name in sorted(suite):
        fn, repeats = suite[name]
        if progress is not None:
            progress(name)
        seconds = _time_workload(fn, repeats)
        results[name] = {
            "seconds": round(seconds, 6),
            "normalized": round(seconds / unit, 3),
            "repeats": repeats,
        }
    doc = {
        "bench_version": BENCH_VERSION,
        "label": label,
        "suite": "quick" if quick else "full",
        "machine": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "unit_seconds": round(unit, 6),
        },
        "generated_at": round(time.time(), 3),
        "results": results,
    }
    validate_bench_json(doc)
    return doc


# -- schema ------------------------------------------------------------


def validate_bench_json(doc):
    """Raise :class:`BenchSchemaError` unless *doc* is a valid bench
    document; returns the document for chaining."""
    if not isinstance(doc, dict):
        raise BenchSchemaError("bench document must be a JSON object")
    if doc.get("bench_version") != BENCH_VERSION:
        raise BenchSchemaError(
            f"bench_version must be {BENCH_VERSION}, "
            f"got {doc.get('bench_version')!r}"
        )
    if not isinstance(doc.get("label"), str) or not doc["label"]:
        raise BenchSchemaError("label must be a non-empty string")
    if doc.get("suite") not in ("quick", "full"):
        raise BenchSchemaError("suite must be 'quick' or 'full'")
    machine = doc.get("machine")
    if not isinstance(machine, dict):
        raise BenchSchemaError("machine must be an object")
    unit = machine.get("unit_seconds")
    if not isinstance(unit, (int, float)) or isinstance(unit, bool) \
            or unit <= 0:
        raise BenchSchemaError("machine.unit_seconds must be > 0")
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        raise BenchSchemaError("results must be a non-empty object")
    for name, entry in results.items():
        if not isinstance(entry, dict):
            raise BenchSchemaError(f"results[{name!r}] must be an object")
        for field in ("seconds", "normalized"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                raise BenchSchemaError(
                    f"results[{name!r}].{field} must be > 0"
                )
        repeats = entry.get("repeats")
        if not isinstance(repeats, int) or isinstance(repeats, bool) \
                or repeats < 1:
            raise BenchSchemaError(
                f"results[{name!r}].repeats must be an integer >= 1"
            )
    return doc


def load_bench_json(path):
    """Read and validate one bench document from *path*."""
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise BenchSchemaError(f"{path}: not valid JSON: {exc}")
    try:
        return validate_bench_json(doc)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}")


# -- comparison --------------------------------------------------------


def trajectory_baseline(docs):
    """Fold past runs into one synthetic baseline (per-workload best).

    Using the trajectory's best normalized cost per workload makes the
    guardband measure "how much worse than we have ever reliably been",
    which resists a slow ratchet where each run regresses just inside
    the band against its immediate predecessor.
    """
    if not docs:
        raise BenchSchemaError("empty trajectory")
    results = {}
    for doc in docs:
        validate_bench_json(doc)
        for name, entry in doc["results"].items():
            best = results.get(name)
            if best is None or entry["normalized"] < best["normalized"]:
                results[name] = dict(entry)
    folded = dict(docs[-1])
    folded["label"] = "trajectory"
    folded["results"] = results
    return folded


def compare_bench(baseline, current, guardband=DEFAULT_GUARDBAND,
                  floor=DEFAULT_FLOOR):
    """Diff *current* against *baseline*; return a report dict.

    A workload regresses when its normalized cost exceeds the
    baseline's by more than *guardband* (relative) AND the implied
    wall-clock excess on the current machine is above *floor* seconds.
    Workloads present in the baseline but missing from the current run
    are reported as regressions too (a silently dropped workload must
    not pass the sentinel).  ``report["ok"]`` is the verdict.
    """
    validate_bench_json(baseline)
    validate_bench_json(current)
    unit = current["machine"]["unit_seconds"]
    regressions = []
    compared = []
    for name, base in sorted(baseline["results"].items()):
        cur = current["results"].get(name)
        if cur is None:
            regressions.append({
                "workload": name, "reason": "missing from current run",
            })
            continue
        ratio = cur["normalized"] / base["normalized"]
        allowed = base["normalized"] * (1.0 + guardband)
        excess_seconds = (cur["normalized"] - allowed) * unit
        entry = {
            "workload": name,
            "baseline_normalized": base["normalized"],
            "current_normalized": cur["normalized"],
            "ratio": round(ratio, 3),
        }
        compared.append(entry)
        if cur["normalized"] > allowed and excess_seconds > floor:
            regressions.append(dict(
                entry,
                reason=(
                    f"{ratio:.2f}x baseline "
                    f"(guardband {1.0 + guardband:.2f}x)"
                ),
            ))
    return {
        "ok": not regressions,
        "guardband": guardband,
        "floor": floor,
        "compared": compared,
        "regressions": regressions,
    }


def render_compare(report):
    """One human line per workload plus a verdict line."""
    lines = []
    for entry in report["compared"]:
        lines.append(
            f"  {entry['workload']}: "
            f"{entry['baseline_normalized']} -> "
            f"{entry['current_normalized']} "
            f"({entry['ratio']}x)"
        )
    for reg in report["regressions"]:
        if "ratio" not in reg:
            lines.append(f"  {reg['workload']}: {reg['reason']}")
    if report["ok"]:
        lines.append(
            f"bench: ok ({len(report['compared'])} workloads within "
            f"{1.0 + report['guardband']:.2f}x guardband)"
        )
    else:
        names = ", ".join(r["workload"] for r in report["regressions"])
        lines.append(f"bench: REGRESSION in {names}")
    return "\n".join(lines)
