"""Observability: tracing spans, metrics and the post-hoc profiler.

This package is the measurement substrate of the engine.  It is
deliberately dependency-light (stdlib only, plus the repro error
taxonomy) so every other layer — the BDD manager, the symbolic
fault-simulation session, the campaign runtime and the shard fabric —
can import it without closing a circular import.

Three pieces:

* :class:`~repro.obs.tracer.Tracer` — nestable spans and point events
  streamed to a fork-safe JSONL sink.  The :data:`~repro.obs.tracer.
  NULL_TRACER` singleton is a no-op stand-in so the disabled path costs
  a single attribute check.
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters and
  gauges with delta flushing (workers piggyback deltas on fabric
  heartbeats) and deterministic merge.
* :func:`~repro.obs.profile.profile_trace` — the post-hoc analyzer
  behind ``repro profile``: hot faults, time per strategy, cache-hit
  trajectory, pressure/demotion timeline, and exact reconciliation
  against the campaign's own accounting.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    TRACE_VERSION,
    TraceSchemaError,
    validate_record,
    validate_stream_record,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
)

__all__ = [
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TRACE_VERSION",
    "TraceSchemaError",
    "Tracer",
    "profile_trace",
    "render_prometheus",
    "trace_to_chrome",
    "trace_to_collapsed",
    "validate_record",
    "validate_stream_record",
]

_LAZY = {
    # profile/export pull in nothing heavy, but keep them lazy so
    # importing the tracer from hot paths stays minimal.
    "profile_trace": ("repro.obs.profile", "profile_trace"),
    "render_prometheus": ("repro.obs.export", "render_prometheus"),
    "trace_to_chrome": ("repro.obs.export", "trace_to_chrome"),
    "trace_to_collapsed": ("repro.obs.export", "trace_to_collapsed"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
