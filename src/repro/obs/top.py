"""``repro top`` — a live terminal view of a running campaign.

Tails one of two progress sources and renders each payload on a
single rewritten terminal line (reusing :class:`ProgressLine`'s TTY
discipline, including its non-TTY newline degradation and its
dead-stream guard):

* a **service job** — long-polls ``GET /jobs/<id>/events`` on a
  running ``repro serve`` daemon, resuming from the last seen seq so a
  flaky connection just picks up where it left off;
* a **local campaign checkpoint** — re-reads the campaign's JSONL
  checkpoint and renders the newest ``progress`` record, which is how
  you watch a campaign started in another shell with ``--checkpoint``.

On top of the base line, :class:`TopLine` renders the operator
signals the plain progress line omits: per-worker RSS, pressure rung
population and cumulative BDD-node effort.
"""

import json
import time
from urllib.error import URLError
from urllib.request import Request, urlopen

from repro.obs.progress import ProgressLine


def _format_bytes(value):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024
    return f"{value:.1f}GiB"


class TopLine(ProgressLine):
    """The `repro top` display: ProgressLine plus operator signals."""

    def __init__(self, stream=None, interval=0.0):
        # interval 0: `top` already paces itself by its poll loop
        super().__init__(stream=stream, interval=interval)
        self.last_state = None

    def _format(self, payload, elapsed):
        text = super()._format(payload, elapsed)
        extras = []
        if payload.get("state"):
            self.last_state = payload["state"]
        if self.last_state:
            extras.append(f"state {self.last_state}")
        rung = payload.get("rung_population")
        if rung:
            extras.append(
                "rungs " + "/".join(str(n) for n in rung.values())
            )
        nodes = payload.get("nodes_allocated")
        if nodes:
            extras.append(f"effort {nodes}")
        worker_rss = payload.get("worker_rss")
        if worker_rss:
            shown = ",".join(
                f"{wid}:{_format_bytes(rss)}"
                for wid, rss in sorted(worker_rss.items())[:4]
            )
            extras.append(f"rss {shown}")
        elif payload.get("peak_rss"):
            extras.append(f"rss {_format_bytes(payload['peak_rss'])}")
        return " ".join([text] + extras) if extras else text


# -- sources -----------------------------------------------------------


def service_events(base_url, job_id, poll_timeout=5.0, once=False):
    """Yield event payloads from a running service's long-poll API.

    Stops when the stream reports ``closed`` (the job reached a
    terminal state) or, with ``once=True``, after the first response —
    the mode tests and scripts use.
    """
    base = base_url.rstrip("/")
    seq = 0
    while True:
        url = (
            f"{base}/jobs/{job_id}/events"
            f"?after={seq}&timeout={poll_timeout}"
        )
        request = Request(url, headers={"Accept": "application/json"})
        with urlopen(request, timeout=poll_timeout + 10) as response:
            body = json.load(response)
        for event in body.get("events", []):
            seq = event["seq"]
            yield event
        if body.get("closed") or once:
            return


def checkpoint_progress(path, interval=0.5, once=False):
    """Yield the newest ``progress`` record of a campaign checkpoint.

    Re-reads the file each poll (checkpoints are modest and the
    re-read tolerates torn tails exactly like resume does) and yields
    only when the newest progress record changed.  Stops when ``once``
    or when the campaign's final snapshot stops advancing the file for
    ~10 polls.
    """
    from repro.runtime.checkpoint import read_jsonl_records

    last = None
    quiet = 0
    while True:
        newest = None
        for record in read_jsonl_records(
            path, on_corrupt=lambda report: None
        ):
            if record.get("type") == "progress":
                newest = record
        if newest is not None and newest != last:
            last = newest
            quiet = 0
            yield {k: v for k, v in newest.items() if k != "type"}
        else:
            quiet += 1
        if once or quiet >= 10:
            return
        time.sleep(interval)


def run_top(job=None, url=None, checkpoint=None, once=False,
            stream=None, poll_timeout=5.0, interval=0.5):
    """Drive the live view; returns a CLI exit code."""
    line = TopLine(stream=stream)
    try:
        if checkpoint is not None:
            source = checkpoint_progress(
                checkpoint, interval=interval, once=once
            )
        else:
            source = service_events(
                url, job, poll_timeout=poll_timeout, once=once
            )
        for payload in source:
            line.update(payload)
    except KeyboardInterrupt:
        return 0
    except URLError as exc:
        line.finish()
        raise OSError(f"cannot reach service at {url}: {exc}")
    finally:
        line.finish()
    return 0
