"""A small registry of named counters, gauges and histograms.

Counters are monotonic totals (``inc`` to bump, ``set_total`` to
overwrite with an absolute cumulative value — the natural fit for
folding in a BDD manager's lifetime stats).  Gauges are
last-write-wins levels that *merge* by max, which is the meaningful
combination across shards for things like peak node counts.
Histograms are fixed power-of-two bucket counts (cheap, mergeable by
addition) for size-distribution style metrics such as detection-
function BDD sizes.

The registry also supports the fabric's heartbeat piggybacking:
:meth:`flush_delta` returns only what changed since the last flush
(counters as increments), and :meth:`fold_delta` applies such a delta
on the coordinator side.  Snapshots use sorted keys so serialized
metrics are deterministic.
"""


def _bucket(value):
    """Power-of-two bucket label for histogram values (``value >= 0``)."""
    if value <= 0:
        return 0
    bucket = 1
    while bucket < value:
        bucket <<= 1
    return bucket


class MetricsRegistry:
    """Named counters, gauges and histograms with delta flushing."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._histogram_sums = {}
        self._sent_counters = {}
        self._sent_gauges = {}

    # -- writers ------------------------------------------------------

    def inc(self, name, amount=1):
        """Bump a counter."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_total(self, name, value):
        """Set a counter to an absolute cumulative total."""
        self._counters[name] = value

    def gauge(self, name, value):
        """Set a gauge (last write wins locally, max across merges)."""
        self._gauges[name] = value

    def gauge_max(self, name, value):
        """Raise a gauge to *value* if it is higher."""
        if value > self._gauges.get(name, value - 1):
            self._gauges[name] = value

    def observe(self, name, value):
        """Record *value* into histogram *name* (power-of-two buckets)."""
        hist = self._histograms.setdefault(name, {})
        bucket = _bucket(value)
        hist[bucket] = hist.get(bucket, 0) + 1
        self._histogram_sums[name] = (
            self._histogram_sums.get(name, 0) + value
        )

    # -- readers ------------------------------------------------------

    def snapshot(self):
        """All values, sorted, as one JSON-ready dict."""
        out = {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }
        if self._histograms:
            out["histograms"] = {
                name: {str(b): n for b, n in sorted(hist.items())}
                for name, hist in sorted(self._histograms.items())
            }
            out["histogram_sums"] = dict(
                sorted(self._histogram_sums.items())
            )
        return out

    def histogram_stats(self, name):
        """Cumulative view of one histogram, Prometheus-shaped.

        Returns ``{"buckets": [(le, cumulative), ...], "sum", "count"}``
        with the bucket upper bounds in increasing order and counts
        cumulative (every bucket includes all smaller ones), which is
        exactly the ``_bucket``/``_sum``/``_count`` contract of the
        Prometheus exposition format.  None for an unknown histogram.
        """
        hist = self._histograms.get(name)
        if hist is None:
            return None
        buckets = []
        running = 0
        for upper in sorted(hist):
            running += hist[upper]
            buckets.append((upper, running))
        return {
            "buckets": buckets,
            "sum": self._histogram_sums.get(name, 0),
            "count": running,
        }

    def flat(self):
        """Counters and gauges flattened into one sorted mapping."""
        merged = dict(self._counters)
        merged.update(self._gauges)
        return dict(sorted(merged.items()))

    def counter(self, name, default=0):
        return self._counters.get(name, default)

    # -- fabric plumbing ----------------------------------------------

    def flush_delta(self):
        """Changes since the last flush, or None if nothing changed.

        Counters are returned as increments, gauges as absolute values;
        both sides stay small so the delta rides a heartbeat without
        bloating the pipe.
        """
        counters = {}
        for name, value in self._counters.items():
            delta = value - self._sent_counters.get(name, 0)
            if delta:
                counters[name] = delta
                self._sent_counters[name] = value
        gauges = {}
        for name, value in self._gauges.items():
            if self._sent_gauges.get(name) != value:
                gauges[name] = value
                self._sent_gauges[name] = value
        if not counters and not gauges:
            return None
        return {"counters": counters, "gauges": gauges}

    def fold_delta(self, delta):
        """Apply a heartbeat delta: counters add, gauges take the max."""
        if not delta:
            return
        for name, value in delta.get("counters", {}).items():
            self.inc(name, value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge_max(name, value)

    def fold_snapshot(self, snapshot):
        """Merge a full :meth:`snapshot` (counters add, gauges max)."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, hist in snapshot.get("histograms", {}).items():
            mine = self._histograms.setdefault(name, {})
            for bucket, count in hist.items():
                bucket = int(bucket)
                mine[bucket] = mine.get(bucket, 0) + count
        for name, total in snapshot.get("histogram_sums", {}).items():
            self._histogram_sums[name] = (
                self._histogram_sums.get(name, 0) + total
            )
