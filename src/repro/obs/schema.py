"""The trace record schema, and a validator for it.

One JSONL record per line; every record has a ``kind``:

``trace-header``
    First record of a file.  ``v`` (schema version, currently 1),
    ``source`` (``"campaign"`` or ``"fabric"``), plus free-form
    context fields (circuit, strategy, frames, shards ...).
``span``
    A closed span: ``name``, ``seq``, ``parent`` (the ``seq`` of the
    enclosing span, or null at top level), optional ``ts``/``dur``
    (seconds, only in wall-clock traces), optional ``error``, plus
    name-specific fields (``rung``, ``frame``, ``mode`` ...).
``event``
    A point event: ``name``, ``seq``, ``parent``, optional ``ts``,
    plus name-specific fields.
``metrics``
    A metrics sample: ``name`` and ``values`` (flat name→number map).
``summary``
    Final campaign accounting; the profiler reconciles event counts
    against it.

Records replayed from shard traces into a merged fabric trace
additionally carry ``shard`` (text id) and ``worker`` (worker id or
null for inline/resumed shards).

The validator is deliberately strict about the fields above and
permissive about extras — instrumentation may grow fields without a
schema bump, but may never emit a malformed core.
"""

from repro.runtime.errors import ReproError

#: Current trace schema version (the ``v`` field of trace-header).
TRACE_VERSION = 1

KINDS = ("trace-header", "span", "event", "metrics", "summary")

_NUMBER = (int, float)


class TraceSchemaError(ReproError):
    """A trace record violates the documented schema."""

    def __init__(self, line_no, reason, record=None):
        self.line_no = line_no
        self.reason = reason
        self.record = record
        super().__init__(f"trace line {line_no}: {reason}")

    def context(self):
        return {"line_no": self.line_no, "reason": self.reason}


def _fail(line_no, reason, record):
    raise TraceSchemaError(line_no, reason, record)


def validate_record(record, line_no=0):
    """Validate one decoded record; raise :class:`TraceSchemaError`."""
    if not isinstance(record, dict):
        _fail(line_no, "record is not an object", record)
    kind = record.get("kind")
    if kind not in KINDS:
        _fail(line_no, f"unknown kind {kind!r}", record)
    if kind == "trace-header":
        if record.get("v") != TRACE_VERSION:
            _fail(line_no, f"unsupported version {record.get('v')!r}", record)
        if not isinstance(record.get("source"), str):
            _fail(line_no, "trace-header missing source", record)
        return record
    seq = record.get("seq")
    if not isinstance(seq, int) or seq < 0:
        _fail(line_no, f"bad seq {seq!r}", record)
    parent = record.get("parent")
    if parent is not None and (not isinstance(parent, int) or parent < 0):
        _fail(line_no, f"bad parent {parent!r}", record)
    if kind in ("span", "event", "metrics"):
        if not isinstance(record.get("name"), str):
            _fail(line_no, f"{kind} missing name", record)
    if kind == "event" and record.get("name") == "failpoint":
        # failpoint fire events must say which site fired, or the
        # profiler cannot reconcile them against failpoints.* counters
        if not isinstance(record.get("site"), str):
            _fail(line_no, "failpoint event missing site", record)
    if kind == "event" and record.get("name") == "disk":
        # disk relief events must say which rung ran (compact,
        # stretch, compact-failed) or the timeline is unreadable
        if not isinstance(record.get("action"), str):
            _fail(line_no, "disk event missing action", record)
    for field in ("ts", "dur"):
        if field in record:
            value = record[field]
            if not isinstance(value, _NUMBER) or isinstance(value, bool) \
                    or value < 0:
                _fail(line_no, f"bad {field} {value!r}", record)
    if kind == "metrics":
        values = record.get("values")
        if not isinstance(values, dict):
            _fail(line_no, "metrics missing values", record)
        for name, value in values.items():
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                _fail(line_no, f"non-numeric metric {name!r}", record)
    return record


#: kinds of live-stream records (``GET /jobs/<id>/events`` batches and
#: checkpoint ``progress`` records re-surfaced by ``repro top``)
STREAM_KINDS = ("state", "progress")

#: job lifecycle states a ``state`` stream record may carry — mirrors
#: the service journal's state machine
STREAM_STATES = (
    "submitted", "running", "interrupted", "done", "failed", "cancelled",
)


def validate_stream_record(record, line_no=0):
    """Validate one job-event stream record (seq'd state/progress).

    The stream contract: every record has a positive integer ``seq``
    (per-job, monotonically increasing — gaps mean the bounded buffer
    dropped records and the consumer should resync), a ``kind`` from
    :data:`STREAM_KINDS`, and a numeric ``ts``.  ``state`` records
    carry a journal state; ``progress`` records carry non-negative
    numeric counters wherever the well-known counter fields appear.
    """
    if not isinstance(record, dict):
        _fail(line_no, "stream record is not an object", record)
    kind = record.get("kind")
    if kind not in STREAM_KINDS:
        _fail(line_no, f"unknown stream kind {kind!r}", record)
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        _fail(line_no, f"bad stream seq {seq!r}", record)
    ts = record.get("ts")
    if ts is not None and (
        not isinstance(ts, _NUMBER) or isinstance(ts, bool) or ts < 0
    ):
        _fail(line_no, f"bad stream ts {ts!r}", record)
    if kind == "state":
        if record.get("state") not in STREAM_STATES:
            _fail(
                line_no,
                f"bad stream state {record.get('state')!r}",
                record,
            )
        return record
    validate_progress_payload(record, line_no=line_no)
    return record


def validate_progress_payload(payload, line_no=0):
    """Validate the counter fields of a progress payload.

    Used both for stream ``progress`` records and the checkpoint's
    ``type: progress`` records: any of the well-known counters that is
    present must be a non-negative number.  Extra fields pass —
    progress payloads grow without schema bumps, like trace records.
    """
    if not isinstance(payload, dict):
        _fail(line_no, "progress payload is not an object", payload)
    for field in (
        "frame", "frames_total", "detected", "live", "quarantined",
        "fallbacks", "demotions", "peak_nodes", "elapsed", "monotonic",
        "nodes_allocated", "shards_done", "shards", "workers",
        "faults_done", "faults_total", "peak_worker_rss",
    ):
        if field in payload and payload[field] is not None:
            value = payload[field]
            if not isinstance(value, _NUMBER) or isinstance(value, bool) \
                    or value < 0:
                _fail(line_no, f"bad progress {field} {value!r}", payload)
    worker_rss = payload.get("worker_rss")
    if worker_rss is not None:
        if not isinstance(worker_rss, dict):
            _fail(line_no, "worker_rss is not an object", payload)
        for worker, rss in worker_rss.items():
            if not isinstance(rss, _NUMBER) or isinstance(rss, bool) \
                    or rss < 0:
                _fail(line_no, f"bad worker_rss[{worker}]", payload)
    return payload


def validate_trace_file(path):
    """Validate every line of a JSONL trace; return the record count.

    Checks line-level JSON validity, per-record schema, that the first
    record is a trace-header, and that ``seq`` values are unique (file
    order is *not* seq order — spans are written when they close, after
    their children — but every record owns a distinct slot, including
    across shard replays, which renumber).
    """
    import json

    count = 0
    seen_seq = set()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(line_no, f"invalid JSON: {exc}")
            validate_record(record, line_no)
            if count == 0 and record.get("kind") != "trace-header":
                raise TraceSchemaError(
                    line_no, "first record is not a trace-header", record
                )
            seq = record.get("seq")
            if isinstance(seq, int):
                if seq in seen_seq:
                    raise TraceSchemaError(
                        line_no, f"duplicate seq {seq}", record
                    )
                seen_seq.add(seq)
            count += 1
    if count == 0:
        raise TraceSchemaError(0, "empty trace file")
    return count
