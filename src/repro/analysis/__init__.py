"""Symbolic machine analyses surrounding the fault simulator:
transition systems and image computation, synchronizing-sequence
search, sequence-level observability diagnostics, and miter-based
sequential equivalence checking."""

from repro.analysis.transition import TransitionSystem
from repro.analysis.equivalence import (
    EquivalenceResult,
    build_miter,
    check_equivalence,
)
from repro.analysis.synchronizing import (
    SynchronizingResult,
    find_synchronizing_sequence,
    is_synchronizable,
    uncertainty_after,
)
from repro.analysis.observability import (
    observability_summary,
    three_valued_initialised_bits,
    well_defined_output_positions,
)

__all__ = [
    "TransitionSystem",
    "EquivalenceResult",
    "build_miter",
    "check_equivalence",
    "SynchronizingResult",
    "find_synchronizing_sequence",
    "is_synchronizable",
    "uncertainty_after",
    "three_valued_initialised_bits",
    "well_defined_output_positions",
    "observability_summary",
]
