"""Sequential equivalence checking via a miter + symbolic reachability.

The paper sits in a family of OBDD techniques shared with hardware
verification (its refs [5, 9]); this module provides the verification
side: two synchronous machines with the same interface are equivalent
from given reset states iff no state reachable from the joint reset
makes any output pair differ for any input.

Construction: a **miter** circuit — both netlists side by side with
shared primary inputs and one XOR per output pair — fed to the
:class:`~repro.analysis.transition.TransitionSystem` reachability
engine.  When a difference is reachable, a concrete distinguishing
input sequence is extracted by walking the BFS frontiers backwards.
"""

from repro.analysis.transition import TransitionSystem
from repro.bdd.manager import FALSE, TRUE
from repro.circuit.compile import compile_circuit
from repro.circuit.netlist import Circuit


def build_miter(circuit1, circuit2, name=None):
    """Miter of two circuits with identical PI/PO interfaces.

    Nets of each side are prefixed ``a_`` / ``b_``; primary inputs are
    shared; output *i* of the miter is ``XOR(a_out_i, b_out_i)``.
    Returns ``(miter, dff_map)`` where *dff_map* records which miter
    flip-flop positions belong to which side (``("a", i)`` etc.).
    """
    if circuit1.num_inputs != circuit2.num_inputs:
        raise ValueError("input counts differ")
    if circuit1.num_outputs != circuit2.num_outputs:
        raise ValueError("output counts differ")
    miter = Circuit(name or f"miter_{circuit1.name}_{circuit2.name}")
    for pi in range(circuit1.num_inputs):
        miter.add_input(f"pi{pi}")

    def absorb(circuit, prefix):
        rename = {
            net: f"pi{idx}" for idx, net in enumerate(circuit.inputs)
        }
        for net in circuit.gates:
            rename[net] = f"{prefix}{net}"
        for net in circuit.dffs:
            rename[net] = f"{prefix}{net}"
        for q, d in circuit.dffs.items():
            miter.add_dff(rename[q], rename[d])
        for gate in circuit.gates.values():
            miter.add_gate(
                rename[gate.output],
                gate.kind,
                [rename[s] for s in gate.fanins],
            )
        return [rename[net] for net in circuit.outputs]

    outs1 = absorb(circuit1, "a_")
    outs2 = absorb(circuit2, "b_")
    for pos, (o1, o2) in enumerate(zip(outs1, outs2)):
        miter.add_gate(f"diff{pos}", "XOR", [o1, o2])
        miter.add_output(f"diff{pos}")
    dff_map = [("a", i) for i in range(circuit1.num_dffs)]
    dff_map += [("b", i) for i in range(circuit2.num_dffs)]
    return miter, dff_map


class EquivalenceResult:
    def __init__(self, equivalent, counterexample, output_index, steps):
        self.equivalent = equivalent
        self.counterexample = counterexample  # input vectors, or None
        self.output_index = output_index  # differing PO, or None
        self.steps = steps  # BFS depth explored

    def __bool__(self):
        return self.equivalent

    def __repr__(self):
        if self.equivalent:
            return f"EquivalenceResult(equivalent, {self.steps} steps)"
        return (
            f"EquivalenceResult(DIFFERENT at output "
            f"{self.output_index} after {self.counterexample})"
        )


def _difference_condition(ts):
    """BDD over (state, input): some miter output is 1."""
    condition = FALSE
    for po_pos in range(len(ts.outputs)):
        condition = ts.manager.or_(condition, ts.outputs[po_pos])
    return condition


def _find_step(ts, source_set, target_state):
    """(source_state, input_vector) with next(source, input) == target."""
    m = ts.manager
    constraint = source_set
    for i, bit in enumerate(target_state):
        delta = ts.next_state[i]
        constraint = m.and_(
            constraint, delta if bit else m.not_(delta)
        )
        if constraint == FALSE:
            return None
    variables = ts.state_vars() + ts.input_vars()
    assignment = m.pick_assignment(constraint, variables=variables)
    source = tuple(
        assignment[ts.state_var(i)] for i in range(ts.num_dffs)
    )
    vector = tuple(
        assignment[ts.input_var(j)] for j in range(ts.num_pis)
    )
    return source, vector


def check_equivalence(
    circuit1,
    circuit2,
    reset1=None,
    reset2=None,
    max_steps=None,
    node_limit=None,
):
    """Sequential equivalence from reset states (default all-zero).

    Returns an :class:`EquivalenceResult`; when inequivalent, its
    ``counterexample`` is a distinguishing input sequence starting at
    the resets, and ``output_index`` names the first differing output.
    """
    miter, _dff_map = build_miter(circuit1, circuit2)
    compiled = compile_circuit(miter)
    ts = TransitionSystem(compiled, node_limit=node_limit)
    m = ts.manager

    if reset1 is None:
        reset1 = (0,) * circuit1.num_dffs
    if reset2 is None:
        reset2 = (0,) * circuit2.num_dffs
    joint_reset = tuple(reset1) + tuple(reset2)
    current = ts.state_set_from_iter([joint_reset])

    difference = _difference_condition(ts)

    frontiers = [current]
    reached = current
    steps = 0
    while True:
        # does any state in the current frontier show a difference?
        hit = m.and_(frontiers[-1], difference)
        if hit != FALSE:
            return _extract_counterexample(
                ts, frontiers, hit, joint_reset, steps
            )
        if max_steps is not None and steps >= max_steps:
            return EquivalenceResult(True, None, None, steps)
        new = m.and_(ts.image(frontiers[-1]), m.not_(reached))
        if new == FALSE:
            return EquivalenceResult(True, None, None, steps)
        frontiers.append(new)
        reached = m.or_(reached, new)
        steps += 1


def _extract_counterexample(ts, frontiers, hit, joint_reset, steps):
    m = ts.manager
    variables = ts.state_vars() + ts.input_vars()
    assignment = m.pick_assignment(hit, variables=variables)
    state = tuple(
        assignment[ts.state_var(i)] for i in range(ts.num_dffs)
    )
    last_vector = tuple(
        assignment[ts.input_var(j)] for j in range(ts.num_pis)
    )
    # which output differs under this (state, input)?
    full_assignment = dict(assignment)
    output_index = None
    for po_pos, function in enumerate(ts.outputs):
        if m.evaluate(function, full_assignment):
            output_index = po_pos
            break

    # walk back through the frontiers to the reset
    path = [last_vector]
    target = state
    for depth in range(len(frontiers) - 2, -1, -1):
        found = _find_step(ts, frontiers[depth], target)
        assert found is not None, "frontier chain broken"
        target, vector = found
        path.append(vector)
    assert target == joint_reset
    path.reverse()
    return EquivalenceResult(False, path, output_index, steps)
