"""Symbolic transition-system view of a sequential circuit.

The fault simulator of the paper only ever *simulates* — it applies a
concrete input vector per frame.  For the surrounding analyses the
literature leans on (synchronizing sequences [5, 11], reachability),
one needs the next-state functions as BDDs over both the present-state
variables and symbolic *input* variables.  This module builds exactly
that view.

Variable order (root to leaf): interleaved present/next state pairs
``x_0, x'_0, x_1, x'_1, ...`` followed by the primary-input variables.
The interleaving makes the next-to-present rename (``x'_i -> x_i``)
after an image computation a monotone, linear-time operation.
"""

from repro.bdd import BddManager
from repro.bdd.manager import FALSE, TRUE
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame


class TransitionSystem:
    """Next-state and output functions as BDDs over (state, input)."""

    def __init__(self, compiled, node_limit=None):
        self.compiled = compiled
        m = compiled.num_dffs
        k = compiled.num_pis
        self.manager = BddManager(num_vars=2 * m + k,
                                  node_limit=node_limit)
        self.num_dffs = m
        self.num_pis = k

        algebra = BddAlgebra(self.manager)
        state = [self.manager.mk_var(self.state_var(i)) for i in range(m)]
        inputs = [self.manager.mk_var(self.input_var(j)) for j in range(k)]
        values = simulate_frame(compiled, algebra, inputs, state)
        self.next_state = next_state_of(compiled, values)
        self.outputs = outputs_of(compiled, values)

    # ------------------------------------------------------------------
    # variable layout
    # ------------------------------------------------------------------
    def state_var(self, i):
        """Present-state variable of flip-flop *i*."""
        return 2 * i

    def next_var(self, i):
        """Next-state variable of flip-flop *i*."""
        return 2 * i + 1

    def input_var(self, j):
        """Variable of primary input *j*."""
        return 2 * self.num_dffs + j

    def state_vars(self):
        return [self.state_var(i) for i in range(self.num_dffs)]

    def next_vars(self):
        return [self.next_var(i) for i in range(self.num_dffs)]

    def input_vars(self):
        return [self.input_var(j) for j in range(self.num_pis)]

    # ------------------------------------------------------------------
    # set construction helpers
    # ------------------------------------------------------------------
    def state_set_from_iter(self, states):
        """Characteristic function of an iterable of state tuples."""
        m = self.manager
        result = FALSE
        for state in states:
            cube = TRUE
            for i, bit in enumerate(state):
                var = m.mk_var(self.state_var(i))
                cube = m.and_(cube, var if bit else m.not_(var))
            result = m.or_(result, cube)
        return result

    def all_states(self):
        """Characteristic function of the full state space."""
        return TRUE

    def count_states(self, state_set):
        """Number of states in a characteristic function over x vars."""
        return self.manager.sat_count(state_set, self.state_vars())

    def pick_state(self, state_set):
        """One concrete state tuple from the set, or None if empty."""
        assignment = self.manager.pick_assignment(
            state_set, variables=self.state_vars()
        )
        if assignment is None:
            return None
        return tuple(
            assignment[self.state_var(i)] for i in range(self.num_dffs)
        )

    # ------------------------------------------------------------------
    # image computation
    # ------------------------------------------------------------------
    def _restrict_input(self, function, vector):
        m = self.manager
        for j, bit in enumerate(vector):
            function = m.restrict(function, self.input_var(j), bit)
        return function

    def image(self, state_set, input_vector=None):
        """States reachable in exactly one step from *state_set*.

        With *input_vector* given (a tuple of bits) the step applies
        that fixed vector; otherwise the inputs are free (existentially
        quantified).
        """
        m = self.manager
        relation = state_set
        for i, delta in enumerate(self.next_state):
            if input_vector is not None:
                delta = self._restrict_input(delta, input_vector)
            nxt = m.mk_var(self.next_var(i))
            relation = m.and_(relation, m.xnor(nxt, delta))
            if relation == FALSE:
                return FALSE
        quantify = list(self.state_vars())
        if input_vector is None:
            quantify += self.input_vars()
        relation = m.exists(relation, quantify)
        # rename x'_i -> x_i (monotone under the interleaved order)
        rename = {self.next_var(i): self.state_var(i)
                  for i in range(self.num_dffs)}
        return m.rename(relation, rename)

    def reachable(self, initial_set=None, max_steps=None):
        """Least fixpoint of the image from *initial_set* (default: the
        whole state space, i.e. states reachable from anywhere)."""
        if initial_set is None:
            initial_set = TRUE
        m = self.manager
        reached = initial_set
        frontier = initial_set
        steps = 0
        while frontier != FALSE:
            if max_steps is not None and steps >= max_steps:
                break
            new = self.manager.and_(self.image(frontier), m.not_(reached))
            frontier = new
            reached = m.or_(reached, new)
            steps += 1
        return reached

    def output_function(self, po_pos, input_vector=None):
        """Output *po_pos* as a function of state (and inputs)."""
        function = self.outputs[po_pos]
        if input_vector is not None:
            function = self._restrict_input(function, input_vector)
        return function
