"""Sequence-level observability/initialisation diagnostics.

Small analyses the experiment drivers and users lean on when reading
fault-simulation results: which state bits does a sequence initialise
under the three-valued logic, and which outputs are ever well-defined
(the positions the rMOT strategy can observe)?
"""

from repro.bdd import BddManager, StateVariables
from repro.engines.algebra import THREE_VALUED, BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.logic import threeval as tv


def three_valued_initialised_bits(compiled, sequence):
    """Per-flip-flop: the first frame after which its three-valued
    state value is known (0/1), or None if it stays X throughout."""
    state = [tv.X] * compiled.num_dffs
    first_known = [None] * compiled.num_dffs
    for time, vector in enumerate(sequence, start=1):
        values = simulate_frame(compiled, THREE_VALUED, vector, state)
        state = next_state_of(compiled, values)
        for i, value in enumerate(state):
            if value != tv.X and first_known[i] is None:
                first_known[i] = time
    return first_known


def well_defined_output_positions(compiled, sequence):
    """Symbolically exact set of (frame, po) positions whose fault-free
    value is the same Boolean for every initial state — the positions
    rMOT may observe.  Returns ``{(t, po_pos): bit}`` with t 1-based.
    """
    state_vars = StateVariables(compiled.num_dffs)
    manager = BddManager(num_vars=compiled.num_dffs)
    algebra = BddAlgebra(manager)
    state = [
        manager.mk_var(state_vars.x(i)) for i in range(compiled.num_dffs)
    ]
    positions = {}
    for time, vector in enumerate(sequence, start=1):
        pi_values = [algebra.const(b) for b in vector]
        values = simulate_frame(compiled, algebra, pi_values, state)
        for po_pos, bdd in enumerate(outputs_of(compiled, values)):
            value = manager.const_value(bdd)
            if value is not None:
                positions[(time, po_pos)] = value
        state = next_state_of(compiled, values)
    return positions


def observability_summary(compiled, sequence):
    """One dict with the headline diagnostics for a sequence."""
    init = three_valued_initialised_bits(compiled, sequence)
    defined = well_defined_output_positions(compiled, sequence)
    total_positions = len(sequence) * compiled.num_pos
    return {
        "frames": len(sequence),
        "dffs_initialised_3v": sum(1 for t in init if t is not None),
        "dffs_total": compiled.num_dffs,
        "well_defined_outputs": len(defined),
        "output_positions": total_positions,
        "first_known_frame": init,
    }
