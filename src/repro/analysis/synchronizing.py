"""Synchronizing-sequence search (refs [5] and [11] of the paper).

A synchronizing sequence drives a machine into one known state from
*every* initial state — precisely the capability whose absence makes
three-valued fault simulation report near-zero coverage, and whose
presence makes the rMOT strategy as strong as full MOT (the paper's
observation on "fully synchronizable circuits").

The search operates on the symbolic *uncertainty set*: starting from
the full state space, applying input vector v maps the set S to its
image under v; a sequence synchronizes when the set is a singleton.
Breadth-first over input vectors with a deduplication on the set BDD
(canonical ids make that a hash lookup) and an optional beam width.
"""

from itertools import product

from repro.analysis.transition import TransitionSystem


class SynchronizingResult:
    """Outcome of a synchronizing-sequence search."""

    def __init__(self, sequence, final_state, uncertainty_sizes):
        self.sequence = sequence  # list of input vectors or None
        self.final_state = final_state  # state tuple or None
        self.uncertainty_sizes = uncertainty_sizes  # per-step |S|

    @property
    def found(self):
        return self.sequence is not None

    def __repr__(self):
        if not self.found:
            return "SynchronizingResult(not found)"
        return (
            f"SynchronizingResult(length {len(self.sequence)}, "
            f"final state {self.final_state})"
        )


def find_synchronizing_sequence(
    compiled,
    max_length=32,
    beam_width=64,
    transition_system=None,
):
    """Search for a synchronizing sequence of *compiled*.

    Returns a :class:`SynchronizingResult`; ``found`` is False when no
    sequence exists within *max_length* (which does not prove none
    exists beyond it, unless the uncertainty sets stopped shrinking).
    """
    ts = transition_system or TransitionSystem(compiled)
    vectors = list(product((0, 1), repeat=compiled.num_pis))

    start = ts.all_states()
    frontier = [(start, [])]
    seen = {start}
    sizes = {start: ts.count_states(start)}

    best_trace = [sizes[start]]
    for _depth in range(max_length):
        candidates = []
        for state_set, path in frontier:
            for vector in vectors:
                nxt = ts.image(state_set, input_vector=vector)
                if nxt in seen:
                    continue
                seen.add(nxt)
                count = ts.count_states(nxt)
                sizes[nxt] = count
                new_path = path + [vector]
                if count == 1:
                    return SynchronizingResult(
                        new_path,
                        ts.pick_state(nxt),
                        best_trace + [1],
                    )
                candidates.append((count, nxt, new_path))
        if not candidates:
            break
        candidates.sort(key=lambda c: c[0])
        frontier = [(s, p) for _count, s, p in candidates[:beam_width]]
        best_trace.append(candidates[0][0])
    return SynchronizingResult(None, None, best_trace)


def is_synchronizable(compiled, max_length=32, beam_width=64):
    """Convenience wrapper: does a synchronizing sequence exist (within
    the search bounds)?"""
    return find_synchronizing_sequence(
        compiled, max_length=max_length, beam_width=beam_width
    ).found


def uncertainty_after(compiled, sequence, transition_system=None):
    """The uncertainty set (as a BDD) and its size after *sequence*.

    This quantifies how much a given test sequence has pinned down the
    fault-free machine's state — the quantity the hybrid simulator's
    three-valued interludes erode.
    """
    ts = transition_system or TransitionSystem(compiled)
    current = ts.all_states()
    for vector in sequence:
        current = ts.image(current, input_vector=tuple(vector))
    return current, ts.count_states(current)
