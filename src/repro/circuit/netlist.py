"""The gate-level netlist model: :class:`Circuit`.

A :class:`Circuit` is a named collection of

* primary inputs,
* primary outputs (names of nets observed at the circuit boundary),
* combinational gates (one driving net per gate), and
* D flip-flops (the memory elements; clocking is implicit, one global
  synchronous clock as in the ISCAS-89 benchmarks).

Nets are identified by their string name.  Every net is driven either by
a primary input, a gate, or a flip-flop output (Q).  Flip-flop D inputs
and primary outputs are pure observers of nets.
"""

from repro.circuit import gates as gatelib


class Gate:
    """One combinational gate: ``output = kind(*fanins)``."""

    __slots__ = ("output", "kind", "fanins")

    def __init__(self, output, kind, fanins):
        gatelib.check_arity(kind, len(fanins))
        self.output = output
        self.kind = kind
        self.fanins = tuple(fanins)

    def __repr__(self):
        return f"Gate({self.output} = {self.kind}{self.fanins})"

    def __eq__(self, other):
        return (
            isinstance(other, Gate)
            and self.output == other.output
            and self.kind == other.kind
            and self.fanins == other.fanins
        )

    def __hash__(self):
        return hash((self.output, self.kind, self.fanins))


class Circuit:
    """A synchronous sequential circuit (gate-level FSM realisation)."""

    def __init__(self, name="circuit"):
        self.name = name
        self.inputs = []
        self.outputs = []
        self.gates = {}  # net name -> Gate driving it
        self.dffs = {}  # Q net name -> D net name

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name):
        """Declare a primary input net."""
        self._check_undriven(name)
        self.inputs.append(name)
        return name

    def add_output(self, name):
        """Declare net *name* as a primary output observation."""
        self.outputs.append(name)
        return name

    def add_gate(self, output, kind, fanins):
        """Add a combinational gate driving net *output*."""
        self._check_undriven(output)
        self.gates[output] = Gate(output, kind, fanins)
        return output

    def add_dff(self, q, d):
        """Add a D flip-flop with output net *q* and data input net *d*."""
        self._check_undriven(q)
        self.dffs[q] = d
        return q

    def _check_undriven(self, name):
        if name in self.gates or name in self.dffs or name in self.inputs:
            raise ValueError(f"net {name!r} already driven")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_inputs(self):
        return len(self.inputs)

    @property
    def num_outputs(self):
        return len(self.outputs)

    @property
    def num_dffs(self):
        return len(self.dffs)

    @property
    def num_gates(self):
        return len(self.gates)

    def all_nets(self):
        """All driven nets: inputs, gate outputs and flip-flop outputs."""
        seen = list(self.inputs)
        seen.extend(self.gates)
        seen.extend(self.dffs)
        return seen

    def driver_kind(self, name):
        """'input' | 'gate' | 'dff' | None for the driver of net *name*."""
        if name in self.inputs:
            return "input"
        if name in self.gates:
            return "gate"
        if name in self.dffs:
            return "dff"
        return None

    def fanout_map(self):
        """Map net -> list of sinks.

        Each sink is one of:

        * ``("gate", output_net, pin_index)`` — pin of a gate,
        * ``("dff", q_net)`` — D input of a flip-flop,
        * ``("po", position)`` — primary output observation.
        """
        fanout = {net: [] for net in self.all_nets()}
        for gate in self.gates.values():
            for pin, src in enumerate(gate.fanins):
                fanout[src].append(("gate", gate.output, pin))
        for q, d in self.dffs.items():
            fanout[d].append(("dff", q))
        for pos, net in enumerate(self.outputs):
            fanout[net].append(("po", pos))
        return fanout

    def copy(self, name=None):
        """A deep-enough copy (gates are immutable, containers are new)."""
        other = Circuit(name or self.name)
        other.inputs = list(self.inputs)
        other.outputs = list(self.outputs)
        other.gates = dict(self.gates)
        other.dffs = dict(self.dffs)
        return other

    def __repr__(self):
        return (
            f"Circuit({self.name!r}: {self.num_inputs} PI, "
            f"{self.num_outputs} PO, {self.num_dffs} DFF, "
            f"{self.num_gates} gates)"
        )
