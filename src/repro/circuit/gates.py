"""Gate types of the gate-level netlist model.

The netlist model follows the ISCAS-89 ``.bench`` conventions: a circuit
is built from primary inputs, D flip-flops and the combinational gate
types below.  Every gate type is described by a *base operation*
(AND / OR / XOR / identity) plus an output inversion flag, which is the
form all simulation engines consume.
"""

AND = "AND"
NAND = "NAND"
OR = "OR"
NOR = "NOR"
XOR = "XOR"
XNOR = "XNOR"
NOT = "NOT"
BUF = "BUF"
CONST0 = "CONST0"
CONST1 = "CONST1"

COMBINATIONAL_KINDS = frozenset(
    (AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF, CONST0, CONST1)
)

# Base operation ("AND" | "OR" | "XOR" | "ID" | "CONST") and inversion flag.
_BASE = {
    AND: ("AND", False),
    NAND: ("AND", True),
    OR: ("OR", False),
    NOR: ("OR", True),
    XOR: ("XOR", False),
    XNOR: ("XOR", True),
    BUF: ("ID", False),
    NOT: ("ID", True),
    CONST0: ("CONST", False),
    CONST1: ("CONST", True),
}

# Controlling input value: a single input at this value forces the output
# (before inversion).  None for XOR-like and identity gates.
_CONTROLLING = {
    AND: 0,
    NAND: 0,
    OR: 1,
    NOR: 1,
}


def base_op(kind):
    """Return ``(base, inverted)`` for a combinational gate kind."""
    return _BASE[kind]


def controlling_value(kind):
    """The controlling input value of *kind*, or None if it has none."""
    return _CONTROLLING.get(kind)


def is_inverting(kind):
    """True when the gate inverts its base operation (NAND/NOR/XNOR/NOT)."""
    return _BASE[kind][1]


def min_arity(kind):
    """Smallest legal fanin count for *kind*."""
    if kind in (CONST0, CONST1):
        return 0
    if kind in (NOT, BUF):
        return 1
    return 2


def max_arity(kind):
    """Largest legal fanin count for *kind* (None = unbounded)."""
    if kind in (CONST0, CONST1):
        return 0
    if kind in (NOT, BUF):
        return 1
    return None


def check_arity(kind, nfanins):
    """Raise ValueError when *nfanins* is illegal for *kind*."""
    if kind not in COMBINATIONAL_KINDS:
        raise ValueError(f"unknown gate kind: {kind!r}")
    lo = min_arity(kind)
    hi = max_arity(kind)
    if nfanins < lo or (hi is not None and nfanins > hi):
        raise ValueError(
            f"{kind} gate with {nfanins} fanins (expected "
            f"{lo}{'' if hi == lo else '+' if hi is None else f'..{hi}'})"
        )
