"""Structural validation of a :class:`~repro.circuit.netlist.Circuit`.

Checks performed:

* every referenced net has a driver (gate fanins, DFF data inputs,
  primary outputs),
* no combinational cycle exists (cycles through flip-flops are fine —
  that is what makes the circuit sequential),
* no net is declared primary input and also driven by a gate or DFF
  (enforced at construction time, re-checked here),
* gate arities are legal (enforced at construction, re-checked).
"""

from repro.circuit import gates as gatelib


class CircuitError(ValueError):
    """Raised when a circuit is structurally ill-formed."""


def validate(circuit):
    """Validate *circuit*; raise :class:`CircuitError` on any defect."""
    driven = set(circuit.inputs) | set(circuit.gates) | set(circuit.dffs)

    for gate in circuit.gates.values():
        gatelib.check_arity(gate.kind, len(gate.fanins))
        for src in gate.fanins:
            if src not in driven:
                raise CircuitError(
                    f"gate {gate.output!r} reads undriven net {src!r}"
                )
    for q, d in circuit.dffs.items():
        if d not in driven:
            raise CircuitError(f"DFF {q!r} reads undriven net {d!r}")
    for net in circuit.outputs:
        if net not in driven:
            raise CircuitError(f"primary output {net!r} is undriven")

    _check_no_combinational_cycle(circuit)
    return circuit


def _check_no_combinational_cycle(circuit):
    """Iterative DFS over the combinational gate graph."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {net: WHITE for net in circuit.gates}

    for start in circuit.gates:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(circuit.gates[start].fanins))]
        color[start] = GREY
        while stack:
            net, fanins = stack[-1]
            advanced = False
            for src in fanins:
                if src not in circuit.gates:
                    continue  # PI or DFF output: sequential boundary
                if color[src] == GREY:
                    raise CircuitError(
                        f"combinational cycle through net {src!r}"
                    )
                if color[src] == WHITE:
                    color[src] = GREY
                    stack.append((src, iter(circuit.gates[src].fanins)))
                    advanced = True
                    break
            if not advanced:
                color[net] = BLACK
                stack.pop()
