"""Fanout-free region (FFR) analysis.

A fanout-free region is a maximal tree of gates in which every internal
net has exactly one sink, and that sink is a gate pin.  The *head* of a
region is a net that either has more than one sink, or is observed by a
primary output or a flip-flop D input, or has no sink at all.

Step 3 of the ``ID_X-red`` procedure performs a backward observability
traversal inside each region (see :mod:`repro.xred.idxred`); this module
provides the underlying structural classification, which is also handy
for statistics and tests.
"""


def is_head(compiled, sig):
    """True when signal *sig* is the head of its fanout-free region."""
    gate_pins = len(compiled.fanout_gates[sig])
    others = len(compiled.dff_sinks[sig]) + len(compiled.po_sinks[sig])
    total = gate_pins + others
    if total != 1:
        return True  # fanout stem or dangling net
    return others == 1  # unique sink is a PO or DFF observation


def ffr_heads(compiled):
    """All region heads, as a list of signal indices."""
    return [s for s in range(compiled.num_signals) if is_head(compiled, s)]


def head_of(compiled):
    """Per-signal region head: ``head[sig]`` is the head signal index.

    Primary inputs and flip-flop outputs that directly head a region map
    to themselves.
    """
    head = [None] * compiled.num_signals
    # Walk gates from high level to low so a gate's output head is known
    # before its inputs are processed.
    for sig in range(compiled.num_signals):
        if is_head(compiled, sig):
            head[sig] = sig
    for cg in reversed(compiled.gates):
        out = cg.out
        if head[out] is None:
            # unique sink is a gate pin; inherit that gate's output head
            gate_pos, _pin = compiled.fanout_gates[out][0]
            head[out] = head[compiled.gates[gate_pos].out]
    for sig in compiled.pis + compiled.ppis:
        if head[sig] is None:
            gate_pos, _pin = compiled.fanout_gates[sig][0]
            head[sig] = head[compiled.gates[gate_pos].out]
    return head


def regions(compiled):
    """Map head signal -> sorted list of member signals (head included)."""
    head = head_of(compiled)
    groups = {}
    for sig, h in enumerate(head):
        if h is None:
            continue
        groups.setdefault(h, []).append(sig)
    for members in groups.values():
        members.sort()
    return groups
