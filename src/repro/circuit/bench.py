"""Reader and writer for the ISCAS-89 ``.bench`` netlist format.

The format, as used by the benchmark distribution the paper simulates::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G10 = NOR(G14, G11)
    G14 = NOT(G0)

Gate names are case-insensitive on input; ``CONST0``/``CONST1`` and the
alias ``BUFF`` for ``BUF`` are accepted.
"""

import re

from repro.circuit import gates as gatelib
from repro.circuit.netlist import Circuit
from repro.runtime.errors import CircuitFormatError

_LINE_RE = re.compile(
    r"""^\s*
        (?:
            (?P<io>INPUT|OUTPUT)\s*\(\s*(?P<ionet>[^\s()]+)\s*\)
          |
            (?P<lhs>[^\s=]+)\s*=\s*(?P<kind>[A-Za-z01]+)\s*
                \(\s*(?P<args>[^()]*)\s*\)
        )\s*$""",
    re.VERBOSE,
)

_KIND_ALIASES = {
    "BUFF": gatelib.BUF,
    "BUFFER": gatelib.BUF,
    "INV": gatelib.NOT,
}


class BenchParseError(CircuitFormatError, ValueError):
    """Raised for malformed ``.bench`` text.

    Carries the source (file path or circuit name) and the offending
    line number; still a ``ValueError`` for backwards compatibility.
    """

    def __init__(self, message, line_no=None, source=None):
        self.line_no = line_no
        self.source = source
        self.reason = message
        if line_no is not None:
            message = f"line {line_no}: {message}"
        if source is not None:
            message = f"{source}: {message}"
        super().__init__(message)

    def context(self):
        return {
            "source": self.source,
            "line": self.line_no,
            "reason": self.reason,
        }


def parse_bench(text, name="bench", source=None):
    """Parse ``.bench`` *text* into a :class:`Circuit`.

    Malformed lines, duplicate net definitions and references to
    signals never defined anywhere in the file all raise
    :class:`BenchParseError` naming *source* (defaults to *name*) and
    the offending line.
    """
    if source is None:
        source = name
    circuit = Circuit(name)
    # first line each net name is *used* (referenced) on, for the
    # undefined-signal check after the whole file has been read —
    # .bench allows forward references, so it cannot run per-line
    used_at = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise BenchParseError(f"cannot parse {line!r}", line_no, source)
        if match.group("io"):
            net = match.group("ionet")
            if match.group("io") == "INPUT":
                try:
                    circuit.add_input(net)
                except ValueError as exc:
                    raise BenchParseError(str(exc), line_no, source) from exc
            else:
                circuit.add_output(net)
                used_at.setdefault(net, line_no)
            continue
        lhs = match.group("lhs")
        kind = match.group("kind").upper()
        kind = _KIND_ALIASES.get(kind, kind)
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        for arg in args:
            used_at.setdefault(arg, line_no)
        if kind == "DFF":
            if len(args) != 1:
                raise BenchParseError(
                    f"DFF takes exactly one input, got {len(args)}",
                    line_no,
                    source,
                )
            try:
                circuit.add_dff(lhs, args[0])
            except ValueError as exc:
                raise BenchParseError(str(exc), line_no, source) from exc
        elif kind in gatelib.COMBINATIONAL_KINDS:
            try:
                circuit.add_gate(lhs, kind, args)
            except ValueError as exc:
                raise BenchParseError(str(exc), line_no, source) from exc
        else:
            raise BenchParseError(
                f"unknown gate kind {kind!r}", line_no, source
            )
    defined = set(circuit.all_nets())
    for net, line_no in sorted(used_at.items(), key=lambda item: item[1]):
        if net not in defined:
            raise BenchParseError(
                f"signal {net!r} is referenced but never defined",
                line_no,
                source,
            )
    return circuit


def load_bench(path, name=None):
    """Load a ``.bench`` file from *path*.

    Parse errors name the file and line; a missing or unreadable file
    raises the usual :class:`OSError`.
    """
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = str(path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, name=name, source=str(path))


def write_bench(circuit):
    """Render *circuit* back into ``.bench`` text."""
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({net})" for net in circuit.inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.outputs)
    lines.extend(f"{q} = DFF({d})" for q, d in circuit.dffs.items())
    for gate in circuit.gates.values():
        args = ", ".join(gate.fanins)
        lines.append(f"{gate.output} = {gate.kind}({args})")
    return "\n".join(lines) + "\n"


def save_bench(circuit, path):
    """Write *circuit* to *path* in ``.bench`` format."""
    with open(path, "w") as handle:
        handle.write(write_bench(circuit))
