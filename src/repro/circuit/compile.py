"""Compilation of a netlist into the flat form the simulators consume.

:func:`compile_circuit` assigns every net a dense integer index,
levelises the combinational part (primary inputs, flip-flop outputs and
constants at level 0) and precomputes fanout lists, so that all
simulation engines — three-valued, word-parallel and symbolic — share
one representation and one event-driven propagation order.
"""

from repro.circuit import gates as gatelib
from repro.circuit.validate import validate


class CompiledGate:
    """A gate in evaluation order."""

    __slots__ = ("pos", "out", "kind", "fanins", "level")

    def __init__(self, pos, out, kind, fanins, level):
        self.pos = pos  # position in topological order
        self.out = out  # output signal index
        self.kind = kind
        self.fanins = fanins  # tuple of signal indices
        self.level = level

    def __repr__(self):
        return f"CompiledGate(#{self.pos} s{self.out} = {self.kind}{self.fanins})"


class CompiledCircuit:
    """Flat, index-based view of a :class:`Circuit`.

    Attributes
    ----------
    names / index:
        bidirectional net-name <-> signal-index maps.
    pis:
        signal indices of primary inputs, in declaration order.
    ppis:
        signal indices of flip-flop outputs (present-state lines), in a
        fixed order that also defines the state-vector layout.
    dff_d:
        signal indices of the flip-flop D inputs, aligned with ``ppis``.
    pos:
        signal indices observed as primary outputs, in declaration order.
    gates:
        :class:`CompiledGate` list in topological (level) order.
    gate_at:
        per-signal position into ``gates`` (None for PIs and PPIs).
    fanout_gates:
        per-signal list of ``(gate_pos, pin)`` gate sinks.
    dff_sinks:
        per-signal list of flip-flop order indices whose D input reads it.
    po_sinks:
        per-signal list of primary-output positions observing it.
    level:
        per-signal combinational level (sources at 0).
    """

    def __init__(self, circuit):
        validate(circuit)
        self.circuit = circuit
        self.names = []
        self.index = {}

        def intern(name):
            idx = self.index.get(name)
            if idx is None:
                idx = len(self.names)
                self.index[name] = idx
                self.names.append(name)
            return idx

        self.pis = [intern(n) for n in circuit.inputs]
        self.ppis = [intern(q) for q in circuit.dffs]
        for gate_out in circuit.gates:
            intern(gate_out)

        self.num_signals = len(self.names)
        self.pos = [self.index[n] for n in circuit.outputs]
        self.dff_d = [self.index[d] for d in circuit.dffs.values()]

        self._levelise(circuit)
        self._build_fanout(circuit)

    # ------------------------------------------------------------------
    def _levelise(self, circuit):
        level = [0] * self.num_signals
        gate_at = [None] * self.num_signals
        order = []

        # Kahn's algorithm over the combinational gate graph.
        remaining = {}
        dependents = {i: [] for i in range(self.num_signals)}
        ready = []
        for out_name, gate in circuit.gates.items():
            out = self.index[out_name]
            nped = 0
            for src_name in gate.fanins:
                src = self.index[src_name]
                if src_name in circuit.gates:
                    nped += 1
                    dependents[src].append(out)
            if nped == 0:
                ready.append(out)
            remaining[out] = nped

        topo = []
        while ready:
            out = ready.pop()
            topo.append(out)
            for dep in dependents[out]:
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    ready.append(dep)
        if len(topo) != len(circuit.gates):
            raise AssertionError("cycle slipped through validation")

        for out in topo:
            gate = circuit.gates[self.names[out]]
            fanins = tuple(self.index[s] for s in gate.fanins)
            lvl = 1 + max((level[s] for s in fanins), default=0)
            level[out] = lvl
            cg = CompiledGate(len(order), out, gate.kind, fanins, lvl)
            gate_at[out] = cg.pos
            order.append(cg)

        # Evaluation order sorted by level for deterministic event queues.
        order.sort(key=lambda g: (g.level, g.out))
        for pos, cg in enumerate(order):
            cg.pos = pos
            gate_at[cg.out] = pos

        self.gates = order
        self.gate_at = gate_at
        self.level = level
        self.max_level = max(level) if level else 0

    def _build_fanout(self, circuit):
        self.fanout_gates = [[] for _ in range(self.num_signals)]
        self.dff_sinks = [[] for _ in range(self.num_signals)]
        self.po_sinks = [[] for _ in range(self.num_signals)]
        for cg in self.gates:
            for pin, src in enumerate(cg.fanins):
                self.fanout_gates[src].append((cg.pos, pin))
        for dff_idx, d in enumerate(self.dff_d):
            self.dff_sinks[d].append(dff_idx)
        for po_pos, net in enumerate(self.pos):
            self.po_sinks[net].append(po_pos)

    # ------------------------------------------------------------------
    def sink_count(self, sig):
        """Total number of sinks (gate pins + DFF D pins + POs) of *sig*."""
        return (
            len(self.fanout_gates[sig])
            + len(self.dff_sinks[sig])
            + len(self.po_sinks[sig])
        )

    def has_fanout_branches(self, sig):
        """True when *sig* is a fanout stem (more than one sink)."""
        return self.sink_count(sig) > 1

    @property
    def num_pis(self):
        return len(self.pis)

    @property
    def num_pos(self):
        return len(self.pos)

    @property
    def num_dffs(self):
        return len(self.ppis)

    def __repr__(self):
        return (
            f"CompiledCircuit({self.circuit.name!r}: "
            f"{self.num_signals} signals, {len(self.gates)} gates, "
            f"max level {self.max_level})"
        )


def compile_circuit(circuit):
    """Validate and compile *circuit* into a :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit)


def gate_eval_tables():
    """Sanity helper mapping gate kinds to their base op, for tests."""
    return {kind: gatelib.base_op(kind) for kind in gatelib.COMBINATIONAL_KINDS}
