"""Circuit statistics, used by the experiment drivers for table headers."""

from collections import Counter

from repro.circuit.compile import compile_circuit
from repro.circuit.regions import ffr_heads


def circuit_stats(circuit):
    """Return a dict of headline statistics for *circuit*."""
    compiled = compile_circuit(circuit)
    kinds = Counter(g.kind for g in circuit.gates.values())
    stems_with_branches = sum(
        1
        for sig in range(compiled.num_signals)
        if compiled.has_fanout_branches(sig)
    )
    return {
        "name": circuit.name,
        "inputs": circuit.num_inputs,
        "outputs": circuit.num_outputs,
        "dffs": circuit.num_dffs,
        "gates": circuit.num_gates,
        "signals": compiled.num_signals,
        "max_level": compiled.max_level,
        "gate_kinds": dict(kinds),
        "fanout_stems": stems_with_branches,
        "ffr_count": len(ffr_heads(compiled)),
    }


def format_stats(circuit):
    """One-line human-readable summary."""
    s = circuit_stats(circuit)
    return (
        f"{s['name']}: {s['inputs']} PI, {s['outputs']} PO, "
        f"{s['dffs']} DFF, {s['gates']} gates, depth {s['max_level']}"
    )
