"""Gate-level circuit substrate: netlists, ``.bench`` I/O, compilation.

The public surface:

* :class:`~repro.circuit.netlist.Circuit` — the netlist model,
* :func:`~repro.circuit.bench.parse_bench` / ``load_bench`` /
  ``write_bench`` / ``save_bench`` — ISCAS-89 ``.bench`` format I/O,
* :func:`~repro.circuit.compile.compile_circuit` — levelised flat form
  shared by all simulation engines,
* :func:`~repro.circuit.validate.validate` — structural checks,
* :mod:`~repro.circuit.gates` — gate-kind constants and semantics,
* :mod:`~repro.circuit.regions` — fanout-free-region analysis.
"""

from repro.circuit import gates
from repro.circuit.bench import (
    BenchParseError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.circuit.compile import CompiledCircuit, compile_circuit
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.stats import circuit_stats, format_stats
from repro.circuit.validate import CircuitError, validate

__all__ = [
    "gates",
    "Circuit",
    "Gate",
    "CircuitError",
    "validate",
    "CompiledCircuit",
    "compile_circuit",
    "BenchParseError",
    "parse_bench",
    "load_bench",
    "write_bench",
    "save_bench",
    "circuit_stats",
    "format_stats",
]
