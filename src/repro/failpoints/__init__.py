"""Deterministic failpoint injection for the whole engine.

A *failpoint* is a named site in production code where a test (or a
chaos drill) can deterministically inject a failure that is otherwise
only reachable by accident: a disk filling up mid-checkpoint, a torn
write under SIGKILL, an allocation failure at the worst possible BDD
node, a worker wedging mid-pipe-frame.  The sites themselves ship in
the production code; what fires at them is configured per process.

Design constraints, in order:

* **zero cost when disabled** — the registry is a module-level dict
  and :func:`fire` returns immediately when it is empty.  The one
  genuinely hot site (``bdd.alloc``, inside ``BddManager.mk``) does
  not even call :func:`fire`: the manager installs an alloc hook only
  when the site is armed at construction time, so a disabled build
  executes exactly the pre-failpoint instruction stream,
* **determinism** — every policy is a pure function of the site's own
  evaluation counter (and, for ``p:``, a private ``random.Random``
  string-seeded from the site name), never of wall-clock time or
  global RNG state.  Two runs with the same spec fire identically,
* **composability** — configuration merges per site, so the env var
  ``REPRO_FAILPOINTS``, the CLI ``--failpoints`` flag and the test
  API (:func:`set_failpoint`) can layer without clobbering each other.

Trigger grammar (the value side of ``site=policy``)::

    off            never fires (site stays registered, counters tick)
    once           fires on the first evaluation only
    every:N        fires on evaluation N, 2N, 3N, ...
    after:N        fires on every evaluation past the first N
    p:0.3          fires with probability 0.3 (seed 0)
    p:0.3@7        same, seeded: Random(f"7:{site}") per site

A full spec is a comma-separated list: ``REPRO_FAILPOINTS=
"checkpoint.write.enospc=once,bdd.alloc=after:5000"``.

The documented site catalog lives in :data:`CATALOG`; the chaos suite
sweeps it and ``docs/failpoints.md`` renders it.  Every site obeys the
engine-wide contract: an injected failure ends in identical verdicts
after recovery, a clean typed error, or quarantine — never a silent
wrong answer.
"""

import os
import random

from repro.runtime.errors import ReproError


class FailpointError(ReproError):
    """A failpoint spec that cannot be parsed."""

    def __init__(self, spec, reason):
        self.spec = spec
        self.reason = reason
        super().__init__(f"bad failpoint spec {spec!r}: {reason}")


class InjectedFailure(ReproError):
    """Raised by sites whose natural failure is not an OS error.

    Sites that model a specific failure (``OSError(ENOSPC)``, a
    ``MemoryError``) raise that; sites injecting a generic "this step
    failed" raise this, so tests and callers can tell an injected
    fault from an organic one by type.
    """

    def __init__(self, site):
        self.site = site
        super().__init__(f"failpoint {site!r} fired")


class Failpoint:
    """One armed site: a policy plus deterministic counters."""

    __slots__ = ("name", "policy", "_mode", "_arg", "_rng",
                 "evaluations", "fired")

    def __init__(self, name, policy):
        self.name = name
        self.policy = policy
        self.evaluations = 0
        self.fired = 0
        self._rng = None
        mode, _, arg = policy.partition(":")
        self._mode = mode
        self._arg = None
        if mode in ("off", "once"):
            if arg:
                raise FailpointError(policy, f"{mode} takes no argument")
        elif mode in ("every", "after"):
            try:
                self._arg = int(arg)
            except ValueError:
                raise FailpointError(policy, f"{mode}:N needs an integer")
            if self._arg < 1:
                raise FailpointError(policy, f"{mode}:N needs N >= 1")
        elif mode == "p":
            prob, _, seed = arg.partition("@")
            try:
                self._arg = float(prob)
            except ValueError:
                raise FailpointError(policy, "p:P needs a float in [0,1]")
            if not 0.0 <= self._arg <= 1.0:
                raise FailpointError(policy, "p:P needs P in [0,1]")
            # a private stream per site: firing of one site can never
            # shift another site's schedule, and the global random
            # module is untouched
            self._rng = random.Random(f"{seed or 0}:{name}")
        else:
            raise FailpointError(
                policy,
                "expected off | once | every:N | after:N | p:P[@seed]",
            )

    def should_fire(self):
        """Advance the evaluation counter; True when the policy trips."""
        self.evaluations += 1
        mode = self._mode
        if mode == "off":
            return False
        if mode == "once":
            hit = self.evaluations == 1
        elif mode == "every":
            hit = self.evaluations % self._arg == 0
        elif mode == "after":
            hit = self.evaluations > self._arg
        else:  # p
            hit = self._rng.random() < self._arg
        if hit:
            self.fired += 1
        return hit


#: armed sites of this process: name -> Failpoint.  Module-level so
#: ``fire`` is one global load and a truth test when nothing is armed.
_REGISTRY = {}

#: observer hook: called with the site name on every fire, installed
#: by the campaign/worker to emit trace events and metrics.  A single
#: slot with save/restore (see :func:`set_observer`) keeps nesting
#: (audit inside campaign, shard inside service job) well defined.
_OBSERVER = None

#: env var read once at import; merged under any explicit configure()
ENV_VAR = "REPRO_FAILPOINTS"


def parse_spec(spec):
    """``"a=once,b=every:3"`` -> {"a": "once", "b": "every:3"}."""
    table = {}
    if not spec:
        return table
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, policy = chunk.partition("=")
        name = name.strip()
        policy = policy.strip()
        if not sep or not name or not policy:
            raise FailpointError(chunk, "expected site=policy")
        table[name] = policy
    return table


def configure(spec, replace=False):
    """Arm sites from a ``site=policy,...`` spec string (or dict).

    Merges per site by default (later wins); ``replace=True`` drops
    everything armed before.  Counters of re-armed sites reset, which
    is what makes shipping a spec to a freshly forked worker
    deterministic regardless of what the parent already evaluated.
    """
    table = spec if isinstance(spec, dict) else parse_spec(spec)
    if replace:
        _REGISTRY.clear()
    for name, policy in table.items():
        _REGISTRY[name] = Failpoint(name, policy)


def set_failpoint(name, policy):
    """Test API: arm (or re-arm, resetting counters) a single site."""
    _REGISTRY[name] = Failpoint(name, policy)


def clear(name=None):
    """Disarm one site, or every site when *name* is None."""
    if name is None:
        _REGISTRY.clear()
    else:
        _REGISTRY.pop(name, None)


def is_armed(name):
    """True when *name* has a policy other than ``off`` registered."""
    point = _REGISTRY.get(name)
    return point is not None and point._mode != "off"


def armed_count():
    """Number of sites with a live (non-``off``) policy."""
    return sum(1 for p in _REGISTRY.values() if p._mode != "off")


def active_spec():
    """The current registry as a spec string (for shipping to
    workers); empty string when nothing is armed."""
    return ",".join(
        f"{name}={point.policy}" for name, point in sorted(_REGISTRY.items())
    )


def fired_counts():
    """{site: times fired} for every armed site (0 entries included)."""
    return {name: point.fired for name, point in sorted(_REGISTRY.items())}


def set_observer(observer):
    """Install *observer* (called with the site name per fire) and
    return the previous one, so callers can restore it in a finally."""
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = observer
    return previous


def fire(name):
    """True when the armed policy for *name* says to inject now.

    The disabled-path cost is one global dict load and a truth test;
    sites are expected to guard any expensive context assembly behind
    the returned bool.
    """
    if not _REGISTRY:
        return False
    point = _REGISTRY.get(name)
    if point is None or not point.should_fire():
        return False
    if _OBSERVER is not None:
        try:
            _OBSERVER(name)
        except Exception:
            pass  # observability must never alter injection behaviour
    return True


class Site:
    """One documented failpoint site (for docs, fsck, chaos sweeps)."""

    __slots__ = ("name", "layer", "injects", "outcome")

    def __init__(self, name, layer, injects, outcome):
        self.name = name
        self.layer = layer
        self.injects = injects
        self.outcome = outcome


#: the documented site catalog.  ``docs/failpoints.md`` renders it,
#: the parametrized chaos sweep iterates it, and every entry's
#: ``outcome`` states the guaranteed end state of an injection:
#: identical verdicts after recovery, a clean typed error, or
#: quarantine.
CATALOG = (
    Site("checkpoint.write.enospc", "runtime.checkpoint",
         "OSError(ENOSPC) mid-record in the campaign checkpoint writer; "
         "the partial record is truncated back out",
         "typed CheckpointError; resume after space returns reproduces "
         "baseline verdicts"),
    Site("checkpoint.write.torn", "runtime.checkpoint",
         "a torn (half-written, unsynced) record left on disk, as a "
         "SIGKILL mid-write would",
         "reader skips the torn tail; resume from the prior record "
         "reproduces baseline verdicts"),
    Site("checkpoint.fsync.before", "runtime.checkpoint",
         "OSError(EIO) before fsync of a checkpoint record",
         "typed CheckpointError, record rolled back; file stays valid"),
    Site("checkpoint.fsync.after", "runtime.checkpoint",
         "OSError(EIO) after fsync of a checkpoint record",
         "typed CheckpointError, record rolled back; file stays valid"),
    Site("fabric.checkpoint.write.enospc", "runtime.fabric",
         "ENOSPC mid-record in the fabric shard checkpoint writer",
         "typed CheckpointError; fabric resume reproduces baseline "
         "verdicts exactly"),
    Site("fabric.checkpoint.write.torn", "runtime.fabric",
         "torn record in the fabric shard checkpoint",
         "reader skips the torn tail; the uncovered shard re-runs"),
    Site("audit.checkpoint.write.enospc", "audit",
         "ENOSPC mid-record in the audit checkpoint writer",
         "typed CheckpointError; audit resume re-verifies the "
         "uncovered faults"),
    Site("audit.checkpoint.write.torn", "audit",
         "torn record in the audit checkpoint",
         "reader skips the torn tail; the finding is re-derived"),
    Site("journal.write.enospc", "service",
         "ENOSPC mid-record in the service job journal",
         "typed CheckpointError fails the API call; admitted jobs and "
         "the journal stay consistent"),
    Site("journal.write.torn", "service",
         "torn record in the service job journal",
         "replay skips the torn tail; the job replays from its last "
         "durable state"),
    Site("bdd.alloc", "bdd",
         "MemoryError at the Nth BDD node allocation",
         "surrender through the demotion ladder (3v fallback) — "
         "conservative verdicts, never invented detections"),
    Site("pressure.evict", "bdd.pressure",
         "the cache-eviction relief rung fails",
         "MemoryPressureExceeded surrender through existing demotion"),
    Site("pressure.gc", "bdd.pressure",
         "the frame-boundary GC relief rung fails",
         "MemoryPressureExceeded surrender through existing demotion"),
    Site("pressure.rescue", "bdd.pressure",
         "the reorder-rescue relief rung fails",
         "MemoryPressureExceeded surrender through existing demotion"),
    Site("fabric.heartbeat.drop", "runtime.fabric",
         "a worker heartbeat is silently dropped",
         "verdicts unchanged; at worst the hang watchdog kills and the "
         "shard retries to an identical result"),
    Site("fabric.heartbeat.dup", "runtime.fabric",
         "a worker heartbeat is sent twice",
         "verdicts unchanged; coordinator bookkeeping is idempotent"),
    Site("fabric.worker.stall", "runtime.fabric",
         "a worker wedges (alive, silent) before running its shard",
         "hang watchdog kills after hang_grace missed beats; the shard "
         "retries under backoff/bisection to identical verdicts or "
         "quarantine"),
    Site("fabric.pipe.truncate", "runtime.fabric",
         "a worker writes half a result frame then wedges",
         "coordinator buffers the partial frame without blocking; the "
         "hang watchdog reaps the worker and the shard retries to "
         "identical verdicts"),
    Site("fabric.respawn.fail", "runtime.fabric",
         "spawning a replacement worker raises OSError",
         "tolerated and retried; three consecutive failures raise a "
         "typed WorkerCrashed"),
    Site("service.result.crash", "service",
         "hard process exit between the result write and the terminal "
         "journal record",
         "restart requeues the job from the journal and reproduces the "
         "verdict digest"),
    Site("disk.statvfs", "runtime.disk",
         "the free-space probe lies that the filesystem is full "
         "(statvfs reports zero available bytes)",
         "disk relief ladder runs — compact, stretch — then a clean "
         "checkpointed DiskPressureExceeded surrender, resumable; "
         "never a crash or a wrong verdict"),
    Site("disk.compact.crash", "runtime.disk",
         "failure between the finished compacted temp file and the "
         "rename over the original checkpoint",
         "original file untouched, temp file removed; a retried "
         "compaction (or a plain resume) reproduces baseline verdicts"),
)

#: CATALOG as {name: Site} for lookups
SITES = {site.name: site for site in CATALOG}


# arm anything the environment asks for, once, at import
_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    configure(_env_spec)
del _env_spec
