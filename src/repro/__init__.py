"""repro — Symbolic Fault Simulation for Sequential Circuits and the
Multiple Observation Time Test Strategy (DAC 1995 reproduction).

Quickstart::

    from repro import (
        compile_circuit, collapse_faults, FaultSet,
        random_sequence_for, eliminate_x_redundant, fault_simulate_3v,
        hybrid_fault_simulate,
    )
    from repro.circuits import s27

    circuit = s27()
    compiled = compile_circuit(circuit)
    faults, _ = collapse_faults(compiled)
    fault_set = FaultSet(faults)
    sequence = random_sequence_for(compiled, 100, seed=1)

    eliminate_x_redundant(compiled, sequence, fault_set)   # ID_X-red
    fault_simulate_3v(compiled, sequence, fault_set)       # 3-valued pass
    hybrid_fault_simulate(compiled, sequence, fault_set,   # symbolic MOT
                          strategy="MOT")
    print(fault_set.counts())
"""

from repro.circuit import (
    Circuit,
    CompiledCircuit,
    compile_circuit,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.faults import (
    Fault,
    FaultSet,
    collapse_faults,
    enumerate_faults,
)
from repro.faults.model import stem_fault
from repro.engines import (
    fault_simulate_3v,
    fault_simulate_3v_parallel,
    simulate_sequence,
)
from repro.xred import eliminate_x_redundant, id_x_red
from repro.symbolic import (
    hybrid_fault_simulate,
    symbolic_fault_simulate,
    symbolic_output_sequence,
)
from repro.sequences import (
    deterministic_sequence,
    load_sequence,
    random_sequence,
    random_sequence_for,
    save_sequence,
)
from repro.analysis import (
    TransitionSystem,
    find_synchronizing_sequence,
    is_synchronizable,
)
from repro.atpg import generate_mot_tests
from repro.diagnosis import diagnose
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    TraceSchemaError,
)
from repro.reporting import CoverageReport, coverage_report
from repro.sequences.compaction import compact_sequence
from repro.runtime import (
    BudgetExceeded,
    CampaignResult,
    CheckpointError,
    CircuitFormatError,
    DegradationExhausted,
    DegradationLadder,
    ReproError,
    ResourceGovernor,
    SignalGuard,
    resume_campaign,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CompiledCircuit",
    "compile_circuit",
    "parse_bench",
    "load_bench",
    "write_bench",
    "save_bench",
    "Fault",
    "FaultSet",
    "stem_fault",
    "enumerate_faults",
    "collapse_faults",
    "simulate_sequence",
    "fault_simulate_3v",
    "fault_simulate_3v_parallel",
    "id_x_red",
    "eliminate_x_redundant",
    "symbolic_fault_simulate",
    "hybrid_fault_simulate",
    "symbolic_output_sequence",
    "random_sequence",
    "random_sequence_for",
    "deterministic_sequence",
    "save_sequence",
    "load_sequence",
    "TransitionSystem",
    "find_synchronizing_sequence",
    "is_synchronizable",
    "generate_mot_tests",
    "diagnose",
    "compact_sequence",
    "CoverageReport",
    "coverage_report",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "TraceSchemaError",
    "ReproError",
    "BudgetExceeded",
    "CheckpointError",
    "CircuitFormatError",
    "DegradationExhausted",
    "ResourceGovernor",
    "DegradationLadder",
    "SignalGuard",
    "CampaignResult",
    "run_campaign",
    "resume_campaign",
    "__version__",
]
