"""The one ISCAS-89 benchmark small enough to embed verbatim: s27.

The larger ISCAS-89 circuits the paper evaluates are not
redistributable from memory; the synthetic suite in
:mod:`repro.circuits.generators` stands in for them (see DESIGN.md,
"Substitutions").
"""

from repro.circuit.bench import parse_bench

S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def s27():
    """The s27 benchmark circuit: 4 PI, 1 PO, 3 DFF, 10 gates."""
    return parse_bench(S27_BENCH, name="s27")
