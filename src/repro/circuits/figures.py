"""The example circuits of the paper's Figures 1-3.

The paper prints waveform-style figures rather than complete netlists,
so these are representative reconstructions exhibiting *exactly* the
phenomenon each figure demonstrates (asserted by the test suite):

* **Figure 1** — a stuck-at fault not detected with respect to the SOT
  strategy for the test sequence ([1,0], [1,0]); the fault-free outputs
  are never well-defined, yet the MOT strategy detects the fault
  (and rMOT cannot).
* **Figure 2** — the test sequence drives the *fault-free* circuit into
  a defined state but not the faulty one; SOT still fails.  In our
  reconstruction the rMOT strategy detects the fault using the defined
  fault-free outputs.
* **Figure 3** — the worked detection-function example: the fault-free
  output sequence is (x, x) and the faulty one is (~y, y), hence
  ``D(x,y) = [x == ~y] * [x == y] == 0`` and the fault is
  MOT-detectable (Lemma 1).

Each factory returns ``(circuit, fault_net, fault_value, sequence)``;
build the fault with
:func:`repro.faults.model.stem_fault` after compiling.
"""

from repro.circuit.netlist import Circuit


def figure1_circuit():
    """SOT-undetectable, MOT-detectable, rMOT-undetectable."""
    c = Circuit("fig1")
    c.add_input("a")
    c.add_input("b")
    c.add_dff("q", "nq")
    c.add_gate("o", "XOR", ["q", "b"])
    c.add_gate("nq", "XOR", ["o", "a"])
    c.add_output("o")
    sequence = [(1, 0), (1, 0)]
    return c, "b", 1, sequence


def figure2_circuit():
    """Fault-free circuit initialises, faulty one does not; SOT fails
    but rMOT succeeds."""
    c = Circuit("fig2")
    c.add_input("a")
    c.add_dff("q", "nq")
    c.add_gate("nq", "AND", ["q", "a"])
    c.add_gate("o1", "XNOR", ["q", "a"])
    c.add_gate("o2", "BUF", ["q"])
    c.add_output("o1")
    c.add_output("o2")
    sequence = [(0,), (0,), (0,)]
    return c, "a", 1, sequence


def figure3_circuit():
    """The worked MOT example of Section IV."""
    c = Circuit("fig3")
    c.add_input("a")
    c.add_input("b")
    c.add_dff("q", "nq")
    c.add_gate("ab", "AND", ["a", "b"])
    c.add_gate("nq", "XOR", ["q", "ab"])
    c.add_gate("o", "XOR", ["q", "b"])
    c.add_output("o")
    sequence = [(1, 0), (1, 0)]
    return c, "b", 1, sequence
