"""Benchmark circuits: the embedded s27, the paper's figure examples,
synthetic ISCAS-89 stand-ins, and the registry mapping paper rows to
stand-ins."""

from repro.circuits.iscas import S27_BENCH, s27
from repro.circuits.figures import (
    figure1_circuit,
    figure2_circuit,
    figure3_circuit,
)
from repro.circuits import generators
from repro.circuits.registry import (
    PAPER_ROWS,
    available,
    get_circuit,
    paper_row_circuit,
)

__all__ = [
    "s27",
    "S27_BENCH",
    "figure1_circuit",
    "figure2_circuit",
    "figure3_circuit",
    "generators",
    "PAPER_ROWS",
    "available",
    "get_circuit",
    "paper_row_circuit",
]
