"""Benchmark circuit registry and the paper-row mapping.

Every experiment driver prints, for each reproduced table row, both the
ISCAS-89 circuit the row stands in for and the synthetic circuit that
was actually simulated (DESIGN.md, "Substitutions").
"""

from repro.circuits import generators as gen
from repro.circuits.figures import (
    figure1_circuit,
    figure2_circuit,
    figure3_circuit,
)
from repro.circuits.iscas import s27

_FACTORIES = {
    "s27": s27,
    "fig1": lambda: figure1_circuit()[0],
    "fig2": lambda: figure2_circuit()[0],
    "fig3": lambda: figure3_circuit()[0],
    "ctr8": lambda: gen.counter(8),
    "ctr12": lambda: gen.counter(12),
    "ctr16": lambda: gen.counter(16),
    "ctr24": lambda: gen.counter(24),
    "rctr8": lambda: gen.resettable_counter(8),
    "shift8": lambda: gen.shift_register(8),
    "shift16": lambda: gen.shift_register(16),
    "tlc": gen.traffic_light,
    "syncc6": lambda: gen.sync_controller(6),
    "syncc10": lambda: gen.sync_controller(10),
    "lfsr8": lambda: gen.lfsr(8, taps=(0, 3, 4, 7)),
    "lfsr12": lambda: gen.lfsr(12, taps=(0, 5, 8, 11)),
    "nlfsr12": lambda: gen.nlfsr(12, seed=7),
    "nlfsr20": lambda: gen.nlfsr(20, seed=11),
    "johnson8": lambda: gen.johnson(8),
    "rfsm21a": lambda: gen.random_fsm(21, num_inputs=2, seed=3,
                                      reset="partial"),
    "rfsm21b": lambda: gen.random_fsm(21, num_inputs=2, seed=4,
                                      reset="partial"),
    "rfsm21c": lambda: gen.random_fsm(21, num_inputs=2, seed=5,
                                      reset="partial"),
    "rfsm16f": lambda: gen.random_fsm(16, num_inputs=2, seed=9),
    "rfsm13r": lambda: gen.random_fsm(13, num_inputs=2, seed=6,
                                      resettable=True),
    "rfsm32r": lambda: gen.random_fsm(32, num_inputs=2, num_outputs=4,
                                      seed=8, resettable=True),
    "pipe8x3": lambda: gen.pipeline_datapath(8, 3),
    "pipe12x4": lambda: gen.pipeline_datapath(12, 4),
    "gray8": lambda: gen.gray_counter(8),
    "ring10": lambda: gen.one_hot_ring(10),
    "fifo5": lambda: gen.fifo_controller(5),
    "mac10": lambda: gen.serial_mac(10),
}

# paper row -> (synthetic stand-in, why it is a faithful stand-in)
PAPER_ROWS = [
    ("s208.1", "ctr8", "8-bit divider/counter, no reset: nearly all "
                       "faults X-redundant, MOT recovers many"),
    ("s298", "tlc", "small traffic-light-style controller"),
    ("s344", "shift8", "datapath initialisable through the inputs"),
    ("s349", "shift16", "datapath initialisable through the inputs"),
    ("s382", "rfsm21a", "controller, high X-redundant fraction"),
    ("s386", "rfsm13r", "resettable controller"),
    ("s400", "rfsm21b", "re-synthesis of the s382-class machine"),
    ("s420.1", "ctr16", "16-bit divider/counter, no reset"),
    ("s444", "rfsm21c", "re-synthesis of the s382-class machine"),
    ("s510", "syncc6", "fully synchronisable yet three-valued-opaque"),
    ("s526", "lfsr8", "autonomous feedback register"),
    ("s641", "pipe8x3", "pipelined datapath, flushes through"),
    ("s713", "pipe12x4", "pipelined datapath, flushes through"),
    ("s820", "rfsm32r", "larger resettable controller"),
    ("s832", "rfsm32r", "larger resettable controller (re-synthesis)"),
    ("s838.1", "ctr24", "24-bit divider/counter, no reset"),
    ("s953", "johnson8", "ring counter with decoded outputs"),
    ("s1196", "pipe12x4", "nearly combinational pipeline"),
    ("s1423", "nlfsr12", "deep sequential logic, OBDD growth"),
    ("s5378", "nlfsr20", "large, triggers the hybrid fallback"),
    ("s953", "gray8", "counter-style machine with XOR output decode"),
    ("s1488", "ring10", "one-hot sequencer, initialisable"),
    ("s1494", "fifo5", "resettable up/down controller with decodes"),
    ("s9234.1", "mac10", "deep arithmetic recurrence, OBDD stressor"),
]


def available():
    """Sorted list of registered circuit names."""
    return sorted(_FACTORIES)


def get_circuit(name):
    """Build a fresh instance of the registered circuit *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown circuit {name!r}; available: {', '.join(available())}"
        ) from None
    return factory()


def paper_row_circuit(paper_name):
    """The synthetic stand-in (and note) for an ISCAS-89 row name."""
    for paper, ours, note in PAPER_ROWS:
        if paper == paper_name:
            return get_circuit(ours), note
    raise ValueError(f"no stand-in recorded for {paper_name!r}")
