"""Synthetic sequential benchmark circuits.

The ISCAS-89 netlists the paper evaluates cannot be redistributed from
memory, so this module generates circuits from the same *structure
classes*, which is what drives every phenomenon the paper measures
(see DESIGN.md, "Substitutions"):

* :func:`counter` — n-bit binary counter without reset: under the
  three-valued logic every state bit stays X forever, so almost the
  whole fault universe is X-redundant, while MOT recovers detections
  (the s208.1 / s420.1 / s838.1 "divider" profile);
* :func:`shift_register` — initialisable through the data path
  (the low-X-redundancy s344/s349 profile);
* :func:`sync_controller` — fully synchronisable in two-valued logic
  but opaque to the three-valued logic (the s510 profile: every fault
  is X-redundant, yet the symbolic strategies detect most of them);
* :func:`lfsr` / :func:`nlfsr` — autonomous feedback registers; the
  nonlinear variant grows OBDDs quickly and exercises the hybrid
  fallback (the s838.1/s1423/s5378 behaviour);
* :func:`johnson` — ring-style counter with decoded outputs;
* :func:`random_fsm` — synthesised random Moore machines, optionally
  resettable (the s298/s386/s820 controller profile);
* :func:`traffic_light` — a small hand-written controller;
* :func:`pipeline_datapath` — registered datapath that flushes
  through, so conventional fault simulation already does well
  (the s1196/s35932 profile).

All generators are deterministic (seeded where randomised).
"""

import random

from repro.circuit.netlist import Circuit


def counter(bits, name=None):
    """n-bit binary up-counter with enable; no reset.

    Outputs: the carry-out ``tc`` (terminal count) and the MSB.
    """
    c = Circuit(name or f"ctr{bits}")
    c.add_input("en")
    carry = "en"
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"nq{i}")
        c.add_gate(f"nq{i}", "XOR", [q, carry])
        nxt = f"c{i + 1}"
        c.add_gate(nxt, "AND", [carry, q])
        carry = nxt
    c.add_gate("tc", "BUF", [carry])
    c.add_gate("msb", "BUF", [f"q{bits - 1}"])
    c.add_output("tc")
    c.add_output("msb")
    return c


def resettable_counter(bits, name=None):
    """Like :func:`counter` but with a synchronous reset input."""
    c = Circuit(name or f"rctr{bits}")
    c.add_input("en")
    c.add_input("rst")
    c.add_gate("nrst", "NOT", ["rst"])
    carry = "en"
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"nq{i}")
        c.add_gate(f"x{i}", "XOR", [q, carry])
        c.add_gate(f"nq{i}", "AND", [f"x{i}", "nrst"])
        nxt = f"c{i + 1}"
        c.add_gate(nxt, "AND", [carry, q])
        carry = nxt
    c.add_gate("tc", "BUF", [carry])
    c.add_gate("msb", "BUF", [f"q{bits - 1}"])
    c.add_output("tc")
    c.add_output("msb")
    return c


def shift_register(bits, name=None):
    """Serial-in shift register with an output tap at the end and a
    parity observation across the stages."""
    c = Circuit(name or f"shift{bits}")
    c.add_input("sin")
    prev = "sin"
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"d{i}")
        c.add_gate(f"d{i}", "BUF", [prev])
        prev = q
    c.add_gate("sout", "BUF", [prev])
    parity = "q0"
    for i in range(1, bits):
        nxt = f"p{i}"
        c.add_gate(nxt, "XOR", [parity, f"q{i}"])
        parity = nxt
    c.add_gate("parity", "BUF", [parity])
    c.add_output("sout")
    c.add_output("parity")
    return c


def lfsr(bits, taps=None, name=None):
    """Fibonacci LFSR with an enable input; autonomous otherwise.

    The feedback is the XOR of the tapped stages; with ``en`` low the
    register holds (built from AND/OR muxing that three-valued logic
    can resolve)."""
    if taps is None:
        taps = (0, bits - 1)
    c = Circuit(name or f"lfsr{bits}")
    c.add_input("en")
    c.add_gate("nen", "NOT", ["en"])
    feedback = f"q{taps[0]}"
    for pos, tap in enumerate(taps[1:], start=1):
        nxt = f"fb{pos}"
        c.add_gate(nxt, "XOR", [feedback, f"q{tap}"])
        feedback = nxt
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"d{i}")
        src = feedback if i == 0 else f"q{i - 1}"
        c.add_gate(f"sh{i}", "AND", [src, "en"])
        c.add_gate(f"ho{i}", "AND", [q, "nen"])
        c.add_gate(f"d{i}", "OR", [f"sh{i}", f"ho{i}"])
    c.add_gate("out", "BUF", [f"q{bits - 1}"])
    c.add_output("out")
    return c


def nlfsr(bits, seed=7, name=None):
    """Nonlinear feedback shift register.

    The feedback XORs random AND-pairs of stages, so the symbolic state
    functions deepen every frame — this is the generator that drives
    OBDD growth and exercises the hybrid simulator's fallback."""
    rng = random.Random(seed)
    c = Circuit(name or f"nlfsr{bits}")
    c.add_input("din")
    terms = []
    n_terms = max(2, bits // 3)
    for t in range(n_terms):
        a = rng.randrange(bits)
        b = rng.randrange(bits)
        if a == b:
            b = (b + 1) % bits
        term = f"t{t}"
        c.add_gate(term, "AND", [f"q{a}", f"q{b}"])
        terms.append(term)
    feedback = terms[0]
    for pos, term in enumerate(terms[1:], start=1):
        nxt = f"fb{pos}"
        c.add_gate(nxt, "XOR", [feedback, term])
        feedback = nxt
    c.add_gate("fbi", "XOR", [feedback, "din"])
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"d{i}")
        src = "fbi" if i == 0 else f"q{i - 1}"
        c.add_gate(f"d{i}", "BUF", [src])
    c.add_gate("out", "XOR", [f"q{bits - 1}", f"q{bits // 2}"])
    c.add_output("out")
    return c


def johnson(bits, name=None):
    """Johnson (twisted-ring) counter with decoded outputs; no reset."""
    c = Circuit(name or f"jc{bits}")
    c.add_input("en")
    c.add_gate("nen", "NOT", ["en"])
    c.add_gate("twist", "NOT", [f"q{bits - 1}"])
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"d{i}")
        src = "twist" if i == 0 else f"q{i - 1}"
        c.add_gate(f"sh{i}", "AND", [src, "en"])
        c.add_gate(f"ho{i}", "AND", [q, "nen"])
        c.add_gate(f"d{i}", "OR", [f"sh{i}", f"ho{i}"])
    c.add_gate("all1", "AND", [f"q{0}", f"q{bits - 1}"])
    c.add_gate("edge", "XOR", ["q0", f"q{bits - 1}"])
    c.add_output("all1")
    c.add_output("edge")
    return c


def sync_controller(bits, name=None):
    """Fully synchronisable machine that three-valued logic cannot
    initialise (the s510 profile).

    Each state bit is loaded through the reconvergent pattern
    ``q' = q XOR (q XOR src)`` which equals ``src`` in Boolean logic
    but evaluates to X under the three-valued logic whenever ``q = X``
    — so the machine synchronises fully in two-valued simulation while
    staying opaque to a three-valued simulator for every sequence."""
    c = Circuit(name or f"syncc{bits}")
    c.add_input("d")
    c.add_input("g")
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"nq{i}")
        src = "d" if i == 0 else f"q{i - 1}"
        c.add_gate(f"a{i}", "XOR", [q, src])
        c.add_gate(f"nq{i}", "XOR", [q, f"a{i}"])
    # observation logic: gated parity and conjunction chains
    parity = "q0"
    for i in range(1, bits):
        nxt = f"p{i}"
        c.add_gate(nxt, "XOR", [parity, f"q{i}"])
        parity = nxt
    c.add_gate("po_par", "AND", [parity, "g"])
    conj = "q0"
    for i in range(1, bits):
        nxt = f"k{i}"
        c.add_gate(nxt, "AND", [conj, f"q{i}"])
        conj = nxt
    c.add_gate("po_all", "BUF", [conj])
    c.add_output("po_par")
    c.add_output("po_all")
    return c


# ----------------------------------------------------------------------
# FSM synthesis
# ----------------------------------------------------------------------
def synthesize_moore_fsm(
    name, num_state_bits, num_inputs, next_state_fn, output_fn, num_outputs
):
    """Two-level synthesis of a Moore machine into a gate netlist.

    *next_state_fn(state, inputs)* maps integer-coded state and input
    tuple to the next integer state; *output_fn(state)* to an output
    bit tuple.  Minterms are enumerated exhaustively, so keep
    ``num_state_bits + num_inputs`` small (<= 12 or so).
    """
    c = Circuit(name)
    input_names = [f"i{j}" for j in range(num_inputs)]
    for net in input_names:
        c.add_input(net)
    state_names = [f"s{j}" for j in range(num_state_bits)]
    for j, q in enumerate(state_names):
        c.add_dff(q, f"ns{j}")
    # complemented literals
    for net in input_names + state_names:
        c.add_gate(f"{net}_n", "NOT", [net])

    def minterm_net(label, state_code, input_code):
        literals = []
        for j in range(num_state_bits):
            bit = (state_code >> j) & 1
            literals.append(state_names[j] if bit else f"s{j}_n")
        for j in range(num_inputs):
            bit = (input_code >> j) & 1
            literals.append(input_names[j] if bit else f"i{j}_n")
        if len(literals) == 1:
            c.add_gate(label, "BUF", [literals[0]])
        else:
            c.add_gate(label, "AND", literals)
        return label

    # next-state logic
    ns_minterms = [[] for _ in range(num_state_bits)]
    counter_id = 0
    for state_code in range(1 << num_state_bits):
        for input_code in range(1 << num_inputs):
            inputs = tuple(
                (input_code >> j) & 1 for j in range(num_inputs)
            )
            nxt = next_state_fn(state_code, inputs)
            if nxt == 0:
                continue  # no minterm needed for the all-zero target
            label = None
            for j in range(num_state_bits):
                if (nxt >> j) & 1:
                    if label is None:
                        label = minterm_net(
                            f"m{counter_id}", state_code, input_code
                        )
                        counter_id += 1
                    ns_minterms[j].append(label)
    for j in range(num_state_bits):
        terms = ns_minterms[j]
        if not terms:
            c.add_gate(f"ns{j}", "CONST0", [])
        elif len(terms) == 1:
            c.add_gate(f"ns{j}", "BUF", [terms[0]])
        else:
            c.add_gate(f"ns{j}", "OR", terms)

    # output logic (Moore: function of state only)
    out_minterms = [[] for _ in range(num_outputs)]
    for state_code in range(1 << num_state_bits):
        bits = output_fn(state_code)
        label = None
        for j in range(num_outputs):
            if bits[j]:
                if label is None:
                    literals = []
                    for k in range(num_state_bits):
                        bit = (state_code >> k) & 1
                        literals.append(
                            state_names[k] if bit else f"s{k}_n"
                        )
                    label = f"om{state_code}"
                    if len(literals) == 1:
                        c.add_gate(label, "BUF", [literals[0]])
                    else:
                        c.add_gate(label, "AND", literals)
                out_minterms[j].append(label)
    for j in range(num_outputs):
        terms = out_minterms[j]
        if not terms:
            c.add_gate(f"o{j}", "CONST0", [])
        elif len(terms) == 1:
            c.add_gate(f"o{j}", "BUF", [terms[0]])
        else:
            c.add_gate(f"o{j}", "OR", terms)
        c.add_output(f"o{j}")
    return c


def random_fsm(
    num_states,
    num_inputs=1,
    num_outputs=2,
    seed=1,
    resettable=False,
    reset=None,
    name=None,
):
    """A synthesised random Moore machine.

    *reset* selects the initialisation profile:

    * ``None`` — free-running, opaque to the three-valued logic,
    * ``"full"`` — input 0 is a synchronous reset to state 0 (the
      machine is fully three-valued-initialisable),
    * ``"partial"`` — input 0 clears all state bits except the LSB, so
      the three-valued logic resolves most but not all of the state
      (the s382/s400/s444 profile: a sizeable but partial X-redundant
      fraction).

    ``resettable=True`` is kept as an alias for ``reset="full"``.
    """
    if resettable and reset is None:
        reset = "full"
    if reset not in (None, "full", "partial"):
        raise ValueError(f"unknown reset profile {reset!r}")
    rng = random.Random(seed)
    num_state_bits = max(1, (num_states - 1).bit_length())
    table = {}
    for state in range(1 << num_state_bits):
        for input_code in range(1 << num_inputs):
            table[(state, input_code)] = rng.randrange(num_states)
    outputs = {
        state: tuple(rng.randrange(2) for _ in range(num_outputs))
        for state in range(1 << num_state_bits)
    }

    def next_state(state, inputs):
        if reset == "full" and inputs[0]:
            return 0
        if reset == "partial" and inputs[0]:
            return state & 1
        input_code = sum(bit << j for j, bit in enumerate(inputs))
        return table[(state, input_code)]

    def output(state):
        return outputs[state]

    if name is None:
        flavor = {"full": "rfsm_r", "partial": "rfsm_p"}.get(reset, "rfsm")
        name = f"{flavor}{num_states}_{seed}"
    return synthesize_moore_fsm(
        name, num_state_bits, num_inputs, next_state, output, num_outputs
    )


def traffic_light(name="tlc"):
    """A small hand-specified traffic-light controller (s298 flavour).

    Two phases x three timer steps; input 0 requests the cross phase,
    input 1 is a synchronous reset (s298 is three-valued-initialisable,
    so its stand-in must be too); outputs are the green lines and a
    timer-expired flag.
    """
    GREEN_NS, GREEN_EW = 0, 1

    def next_state(state, inputs):
        request, reset = inputs
        if reset:
            return 0
        phase = state & 1
        timer = (state >> 1) & 3
        if timer < 2:
            return phase | ((timer + 1) << 1)
        if request:
            return (1 - phase) | (0 << 1)
        return phase | (timer << 1)

    def output(state):
        phase = state & 1
        timer = (state >> 1) & 3
        return (
            1 if phase == GREEN_NS else 0,
            1 if phase == GREEN_EW else 0,
            1 if timer >= 2 else 0,
        )

    return synthesize_moore_fsm(name, 3, 2, next_state, output, 3)


def gray_counter(bits, name=None):
    """Gray-code counter with enable; no reset.

    Built as a binary counter core with Gray-encoded outputs, so its
    three-valued profile matches :func:`counter` while its output logic
    exercises XOR cones.
    """
    c = Circuit(name or f"gray{bits}")
    c.add_input("en")
    carry = "en"
    for i in range(bits):
        q = f"q{i}"
        c.add_dff(q, f"nq{i}")
        c.add_gate(f"nq{i}", "XOR", [q, carry])
        nxt = f"c{i + 1}"
        c.add_gate(nxt, "AND", [carry, q])
        carry = nxt
    for i in range(bits - 1):
        c.add_gate(f"g{i}", "XOR", [f"q{i}", f"q{i + 1}"])
        c.add_output(f"g{i}")
    c.add_gate(f"g{bits - 1}", "BUF", [f"q{bits - 1}"])
    c.add_output(f"g{bits - 1}")
    return c


def one_hot_ring(slots, name=None):
    """One-hot ring sequencer with a synchronous ``start`` that loads
    the hot bit into slot 0 (so the machine is initialisable), plus a
    decoded "illegal state" alarm output.
    """
    c = Circuit(name or f"ring{slots}")
    c.add_input("start")
    c.add_gate("nstart", "NOT", ["start"])
    for i in range(slots):
        q = f"q{i}"
        c.add_dff(q, f"d{i}")
        src = f"q{(i - 1) % slots}"
        c.add_gate(f"sh{i}", "AND", [src, "nstart"])
        if i == 0:
            c.add_gate(f"d{i}", "OR", [f"sh{i}", "start"])
        else:
            c.add_gate(f"d{i}", "AND", [f"sh{i}", "nstart"])
    # alarm: more than one hot bit among the first two slots (cheap
    # approximation keeps the decode logic small)
    c.add_gate("alarm", "AND", ["q0", "q1"])
    c.add_gate("tick", "BUF", [f"q{slots - 1}"])
    c.add_output("alarm")
    c.add_output("tick")
    return c


def fifo_controller(depth_bits, name=None):
    """FIFO full/empty controller: an up/down counter with push/pop
    inputs and full/empty decodes; resettable, partially observable.
    """
    c = Circuit(name or f"fifo{depth_bits}")
    c.add_input("push")
    c.add_input("pop")
    c.add_input("rst")
    c.add_gate("nrst", "NOT", ["rst"])
    c.add_gate("npop", "NOT", ["pop"])
    c.add_gate("npush", "NOT", ["push"])
    c.add_gate("up", "AND", ["push", "npop"])
    c.add_gate("down", "AND", ["pop", "npush"])
    c.add_gate("move", "OR", ["up", "down"])
    # counter bits with +1 / -1 carry chains
    inc_carry = "up"
    dec_carry = "down"
    for i in range(depth_bits):
        q = f"q{i}"
        c.add_dff(q, f"nq{i}")
        c.add_gate(f"nqv{i}", "NOT", [q])
        c.add_gate(f"delta{i}", "OR", [inc_carry, dec_carry])
        c.add_gate(f"x{i}", "XOR", [q, f"delta{i}"])
        c.add_gate(f"nq{i}", "AND", [f"x{i}", "nrst"])
        c.add_gate(f"ic{i + 1}", "AND", [inc_carry, q])
        c.add_gate(f"dc{i + 1}", "AND", [dec_carry, f"nqv{i}"])
        inc_carry = f"ic{i + 1}"
        dec_carry = f"dc{i + 1}"
    # decodes
    empty = "nqv0"
    for i in range(1, depth_bits):
        nxt = f"e{i}"
        c.add_gate(nxt, "AND", [empty, f"nqv{i}"])
        empty = nxt
    full = "q0"
    for i in range(1, depth_bits):
        nxt = f"f{i}"
        c.add_gate(nxt, "AND", [full, f"q{i}"])
        full = nxt
    c.add_gate("empty", "BUF", [empty])
    c.add_gate("full", "BUF", [full])
    c.add_output("empty")
    c.add_output("full")
    return c


def serial_mac(bits, name=None):
    """Serial multiply-accumulate core: the accumulator adds the stage
    products of the serial input with the shifted multiplicand every
    cycle.  Deep AND/XOR reconvergence makes the symbolic state
    functions grow nonlinearly — a reliable OBDD stressor alongside
    :func:`nlfsr`.
    """
    c = Circuit(name or f"mac{bits}")
    c.add_input("din")
    # multiplicand shift register
    prev = "din"
    for i in range(bits):
        q = f"m{i}"
        c.add_dff(q, f"md{i}")
        c.add_gate(f"md{i}", "BUF", [prev])
        prev = q
    # accumulator: acc' = acc XOR (m AND rotated acc) with ripple mix
    carry = "din"
    for i in range(bits):
        q = f"a{i}"
        c.add_dff(q, f"ad{i}")
        c.add_gate(f"p{i}", "AND", [f"m{i}", f"a{(i + 1) % bits}"])
        c.add_gate(f"s{i}", "XOR", [q, f"p{i}"])
        c.add_gate(f"ad{i}", "XOR", [f"s{i}", carry])
        nxt = f"k{i + 1}"
        c.add_gate(nxt, "AND", [f"s{i}", carry])
        carry = nxt
    c.add_gate("out", "XOR", [f"a{bits - 1}", f"a{0}"])
    c.add_output("out")
    return c


def pipeline_datapath(width, stages, name=None):
    """A registered datapath: data flushes through in *stages* cycles.

    Stage logic alternates XOR-mix and AND-OR-mix layers; because every
    register is loaded from the inputs after a few cycles, conventional
    three-valued fault simulation already covers this circuit well.
    """
    c = Circuit(name or f"pipe{width}x{stages}")
    data = []
    for j in range(width):
        c.add_input(f"in{j}")
        data.append(f"in{j}")
    for stage in range(stages):
        new_data = []
        for j in range(width):
            a = data[j]
            b = data[(j + 1) % width]
            net = f"g{stage}_{j}"
            if stage % 2 == 0:
                c.add_gate(net, "XOR", [a, b])
            else:
                c.add_gate(f"{net}a", "AND", [a, b])
                c.add_gate(f"{net}o", "OR", [a, b])
                c.add_gate(net, "XOR", [f"{net}a", f"{net}o"])
            q = f"r{stage}_{j}"
            c.add_dff(q, net)
            new_data.append(q)
        data = new_data
    for j in range(width):
        c.add_gate(f"out{j}", "BUF", [data[j]])
        c.add_output(f"out{j}")
    return c
