"""Sequence-level fault-free simulation.

Used directly by:

* Step 1 of ``ID_X-red`` — a three-valued true-value simulation that
  records, per lead, which Boolean values it assumed (the four-valued
  history of Section III),
* the test-evaluation and baseline code — two-valued simulation from a
  concrete initial state.
"""

from repro.engines.algebra import BOOL, THREE_VALUED
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.logic import threeval
from repro.logic.fourval import IX_X, ix_from_threeval


class Trace:
    """Fault-free simulation trace over a whole input sequence."""

    def __init__(self, frames, outputs, states):
        self.frames = frames  # per-frame full value arrays
        self.outputs = outputs  # per-frame PO vectors
        self.states = states  # state vectors, states[0] = initial

    def __len__(self):
        return len(self.frames)


def simulate_sequence(compiled, sequence, initial_state=None, algebra=None,
                      keep_frames=True):
    """Simulate *sequence* on the fault-free circuit.

    *initial_state* defaults to all-X under the three-valued algebra
    (the paper's unknown initial state); under the Boolean algebra it
    must be supplied.  Returns a :class:`Trace`.
    """
    if algebra is None:
        algebra = THREE_VALUED
    if initial_state is None:
        if algebra is BOOL:
            raise ValueError("Boolean simulation needs an initial state")
        initial_state = [threeval.X] * compiled.num_dffs
    state = list(initial_state)
    if len(state) != compiled.num_dffs:
        raise ValueError(
            f"initial state has {len(state)} bits, circuit has "
            f"{compiled.num_dffs} flip-flops"
        )

    frames = []
    outputs = []
    states = [list(state)]
    for vector in sequence:
        values = simulate_frame(compiled, algebra, vector, state)
        if keep_frames:
            frames.append(values)
        outputs.append(outputs_of(compiled, values))
        state = next_state_of(compiled, values)
        states.append(list(state))
    return Trace(frames, outputs, states)


def value_histories(compiled, sequence, initial_state=None):
    """Step 1 of ``ID_X-red``: four-valued value history per signal.

    Runs the three-valued true-value simulation and joins each signal's
    values over all time frames into the {X},{X,0},{X,1},{X,0,1}
    lattice.  Returns a list indexed by signal.
    """
    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs
    state = list(initial_state)
    history = [IX_X] * compiled.num_signals
    for vector in sequence:
        values = simulate_frame(compiled, THREE_VALUED, vector, state)
        for sig, value in enumerate(values):
            history[sig] |= ix_from_threeval(value)
        state = next_state_of(compiled, values)
    return history
