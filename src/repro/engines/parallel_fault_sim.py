"""Word-parallel three-valued fault simulation (bit-packed).

A complementary engine to :mod:`repro.engines.serial_fault_sim`: many
faulty machines are simulated at once, one bit position per fault, with
the three-valued value of a signal held as a pair of masks
``(ones, zeros)`` (a bit in neither mask is X).  Python's arbitrary-
precision integers make the word width a free parameter.

Semantics are identical to the serial engine (three-valued logic, SOT
detection, unknown initial state); the two are cross-checked in the
test suite.  The parallel engine exists because Table I sweeps whole
fault universes over 200-vector sequences, where single-fault
propagation in pure Python would dominate the benchmark wall-clock.
"""

import inspect

from repro.circuit import gates as gatelib
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.algebra import THREE_VALUED
from repro.faults.model import BRANCH, DBRANCH, STEM
from repro.faults.status import BY_3V, UNDETECTED
from repro.logic import threeval


def _broadcast(value, full):
    """Packed masks for a scalar three-valued value."""
    if value == threeval.ONE:
        return full, 0
    if value == threeval.ZERO:
        return 0, full
    return 0, 0


def _eval_packed(kind, operands, full):
    base, inverted = gatelib.base_op(kind)
    if base == "CONST":
        ones, zeros = (full, 0) if inverted else (0, full)
        return ones, zeros
    if base == "ID":
        ones, zeros = operands[0]
    elif base == "AND":
        ones, zeros = operands[0]
        for o2, z2 in operands[1:]:
            ones &= o2
            zeros |= z2
    elif base == "OR":
        ones, zeros = operands[0]
        for o2, z2 in operands[1:]:
            ones |= o2
            zeros &= z2
    else:  # XOR
        ones, zeros = operands[0]
        for o2, z2 in operands[1:]:
            defined = (ones | zeros) & (o2 | z2)
            new_ones = defined & ((ones & z2) | (zeros & o2))
            new_zeros = defined & ((ones & o2) | (zeros & z2))
            ones, zeros = new_ones, new_zeros
    if inverted:
        ones, zeros = zeros, ones
    return ones, zeros


class _Pack:
    """Force tables for one batch of faults."""

    def __init__(self, compiled, records):
        self.records = records
        self.width = len(records)
        self.full = (1 << self.width) - 1
        self.stem_force = {}
        self.branch_force = {}
        self.dff_force = {}
        for bit, record in enumerate(records):
            fault = record.fault
            kind = fault.lead[0]
            if kind == STEM:
                table, key = self.stem_force, fault.lead[1]
            elif kind == BRANCH:
                table, key = self.branch_force, (fault.lead[1], fault.lead[2])
            else:  # DBRANCH
                table, key = self.dff_force, fault.lead[1]
            f1, f0 = table.get(key, (0, 0))
            if fault.value:
                f1 |= 1 << bit
            else:
                f0 |= 1 << bit
            table[key] = (f1, f0)

    def apply_force(self, ones, zeros, force):
        f1, f0 = force
        ones = (ones & ~f0) | f1
        zeros = (zeros & ~f1) | f0
        return ones, zeros


def _hook_accepts_pack(frame_hook):
    """Whether *frame_hook* can take the ``pack`` keyword argument.

    Decided once per sweep (not per frame) so legacy single-argument
    hooks keep working without a try/except on the hot path.
    """
    try:
        parameters = inspect.signature(frame_hook).parameters
    except (TypeError, ValueError):
        return False
    return "pack" in parameters or any(
        p.kind == inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _simulate_pack(compiled, pack, sequence, initial_state,
                   frame_hook=None, pack_index=0, hook_takes_pack=False):
    """Simulate one pack; returns per-bit first detection frame (or None)."""
    width = pack.width
    full = pack.full
    state = [_broadcast(v, full) for v in initial_state]
    # apply stem forces on flip-flop outputs to the initial state too
    detected_at = [None] * width
    undetected_mask = full
    good_state = list(initial_state)

    for time, vector in enumerate(sequence, start=1):
        if frame_hook is not None:
            if hook_takes_pack:
                frame_hook(time, pack=pack_index)
            else:
                frame_hook(time)
        good_values = simulate_frame(
            compiled, THREE_VALUED, vector, good_state
        )
        values = [None] * compiled.num_signals
        for sig, value in zip(compiled.pis, vector):
            packed = _broadcast(value, full)
            force = pack.stem_force.get(sig)
            if force:
                packed = pack.apply_force(*packed, force)
            values[sig] = packed
        for sig, packed in zip(compiled.ppis, state):
            force = pack.stem_force.get(sig)
            if force:
                packed = pack.apply_force(*packed, force)
            values[sig] = packed
        for cg in compiled.gates:
            operands = [values[src] for src in cg.fanins]
            for pin in range(len(operands)):
                force = pack.branch_force.get((cg.pos, pin))
                if force:
                    operands[pin] = pack.apply_force(*operands[pin], force)
            packed = _eval_packed(cg.kind, operands, full)
            force = pack.stem_force.get(cg.out)
            if force:
                packed = pack.apply_force(*packed, force)
            values[cg.out] = packed

        # SOT detection against the scalar fault-free machine
        for po_pos, sig in enumerate(compiled.pos):
            good = good_values[sig]
            if good == threeval.X:
                continue
            ones, zeros = values[sig]
            hits = (zeros if good == threeval.ONE else ones) & undetected_mask
            while hits:
                low_bit = hits & -hits
                bit_index = low_bit.bit_length() - 1
                detected_at[bit_index] = time
                undetected_mask &= ~low_bit
                hits &= hits - 1

        # state update
        new_state = []
        for dff_idx, d_sig in enumerate(compiled.dff_d):
            packed = values[d_sig]
            force = pack.dff_force.get(dff_idx)
            if force:
                packed = pack.apply_force(*packed, force)
            new_state.append(packed)
        state = new_state
        good_state = next_state_of(compiled, good_values)
        if undetected_mask == 0:
            break
    return detected_at


def fault_simulate_3v_parallel(
    compiled,
    sequence,
    fault_set,
    initial_state=None,
    pack_width=256,
    frame_hook=None,
):
    """Packed three-valued SOT fault simulation.

    Marks detected records in *fault_set* with strategy ``BY_3V`` (same
    contract as the serial engine).

    *frame_hook*, when given, is called with the 1-based frame number
    before each frame of each pack (the frame count restarts per pack);
    the campaign runtime uses it to poll its wall-clock deadline — a
    raising hook aborts the sweep, leaving already-marked detections
    in place (which is sound).  A hook that accepts a ``pack`` keyword
    (like :meth:`ResourceGovernor.check_frame`) additionally receives
    the 0-based pack index, so budget errors on multi-pack sweeps name
    the absolute (pack, frame) position instead of a frame number that
    restarts every pack.
    """
    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs
    live = fault_set.undetected()
    hook_takes_pack = (
        frame_hook is not None and _hook_accepts_pack(frame_hook)
    )
    for pack_index, start in enumerate(range(0, len(live), pack_width)):
        batch = live[start : start + pack_width]
        pack = _Pack(compiled, batch)
        detected_at = _simulate_pack(
            compiled, pack, sequence, initial_state, frame_hook=frame_hook,
            pack_index=pack_index, hook_takes_pack=hook_takes_pack,
        )
        for record, time in zip(batch, detected_at):
            if time is not None and record.status == UNDETECTED:
                record.mark_detected(BY_3V, time)
    return fault_set
