"""Algebra-generic gate evaluation and full-frame simulation."""

from repro.circuit import gates as gatelib


def eval_gate(algebra, kind, operands):
    """Evaluate one gate of *kind* on already-fetched operand values."""
    base, inverted = gatelib.base_op(kind)
    if base == "CONST":
        return algebra.const(inverted)  # CONST1 carries inverted=True
    if base == "ID":
        result = operands[0]
    elif base == "AND":
        result = operands[0]
        for value in operands[1:]:
            result = algebra.and_(result, value)
    elif base == "OR":
        result = operands[0]
        for value in operands[1:]:
            result = algebra.or_(result, value)
    else:  # XOR
        result = operands[0]
        for value in operands[1:]:
            result = algebra.xor(result, value)
    return algebra.not_(result) if inverted else result


def simulate_frame(compiled, algebra, pi_values, state_values):
    """Fault-free evaluation of one time frame.

    *pi_values* is aligned with ``compiled.pis`` and *state_values* with
    ``compiled.ppis``.  Returns the value of every signal, indexed by
    signal number.
    """
    if len(pi_values) != len(compiled.pis):
        raise ValueError(
            f"vector has {len(pi_values)} bits, circuit has "
            f"{len(compiled.pis)} inputs"
        )
    if len(state_values) != len(compiled.ppis):
        raise ValueError(
            f"state has {len(state_values)} bits, circuit has "
            f"{len(compiled.ppis)} flip-flops"
        )
    values = [None] * compiled.num_signals
    for sig, value in zip(compiled.pis, pi_values):
        values[sig] = value
    for sig, value in zip(compiled.ppis, state_values):
        values[sig] = value
    for cg in compiled.gates:
        operands = [values[src] for src in cg.fanins]
        values[cg.out] = eval_gate(algebra, cg.kind, operands)
    return values


def outputs_of(compiled, values):
    """Primary-output vector extracted from a frame's *values*."""
    return [values[sig] for sig in compiled.pos]


def next_state_of(compiled, values):
    """Next-state vector (flip-flop D values) from a frame's *values*."""
    return [values[sig] for sig in compiled.dff_d]
