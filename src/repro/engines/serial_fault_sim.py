"""Serial three-valued fault simulation with fault dropping.

This is the conventional simulator the paper calls *X01*: three-valued
logic, unknown initial state, SOT detection (a fault is detected when a
primary output has a known fault-free value and the complementary known
faulty value at the same time step).  It provides the baseline columns
of Table I and the pre-pass that reduces the fault list before the
symbolic strategies run (Tables II/III).
"""

from repro.engines.algebra import THREE_VALUED
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.faults.status import BY_3V, UNDETECTED, FaultSet
from repro.logic import threeval


class SerialFaultSimResult:
    """Outcome of a three-valued fault-simulation run."""

    def __init__(self, fault_set, frames_simulated, propagation_events):
        self.fault_set = fault_set
        self.frames_simulated = frames_simulated
        self.propagation_events = propagation_events

    @property
    def detected(self):
        return self.fault_set.detected(BY_3V)

    def __repr__(self):
        counts = self.fault_set.counts()
        return (
            f"SerialFaultSimResult({counts['detected']}/{counts['total']} "
            f"detected in {self.frames_simulated} frames)"
        )


def _check_sot_detection(compiled, good_values, result, algebra):
    """SOT check: some PO has known good value b and known faulty ~b."""
    for sig, faulty in result.diff.items():
        for _po_pos in compiled.po_sinks[sig]:
            good = good_values[sig]
            if (
                algebra.is_known(good)
                and algebra.is_known(faulty)
                and good != faulty
            ):
                return True
    return False


def fault_simulate_3v(
    compiled,
    sequence,
    fault_set,
    initial_state=None,
    drop_detected=True,
    frame_hook=None,
):
    """Run three-valued SOT fault simulation over *sequence*.

    Only records with status UNDETECTED participate; anything already
    detected or X-redundant is skipped (this is how ``ID_X-red``
    accelerates the run).  Detected faults are marked in-place in
    *fault_set* with strategy ``BY_3V``.

    *frame_hook*, when given, is called with the 1-based frame number
    before each frame is simulated; the campaign runtime uses it to
    poll its wall-clock deadline (the hook may raise to abort).
    """
    algebra = THREE_VALUED
    if isinstance(fault_set, (list, tuple)):
        fault_set = FaultSet(fault_set)
    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs

    live = list(fault_set.undetected())
    state_diffs = {id(record): {} for record in live}
    good_state = list(initial_state)
    events = 0

    for time, vector in enumerate(sequence, start=1):
        if frame_hook is not None:
            frame_hook(time)
        good_values = simulate_frame(compiled, algebra, vector, good_state)
        still_live = []
        for record in live:
            result = propagate_fault(
                compiled,
                algebra,
                good_values,
                record.fault,
                state_diffs[id(record)],
            )
            events += len(result.diff)
            if record.status == UNDETECTED and _check_sot_detection(
                compiled, good_values, result, algebra
            ):
                record.mark_detected(BY_3V, time)
                if drop_detected:
                    del state_diffs[id(record)]
                    continue
            state_diffs[id(record)] = result.next_state_diff
            still_live.append(record)
        live = still_live
        good_state = next_state_of(compiled, good_values)

    return SerialFaultSimResult(fault_set, len(sequence), events)
