"""Event-driven single-fault propagation (one fault, one time frame).

This is the engine behind both the serial three-valued fault simulator
and the symbolic fault simulator of Section IV.A: "the faults are
injected one by one [and] the effects are propagated towards the
primary outputs and the memory elements".

Given the fault-free frame values, a fault, and the fault's current
state difference (faulty present-state values that differ from the
fault-free ones), :func:`propagate_fault` computes

* ``diff`` — faulty value per signal, only for signals whose faulty
  value differs from the fault-free one,
* ``next_state_diff`` — the faulty next-state entries that differ.

Only gates in the affected cone are re-evaluated, in level order, so a
fault that stays silent costs almost nothing.
"""

import heapq

from repro.engines.evaluate import eval_gate
from repro.faults.model import BRANCH, DBRANCH, STEM


class FrameResult:
    """Faulty/fault-free differences produced by one frame of one fault."""

    __slots__ = ("diff", "next_state_diff")

    def __init__(self, diff, next_state_diff):
        self.diff = diff
        self.next_state_diff = next_state_diff

    def faulty_value(self, good_values, sig):
        """Faulty value of *sig* (falls back to the fault-free value)."""
        return self.diff.get(sig, good_values[sig])


def propagate_fault(compiled, algebra, good_values, fault, state_diff):
    """Propagate *fault* through one time frame.

    Parameters
    ----------
    good_values:
        per-signal fault-free values of this frame
        (from :func:`repro.engines.evaluate.simulate_frame`).
    fault:
        the :class:`~repro.faults.model.Fault` to inject.
    state_diff:
        dict ``dff_index -> faulty present-state value`` holding only
        entries that differ from the fault-free present state.
    """
    diff = {}
    pending = []  # heap of (level, gate_pos)
    scheduled = set()

    def schedule_sinks(sig):
        for gate_pos, _pin in compiled.fanout_gates[sig]:
            if gate_pos not in scheduled:
                scheduled.add(gate_pos)
                gate = compiled.gates[gate_pos]
                heapq.heappush(pending, (gate.level, gate_pos))

    # 1. Seed: present-state differences.
    for dff_idx, value in state_diff.items():
        sig = compiled.ppis[dff_idx]
        if value != good_values[sig]:
            diff[sig] = value
            schedule_sinks(sig)

    # 2. Seed: the fault site itself.
    forced_sig = None
    branch_gate = None
    branch_pin = None
    kind = fault.lead[0]
    if kind == STEM:
        forced_sig = fault.lead[1]
        forced_value = algebra.const(fault.value)
        current = diff.get(forced_sig, good_values[forced_sig])
        if forced_value != good_values[forced_sig]:
            diff[forced_sig] = forced_value
        else:
            diff.pop(forced_sig, None)
        if current != forced_value:
            schedule_sinks(forced_sig)
        # A forced signal never changes again; its driving gate (if any)
        # must not be re-evaluated.
    elif kind == BRANCH:
        branch_gate = fault.lead[1]
        branch_pin = fault.lead[2]
        if branch_gate not in scheduled:
            scheduled.add(branch_gate)
            gate = compiled.gates[branch_gate]
            heapq.heappush(pending, (gate.level, branch_gate))
    # DBRANCH faults act only at the state update below.

    # 3. Level-ordered propagation.
    while pending:
        _level, gate_pos = heapq.heappop(pending)
        gate = compiled.gates[gate_pos]
        out = gate.out
        if out == forced_sig:
            continue  # output pinned by a stem fault
        operands = [
            diff.get(src, good_values[src]) for src in gate.fanins
        ]
        if gate_pos == branch_gate:
            operands[branch_pin] = algebra.const(fault.value)
        new_value = eval_gate(algebra, gate.kind, operands)
        old_value = diff.get(out, good_values[out])
        if new_value != old_value:
            if new_value == good_values[out]:
                diff.pop(out, None)
            else:
                diff[out] = new_value
            schedule_sinks(out)

    # 4. Next-state differences.
    next_state_diff = {}
    for dff_idx, d_sig in enumerate(compiled.dff_d):
        value = diff.get(d_sig, good_values[d_sig])
        if kind == DBRANCH and fault.lead[1] == dff_idx:
            value = algebra.const(fault.value)
        if value != good_values[d_sig]:
            next_state_diff[dff_idx] = value

    return FrameResult(diff, next_state_diff)
