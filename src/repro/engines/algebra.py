"""Value algebras the generic simulation engines are parameterised over.

An algebra provides the constants and connectives needed to evaluate a
gate.  Three implementations cover the paper:

* :class:`BoolAlgebra` — plain 0/1 simulation (explicit-enumeration
  baselines, concrete responses for test evaluation),
* :class:`ThreeValuedAlgebra` — the 0/1/X logic,
* :class:`BddAlgebra` — OBDD node indices; this is what turns the very
  same event-driven engine into the *symbolic* simulator of Section IV.

Values must support ``==`` such that equal values are interchangeable;
BDD canonicity gives this for free for node indices.
"""

from repro.logic import boolean, threeval


class BoolAlgebra:
    """Two-valued logic over the integers 0/1."""

    zero = 0
    one = 1

    @staticmethod
    def const(bit):
        return 1 if bit else 0

    @staticmethod
    def not_(a):
        return boolean.not2(a)

    @staticmethod
    def and_(a, b):
        return boolean.and2(a, b)

    @staticmethod
    def or_(a, b):
        return boolean.or2(a, b)

    @staticmethod
    def xor(a, b):
        return boolean.xor2(a, b)

    @staticmethod
    def is_known(a):
        return True

    @staticmethod
    def known_value(a):
        return a


class ThreeValuedAlgebra:
    """The 0/1/X logic of conventional sequential fault simulation."""

    zero = threeval.ZERO
    one = threeval.ONE
    unknown = threeval.X

    @staticmethod
    def const(bit):
        return threeval.ONE if bit else threeval.ZERO

    @staticmethod
    def not_(a):
        return threeval.not3(a)

    @staticmethod
    def and_(a, b):
        return threeval.and3(a, b)

    @staticmethod
    def or_(a, b):
        return threeval.or3(a, b)

    @staticmethod
    def xor(a, b):
        return threeval.xor3(a, b)

    @staticmethod
    def is_known(a):
        return threeval.is_known(a)

    @staticmethod
    def known_value(a):
        return a if threeval.is_known(a) else None


class BddAlgebra:
    """Symbolic logic: values are node indices of a shared BddManager."""

    def __init__(self, manager):
        self.manager = manager
        self.zero = 0  # repro.bdd.manager.FALSE
        self.one = 1  # repro.bdd.manager.TRUE

    def const(self, bit):
        return self.one if bit else self.zero

    def not_(self, a):
        return self.manager.not_(a)

    def and_(self, a, b):
        return self.manager.and_(a, b)

    def or_(self, a, b):
        return self.manager.or_(a, b)

    def xor(self, a, b):
        return self.manager.xor(a, b)

    def is_known(self, a):
        """Known here means: a constant function of the state variables."""
        return a < 2

    def known_value(self, a):
        return a if a < 2 else None


BOOL = BoolAlgebra()
THREE_VALUED = ThreeValuedAlgebra()
