"""Simulation engines: algebra-generic evaluation, event-driven fault
propagation, sequence-level true-value simulation, and the serial and
word-parallel three-valued fault simulators."""

from repro.engines.algebra import (
    BOOL,
    THREE_VALUED,
    BddAlgebra,
    BoolAlgebra,
    ThreeValuedAlgebra,
)
from repro.engines.evaluate import (
    eval_gate,
    next_state_of,
    outputs_of,
    simulate_frame,
)
from repro.engines.propagate import FrameResult, propagate_fault
from repro.engines.true_value import Trace, simulate_sequence, value_histories
from repro.engines.serial_fault_sim import (
    SerialFaultSimResult,
    fault_simulate_3v,
)
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel

__all__ = [
    "BOOL",
    "THREE_VALUED",
    "BoolAlgebra",
    "ThreeValuedAlgebra",
    "BddAlgebra",
    "eval_gate",
    "simulate_frame",
    "outputs_of",
    "next_state_of",
    "FrameResult",
    "propagate_fault",
    "Trace",
    "simulate_sequence",
    "value_histories",
    "SerialFaultSimResult",
    "fault_simulate_3v",
    "fault_simulate_3v_parallel",
]
