"""Command-line interface.

::

    python -m repro list
    python -m repro stats ctr8
    python -m repro faults s27
    python -m repro generate ctr8 --kind random --length 100 -o t.seq
    python -m repro simulate ctr8 --strategy MOT --length 100
    python -m repro campaign ctr8 --length 200 --checkpoint run.ckpt
    python -m repro campaign --resume run.ckpt
    python -m repro campaign ctr8 --trace run.trace.jsonl --metrics m.json
    python -m repro profile run.trace.jsonl
    python -m repro fsck run.ckpt serve/journal.jsonl
    python -m repro fsck --repair run.ckpt
    python -m repro compact run.ckpt
    python -m repro xred ctr8 --length 200
    python -m repro evaluate s27 --sequence t.seq --response r.seq
    python -m repro sync syncc6

A circuit argument is either a name from the built-in registry
(``python -m repro list``) or a path to an ISCAS-89 ``.bench`` file.
"""

import argparse
import os
import sys

from repro.analysis.synchronizing import find_synchronizing_sequence
from repro.circuit.bench import load_bench
from repro.circuit.compile import compile_circuit
from repro.circuit.stats import circuit_stats
from repro.circuits.registry import PAPER_ROWS, available, get_circuit
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.faults.collapse import collapse_faults
from repro.faults.status import FaultSet
from repro.reporting import coverage_report
from repro.runtime.errors import ReproError
from repro.sequences.deterministic import deterministic_sequence
from repro.sequences.io import (
    load_response,
    load_sequence,
    save_sequence,
)
from repro.sequences.random_seq import random_sequence_for
from repro.symbolic.evaluation import symbolic_output_sequence
from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT, hybrid_fault_simulate
from repro.xred.idxred import eliminate_x_redundant


def _resolve_circuit(spec):
    if os.path.exists(spec):
        return load_bench(spec)
    if spec.endswith(".bench") or os.sep in spec:
        raise FileNotFoundError(f"no such circuit file: {spec}")
    return get_circuit(spec)


def _prepare(spec):
    circuit = _resolve_circuit(spec)
    compiled = compile_circuit(circuit)
    faults, _ = collapse_faults(compiled)
    return compiled, FaultSet(faults)


def _get_sequence(compiled, args):
    if getattr(args, "sequence", None):
        return load_sequence(args.sequence)
    return random_sequence_for(compiled, args.length, seed=args.seed)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_list(args):
    mapping = {ours: paper for paper, ours, _ in PAPER_ROWS}
    for name in available():
        row = mapping.get(name, "")
        suffix = f"  (stands in for {row})" if row else ""
        print(f"{name}{suffix}")
    return 0


def cmd_stats(args):
    stats = circuit_stats(_resolve_circuit(args.circuit))
    for key, value in stats.items():
        print(f"{key}: {value}")
    return 0


def cmd_faults(args):
    compiled, fault_set = _prepare(args.circuit)
    print(f"# {len(fault_set)} collapsed stuck-at faults")
    for record in fault_set:
        print(record.fault.describe(compiled))
    return 0


def cmd_generate(args):
    compiled, fault_set = _prepare(args.circuit)
    if args.kind == "random":
        sequence = random_sequence_for(compiled, args.length,
                                       seed=args.seed)
    elif args.kind == "deterministic":
        sequence = deterministic_sequence(
            compiled, fault_set, max_length=args.length, seed=args.seed
        )
    else:  # mot-atpg
        from repro.atpg.generator import generate_mot_tests

        result = generate_mot_tests(
            compiled, fault_set, strategy="MOT",
            max_length=args.length, seed=args.seed,
            node_limit=args.node_limit,
        )
        sequence = result.sequence
    text_comment = (
        f"{args.kind} sequence for {args.circuit}, seed {args.seed}"
    )
    if args.output:
        save_sequence(sequence, args.output, comment=text_comment)
        print(f"wrote {len(sequence)} vectors to {args.output}")
    else:
        from repro.sequences.io import dumps_sequence

        sys.stdout.write(dumps_sequence(sequence, comment=text_comment))
    return 0


def cmd_xred(args):
    compiled, fault_set = _prepare(args.circuit)
    sequence = _get_sequence(compiled, args)
    eliminate_x_redundant(compiled, sequence, fault_set)
    counts = fault_set.counts()
    print(
        f"{counts['x_redundant']} of {counts['total']} faults are "
        f"X-redundant for this {len(sequence)}-vector sequence"
    )
    if args.verbose:
        for record in fault_set.x_redundant():
            print(f"  {record.fault.describe(compiled)}")
    return 0


def _size(text):
    """argparse type for byte sizes with binary suffixes (512M, 2G)."""
    from repro.runtime.memory import parse_size

    return parse_size(text)


def _build_governor(args):
    from repro.runtime import ResourceGovernor

    return ResourceGovernor(
        deadline=getattr(args, "deadline", None),
        node_budget=getattr(args, "node_budget", None),
        fault_frame_nodes=getattr(args, "fault_frame_nodes", None),
        rss_budget=getattr(args, "rss_budget", None),
        cache_budget=getattr(args, "cache_budget", None),
    )


def _pressure_config(args):
    """A PressureConfig when any pressure flag is set (else None).

    With only ``--rss-budget``/``--cache-budget`` the campaign would
    derive an equivalent config from the governor; building it here
    too keeps the explicit flags (``--gc-watermark``,
    ``--reorder-rescue``) on the same path.
    """
    rss_budget = getattr(args, "rss_budget", None)
    cache_budget = getattr(args, "cache_budget", None)
    gc_watermark = getattr(args, "gc_watermark", None)
    reorder_rescue = getattr(args, "reorder_rescue", False)
    if (
        rss_budget is None
        and cache_budget is None
        and gc_watermark is None
        and not reorder_rescue
    ):
        return None
    from repro.bdd.pressure import DEFAULT_GC_WATERMARK, PressureConfig

    return PressureConfig(
        gc_watermark=(
            DEFAULT_GC_WATERMARK if gc_watermark is None else gc_watermark
        ),
        cache_budget=cache_budget,
        rss_budget=rss_budget,
        reorder_rescue=reorder_rescue,
    )


def _disk_kwargs(args):
    """Disk-governor keywords for run_campaign (empty = ungoverned)."""
    budget = getattr(args, "disk_budget", None)
    free_floor = getattr(args, "disk_free_floor", None)
    if budget is None and free_floor is None:
        return {}
    return {"disk": {"budget": budget, "free_floor": free_floor}}


def _fabric_kwargs(args):
    """Shard-fabric keywords for run_campaign (empty = single-process)."""
    if getattr(args, "workers", None) is None:
        return {}
    return {
        "workers": args.workers,
        "shard_size": getattr(args, "shard_size", None),
        "shard_timeout": getattr(args, "shard_timeout", None),
        "max_retries": getattr(args, "max_retries", None),
        "worker_rss_cap": getattr(args, "worker_rss_cap", None),
    }


def _audit_kwargs(args):
    """Audit keywords for run_campaign (empty = no audit).

    A post-campaign audit persists its findings next to the campaign
    checkpoint (``<checkpoint>.audit``) so an interrupted audit resumes
    alongside the campaign it is checking.
    """
    if getattr(args, "audit", "off") in (None, "off"):
        return {}
    checkpoint = getattr(args, "checkpoint", None)
    return {
        "audit": args.audit,
        "audit_seed": getattr(args, "audit_seed", 0),
        "audit_checkpoint_path": (
            checkpoint + ".audit" if checkpoint else None
        ),
    }


class _CliObservability:
    """CLI ownership of ``--trace`` / ``--metrics`` / ``--progress``.

    The engine layers accept a tracer/registry/progress hook but never
    create one and never write the trace-header record — the CLI does,
    because only it knows the run's provenance (circuit spec, seed,
    worker count).  Single-process campaigns trace with wall-clock
    fields; sharded runs use canonical mode (``wall=False``) so two
    runs with the same seeds produce byte-identical merged traces.
    """

    def __init__(self, args):
        self.trace_path = getattr(args, "trace", None)
        self.metrics_path = getattr(args, "metrics", None)
        self.progress = getattr(args, "progress", False)
        self.tracer = None
        self.registry = None
        self.line = None

    @property
    def active(self):
        return bool(self.trace_path or self.metrics_path or self.progress)

    def start(self, sharded, **header):
        """Build the run keywords; write the trace-header record."""
        kwargs = {}
        if self.trace_path:
            from repro.obs import JsonlSink, Tracer

            self.tracer = Tracer(JsonlSink(self.trace_path),
                                 wall=not sharded)
            self.tracer.write_header(
                "fabric" if sharded else "campaign",
                **{k: v for k, v in header.items() if v is not None},
            )
            kwargs["tracer"] = self.tracer
        if self.metrics_path:
            from repro.obs import MetricsRegistry

            self.registry = MetricsRegistry()
            kwargs["metrics"] = self.registry
        if self.progress:
            from repro.obs.progress import ProgressLine

            self.line = ProgressLine()
            kwargs["progress_hook"] = self.line
        return kwargs

    def finish(self):
        """Flush everything the run produced (safe on failed runs)."""
        if self.line is not None:
            self.line.finish()
        if self.tracer is not None:
            self.tracer.close()
        if self.registry is not None and self.metrics_path:
            from repro.runtime.checkpoint import write_json_atomic

            write_json_atomic(self.metrics_path, self.registry.snapshot())
            print(f"wrote metrics to {self.metrics_path}",
                  file=sys.stderr)


def _render_campaign(args, compiled, fault_set, sequence, result):
    report = coverage_report(
        compiled, fault_set, sequence,
        exact_mot=result.exact and result.strategy == "MOT",
        runtime_info=result.runtime_summary(),
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    # a signal-interrupted (but checkpointed) campaign is incomplete
    if result.stopped == "signal":
        return 3
    # a refuted audit claim means the campaign's verdicts are unsound
    if result.audit is not None and not result.audit.ok:
        return 4
    return 0


def _simulate_campaign(args):
    """The simulate command routed through the campaign runtime
    (--deadline / --checkpoint / --workers)."""
    from repro.runtime import SignalGuard, run_campaign

    if args.strategy == "all":
        raise ValueError(
            "--deadline/--checkpoint/--workers run a single campaign; "
            "pick one strategy, not 'all'"
        )
    compiled, fault_set = _prepare(args.circuit)
    sequence = _get_sequence(compiled, args)
    obs = _CliObservability(args)
    obs_kwargs = obs.start(
        sharded=args.workers is not None,
        circuit=args.circuit,
        strategy=args.strategy,
        frames=len(sequence),
        seed=None if args.sequence else args.seed,
        workers=args.workers,
    )
    try:
        with SignalGuard() as guard:
            result = run_campaign(
                compiled, sequence, fault_set,
                strategy=args.strategy,
                node_limit=args.node_limit,
                governor=_build_governor(args),
                checkpoint_path=args.checkpoint,
                signal_guard=guard,
                circuit_spec=args.circuit,
                xred=not args.no_xred,
                pressure=_pressure_config(args),
                **_disk_kwargs(args),
                **obs_kwargs,
                **_fabric_kwargs(args),
                **_audit_kwargs(args),
            )
    finally:
        obs.finish()
    return _render_campaign(args, compiled, fault_set, sequence, result)


def _resume_any(args, guard, obs):
    """Resume either checkpoint flavor: campaign (frame snapshots) or
    fabric (completed shards) — sniffed from the file itself."""
    from repro.runtime import (
        load_checkpoint,
        resume_campaign,
        sniff_checkpoint_kind,
    )

    if sniff_checkpoint_kind(args.resume) == "fabric":
        from repro.runtime.fabric import (
            FabricConfig,
            load_fabric_checkpoint,
            resume_sharded_campaign,
        )

        checkpoint = load_fabric_checkpoint(args.resume)
        compiled, fault_set = _prepare(
            args.circuit or checkpoint.circuit_spec
        )
        config = None
        if getattr(args, "workers", None) is not None:
            config = FabricConfig(
                workers=args.workers,
                shard_size=getattr(args, "shard_size", None),
                shard_timeout=getattr(args, "shard_timeout", None),
                max_retries=getattr(args, "max_retries", None) or 2,
                worker_rss_cap=getattr(args, "worker_rss_cap", None),
            )
        obs_kwargs = obs.start(
            sharded=True,
            circuit=args.circuit or checkpoint.circuit_spec,
            frames=len(checkpoint.sequence),
            workers=getattr(args, "workers", None),
            resumed_from=args.resume,
        )
        result = resume_sharded_campaign(
            args.resume,
            compiled=compiled,
            fault_set=fault_set,
            governor=_build_governor(args),
            signal_guard=guard,
            config=config,
            pressure=_pressure_config(args),
            **obs_kwargs,
        )
        return compiled, fault_set, checkpoint.sequence, result
    checkpoint = load_checkpoint(args.resume)
    compiled, fault_set = _prepare(
        args.circuit or checkpoint.circuit_spec
    )
    obs_kwargs = obs.start(
        sharded=False,
        circuit=args.circuit or checkpoint.circuit_spec,
        frames=len(checkpoint.sequence),
        resumed_from=args.resume,
    )
    result = resume_campaign(
        args.resume,
        compiled=compiled,
        fault_set=fault_set,
        governor=_build_governor(args),
        checkpoint_every=args.checkpoint_every,
        signal_guard=guard,
        pressure=_pressure_config(args),
        **_disk_kwargs(args),
        **obs_kwargs,
    )
    return compiled, fault_set, checkpoint.sequence, result


def cmd_campaign(args):
    from repro.runtime import SignalGuard, run_campaign

    if args.resume is None and args.circuit is None:
        raise ValueError("campaign needs a circuit (or --resume)")
    obs = _CliObservability(args)
    try:
        with SignalGuard() as guard:
            if args.resume is not None:
                compiled, fault_set, sequence, result = _resume_any(
                    args, guard, obs
                )
            else:
                compiled, fault_set = _prepare(args.circuit)
                sequence = _get_sequence(compiled, args)
                obs_kwargs = obs.start(
                    sharded=args.workers is not None,
                    circuit=args.circuit,
                    strategy=args.strategy,
                    frames=len(sequence),
                    seed=None if args.sequence else args.seed,
                    workers=args.workers,
                )
                result = run_campaign(
                    compiled, sequence, fault_set,
                    strategy=args.strategy,
                    node_limit=args.node_limit,
                    governor=_build_governor(args),
                    checkpoint_path=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    fallback_frames=args.fallback_frames,
                    signal_guard=guard,
                    circuit_spec=args.circuit,
                    pressure=_pressure_config(args),
                    **_disk_kwargs(args),
                    **obs_kwargs,
                    **_fabric_kwargs(args),
                    **_audit_kwargs(args),
                )
    finally:
        obs.finish()
    return _render_campaign(args, compiled, fault_set, sequence, result)


def cmd_simulate(args):
    if (
        args.deadline is not None
        or args.checkpoint
        or args.workers is not None
        or args.audit != "off"
        or _pressure_config(args) is not None
        or _disk_kwargs(args)
        or _CliObservability(args).active
    ):
        return _simulate_campaign(args)
    compiled, fault_set = _prepare(args.circuit)
    sequence = _get_sequence(compiled, args)
    if not args.no_xred:
        eliminate_x_redundant(compiled, sequence, fault_set)
    fault_simulate_3v_parallel(compiled, sequence, fault_set)
    exact = False
    if args.strategy != "3v":
        strategies = (
            ("SOT", "rMOT", "MOT")
            if args.strategy == "all"
            else (args.strategy,)
        )
        exact = True
        for strategy in strategies:
            result = hybrid_fault_simulate(
                compiled, sequence, fault_set, strategy=strategy,
                node_limit=args.node_limit,
            )
            exact = exact and result.exact
    report = coverage_report(
        compiled, fault_set, sequence,
        exact_mot=exact and args.strategy in ("MOT", "all"),
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0


def cmd_evaluate(args):
    compiled, _fault_set = _prepare(args.circuit)
    sequence = load_sequence(args.sequence)
    response = load_response(args.response)
    symbolic = symbolic_output_sequence(
        compiled, sequence, node_limit=args.node_limit
    )
    accepted, conflict = symbolic.evaluate(response)
    if accepted:
        print("PASS: some initial state of the fault-free circuit "
              "explains this response")
        return 0
    print(f"FAIL: circuit-under-test is faulty "
          f"(first conflict at frame {conflict})")
    return 1


def cmd_diagnose(args):
    compiled, fault_set = _prepare(args.circuit)
    sequence = load_sequence(args.sequence)
    response = load_response(args.response)
    from repro.diagnosis import diagnose

    result = diagnose(
        compiled, sequence, response,
        [r.fault for r in fault_set],
        node_limit=args.node_limit or None,
    )
    if result.fault_free_consistent:
        print("response is consistent with a fault-free machine")
    else:
        print("response proves the circuit-under-test faulty")
    print(f"{len(result.candidates)} candidate faults, "
          f"{len(result.exonerated)} exonerated:")
    for candidate in result.candidates[: args.top]:
        print(
            f"  {candidate.fault.describe(compiled):30s}  "
            f"({candidate.num_states} explaining initial states)"
        )
    return 0


def cmd_profile(args):
    from repro.obs.profile import profile_trace, render_profile

    profile = profile_trace(args.trace, top=args.top)
    if args.json:
        import json

        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_profile(profile))
    # a trace that contradicts the campaign's own accounting is a bug
    return 0 if profile["reconciliation"]["ok"] else 1


def _audited_fault_set(args):
    """(compiled, fault_set, sequence, strategy) from a checkpoint.

    Accepts both checkpoint flavors: a campaign file restores the last
    frame snapshot's per-fault states, a fabric file folds every
    completed shard's states in.  The fingerprint ties the rebuilt
    circuit + fault universe to the one the checkpoint recorded.
    """
    from repro.runtime import sniff_checkpoint_kind
    from repro.runtime.checkpoint import (
        load_checkpoint,
        verify_fingerprint,
    )
    from repro.runtime.errors import CheckpointError
    from repro.runtime.ladder import DegradationLadder

    kind = sniff_checkpoint_kind(args.checkpoint)
    if kind == "fabric":
        from repro.runtime.fabric import load_fabric_checkpoint

        checkpoint = load_fabric_checkpoint(args.checkpoint)
    else:
        checkpoint = load_checkpoint(args.checkpoint)
    compiled, fault_set = _prepare(args.circuit or checkpoint.circuit_spec)
    keys = [r.fault.key() for r in fault_set]
    verify_fingerprint(
        checkpoint.path, checkpoint.fingerprint, compiled, keys
    )
    if keys != checkpoint.fault_keys:
        raise CheckpointError(
            checkpoint.path,
            "fault universe does not match the checkpointed campaign "
            f"({len(keys)} vs {len(checkpoint.fault_keys)} faults)",
        )
    if kind == "fabric":
        for shard in checkpoint.shards.values():
            for index, state in zip(shard["indices"], shard["states"]):
                fault_set.records[index].state_from_json(state)
    else:
        for record, (state, _rung, _diff) in zip(
            fault_set, checkpoint.fault_states()
        ):
            record.state_from_json(state)
    ladder = DegradationLadder.from_json(checkpoint.ladder_json())
    return compiled, fault_set, checkpoint.sequence, ladder.rungs[0].strategy


def cmd_audit(args):
    from repro.audit import AuditOptions, run_audit
    from repro.runtime.checkpoint import write_json_atomic

    compiled, fault_set, sequence, strategy = _audited_fault_set(args)
    options = AuditOptions(
        mode=args.mode,
        seed=args.seed,
        node_limit=args.node_limit or None,
        sample_detected=args.sample_detected,
        sample_undetected=args.sample_undetected,
        checkpoint_path=args.audit_checkpoint,
    )
    # a checkpoint is a snapshot of a possibly unfinished, possibly
    # degraded run: a missed detection is inconclusive, never refuting
    report = run_audit(
        compiled,
        sequence,
        fault_set,
        options=options,
        strategy=strategy,
        complete=False,
        exact=False,
        workers=args.workers,
    )
    if args.output:
        write_json_atomic(args.output, report.to_json())
        print(f"wrote audit report to {args.output}", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 4


def _compact_artifact(args):
    """``repro compact <file>``: checkpoint/journal compaction.

    Dispatches on the file's first record: service journals collapse
    to one snapshot record, campaign checkpoints to header + last
    frame snapshot, fabric checkpoints to header + latest record per
    shard.  Every rewrite is atomic (temp file + rename) and byte-
    exact: resume/replay from the compacted file reproduces the
    verdicts of the original.
    """
    import json as _json

    path = args.circuit
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such checkpoint or journal: {path}")
    kind = None
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
    try:
        kind = _json.loads(first).get("type")
    except ValueError:
        pass
    if kind in ("service", "job", "job-deleted", "snapshot"):
        from repro.service.journal import compact_journal

        stats = compact_journal(path)
        what = "journal"
    else:
        from repro.runtime.disk import compact_checkpoint

        stats = compact_checkpoint(path)
        what = f"{stats['kind']} checkpoint"
    print(
        f"compacted {what} {path}: "
        f"{stats['records_before']} -> {stats['records_after']} records, "
        f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
    )
    return 0


def cmd_compact(args):
    if args.sequence is None:
        return _compact_artifact(args)
    compiled, fault_set = _prepare(args.circuit)
    sequence = load_sequence(args.sequence)
    from repro.sequences.compaction import compact_sequence

    result = compact_sequence(
        compiled, sequence, [r.fault for r in fault_set],
        strategy=args.strategy,
    )
    print(
        f"compacted {result.original_length} -> "
        f"{result.compacted_length} vectors "
        f"({len(result.detected)} {args.strategy}-detected faults kept)"
    )
    if args.output:
        save_sequence(result.compacted, args.output,
                      comment=f"compacted under {args.strategy}")
        print(f"wrote {args.output}")
    return 0


def cmd_equiv(args):
    from repro.analysis.equivalence import check_equivalence

    c1 = _resolve_circuit(args.circuit)
    c2 = _resolve_circuit(args.other)
    result = check_equivalence(c1, c2)
    if result.equivalent:
        print(f"EQUIVALENT (explored {result.steps} image steps)")
        return 0
    print(f"DIFFERENT at output {result.output_index}; "
          f"distinguishing sequence:")
    for vector in result.counterexample:
        print("".join(str(b) for b in vector))
    return 1


def cmd_sync(args):
    compiled, _ = _prepare(args.circuit)
    result = find_synchronizing_sequence(
        compiled, max_length=args.length, beam_width=args.beam
    )
    if result.found:
        print(f"synchronizing sequence of length "
              f"{len(result.sequence)} found; final state "
              f"{result.final_state}")
        for vector in result.sequence:
            print("".join(str(b) for b in vector))
        return 0
    print(f"no synchronizing sequence within {args.length} steps "
          f"(uncertainty trace: {result.uncertainty_sizes})")
    return 1


# ----------------------------------------------------------------------
def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic fault simulation for sequential circuits "
                    "(DAC 1995 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_fabric_options(p):
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="run on a pool of N worker processes "
                            "(0 = sharded but in-process)")
        p.add_argument("--shard-size", type=int, default=None,
                       metavar="FAULTS",
                       help="faults per shard (default: auto)")
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill and retry a shard running longer "
                            "than this")
        p.add_argument("--max-retries", type=int, default=None,
                       metavar="N",
                       help="crashes before a shard is bisected "
                            "(default 2)")
        p.add_argument("--worker-rss-cap", type=_size, default=None,
                       metavar="SIZE",
                       help="recycle a worker whose resident set "
                            "exceeds SIZE (accepts 512M, 2G, ...)")

    def _add_pressure_options(p):
        p.add_argument("--rss-budget", type=_size, default=None,
                       metavar="SIZE",
                       help="process RSS budget (512M, 2G, ...): "
                            "watermark relief below it, graceful "
                            "checkpointed stop above it")
        p.add_argument("--cache-budget", type=int, default=None,
                       metavar="ENTRIES",
                       help="computed-table entries before eviction")
        p.add_argument("--gc-watermark", type=float, default=None,
                       metavar="FRACTION",
                       help="unique-table fill fraction that triggers "
                            "root-preserving GC (default 0.85)")
        p.add_argument("--reorder-rescue", action="store_true",
                       help="try a variable-window reorder of the "
                            "session before surrendering to fallback")

    def _add_disk_options(p):
        p.add_argument("--disk-budget", type=_size, default=None,
                       metavar="SIZE",
                       help="checkpoint byte budget (accepts 512M, "
                            "2G, ...): soft watermark compacts the "
                            "checkpoint and stretches the interval, "
                            "hard watermark surrenders cleanly with a "
                            "resumable compacted checkpoint")
        p.add_argument("--disk-free-floor", type=_size, default=None,
                       metavar="SIZE",
                       help="minimum free space on the checkpoint "
                            "filesystem; the same relief ladder runs "
                            "when statvfs free space falls below it")

    def _add_audit_options(p):
        p.add_argument("--audit", choices=("off", "sample", "full"),
                       default="off",
                       help="witness-replay audit of the verdicts after "
                            "the run: 'full' audits every detected "
                            "fault, 'sample' a seeded sample; refuted "
                            "claims quarantine the fault and fail the "
                            "run (exit 4)")
        p.add_argument("--audit-seed", type=int, default=0,
                       metavar="SEED",
                       help="seed of the audit's sampling and constant-"
                            "witness draws (default 0)")

    def _add_failpoint_option(p):
        p.add_argument("--failpoints", default=None, metavar="SPEC",
                       help="arm deterministic failure injection sites "
                            "for this run, e.g. 'checkpoint.write."
                            "enospc=once,bdd.alloc=after:5000' "
                            "(see docs/failpoints.md); equivalent to "
                            "the REPRO_FAILPOINTS environment variable")

    def _add_observability_options(p):
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="stream a JSONL trace (spans, events, "
                            "metrics samples) to FILE; analyze it "
                            "later with 'repro profile'")
        p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the run's final counters/gauges/"
                            "histograms to FILE as JSON")
        p.add_argument("--progress", action="store_true",
                       help="live single-line progress display on "
                            "stderr")

    def add_common(p, sequence_opts=True):
        p.add_argument("circuit",
                       help="registry name or .bench file path")
        if sequence_opts:
            p.add_argument("--sequence", help="sequence file (.seq)")
            p.add_argument("--length", type=int, default=100)
            p.add_argument("--seed", type=int, default=1)
        p.add_argument("--node-limit", type=int,
                       default=DEFAULT_NODE_LIMIT)

    sub.add_parser("list", help="list built-in circuits")

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit")

    p = sub.add_parser("faults", help="print the collapsed fault list")
    p.add_argument("circuit")

    p = sub.add_parser("generate", help="generate a test sequence")
    add_common(p, sequence_opts=False)
    p.add_argument("--kind", choices=("random", "deterministic",
                                      "mot-atpg"), default="random")
    p.add_argument("--length", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("-o", "--output")

    p = sub.add_parser("xred", help="identify X-redundant faults")
    add_common(p)
    p.add_argument("--verbose", action="store_true")

    p = sub.add_parser("simulate", help="run the fault-simulation flow")
    add_common(p)
    p.add_argument("--strategy",
                   choices=("3v", "SOT", "rMOT", "MOT", "all"),
                   default="MOT")
    p.add_argument("--no-xred", action="store_true",
                   help="skip the ID_X-red pre-pass")
    p.add_argument("--json", action="store_true")
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds (runs the "
                        "campaign runtime)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write resumable checkpoints to PATH (runs "
                        "the campaign runtime)")
    _add_pressure_options(p)
    _add_disk_options(p)
    _add_fabric_options(p)
    _add_observability_options(p)
    _add_audit_options(p)
    _add_failpoint_option(p)

    p = sub.add_parser(
        "campaign",
        help="resilient fault-simulation campaign "
             "(budgets, checkpoints, degradation ladder)",
    )
    p.add_argument("circuit", nargs="?",
                   help="registry name or .bench file path "
                        "(optional with --resume)")
    p.add_argument("--sequence", help="sequence file (.seq)")
    p.add_argument("--length", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--node-limit", type=int, default=DEFAULT_NODE_LIMIT)
    p.add_argument("--strategy",
                   choices=("3v", "SOT", "rMOT", "MOT"), default="MOT",
                   help="top rung of the degradation ladder")
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds")
    p.add_argument("--node-budget", type=int, default=None,
                   help="total live-BDD-node budget")
    p.add_argument("--fault-frame-nodes", type=int, default=None,
                   help="per-fault per-frame BDD allocation budget")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write resumable checkpoints to PATH")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   metavar="N", help="checkpoint every N frames")
    p.add_argument("--fallback-frames", type=int, default=5,
                   help="three-valued interlude length after an "
                        "overflow")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="resume from a checkpoint file (campaign or "
                        "fabric flavor, auto-detected)")
    p.add_argument("--json", action="store_true")
    _add_pressure_options(p)
    _add_disk_options(p)
    _add_fabric_options(p)
    _add_observability_options(p)
    _add_audit_options(p)
    _add_failpoint_option(p)

    p = sub.add_parser(
        "audit",
        help="witness-replay audit of a checkpointed campaign's "
             "verdicts (campaign or fabric checkpoint)",
    )
    p.add_argument("checkpoint",
                   help="checkpoint file written by a campaign run")
    p.add_argument("--circuit", default=None,
                   help="override the checkpoint's circuit spec")
    p.add_argument("--mode", choices=("sample", "full"), default="full")
    p.add_argument("--seed", type=int, default=0,
                   help="audit sampling/witness seed (default 0)")
    p.add_argument("--node-limit", type=int, default=0,
                   help="per-fault witness rebuild node limit "
                        "(0 = unbounded)")
    p.add_argument("--sample-detected", type=int, default=32,
                   metavar="N",
                   help="detected-side sample size in sample mode")
    p.add_argument("--sample-undetected", type=int, default=8,
                   metavar="N", help="undetected-side sample size")
    p.add_argument("--audit-checkpoint", default=None, metavar="PATH",
                   help="persist findings to PATH; a partial audit "
                        "resumes from it")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="shard the detected-side audits over N worker "
                        "processes (0 = sharded in-process)")
    p.add_argument("--json", action="store_true")
    p.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="also write the report JSON to FILE "
                        "(atomic replace)")

    p = sub.add_parser("profile",
                       help="analyze a JSONL trace written by --trace")
    p.add_argument("trace", help="trace file (.jsonl)")
    p.add_argument("--top", type=int, default=10,
                   help="hot faults to show (default 10)")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("evaluate",
                       help="symbolic test evaluation of a response")
    p.add_argument("circuit")
    p.add_argument("--sequence", required=True)
    p.add_argument("--response", required=True)
    p.add_argument("--node-limit", type=int, default=DEFAULT_NODE_LIMIT)

    p = sub.add_parser("sync", help="search a synchronizing sequence")
    p.add_argument("circuit")
    p.add_argument("--length", type=int, default=32)
    p.add_argument("--beam", type=int, default=64)

    p = sub.add_parser("diagnose",
                       help="identify candidate faults from a response")
    p.add_argument("circuit")
    p.add_argument("--sequence", required=True)
    p.add_argument("--response", required=True)
    p.add_argument("--top", type=int, default=10,
                   help="print at most this many candidates")
    p.add_argument("--node-limit", type=int, default=0,
                   help="0 = unlimited")

    p = sub.add_parser(
        "compact",
        help="shrink a sequence preserving coverage, or (without "
             "--sequence) compact a checkpoint/journal file in place",
    )
    p.add_argument("circuit",
                   help="circuit (with --sequence), or a campaign/"
                        "fabric checkpoint or service journal file to "
                        "compact atomically in place")
    p.add_argument("--sequence",
                   help="sequence file (.seq); omit to compact a "
                        "checkpoint/journal instead")
    p.add_argument("--strategy", choices=("SOT", "rMOT", "MOT"),
                   default="MOT")
    p.add_argument("-o", "--output")

    p = sub.add_parser("equiv",
                       help="sequential equivalence of two circuits")
    p.add_argument("circuit")
    p.add_argument("other")

    p = sub.add_parser("serve",
                       help="run the crash-safe campaign job daemon")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8357,
                   help="bind port; 0 picks an ephemeral port, written "
                        "to endpoint.json in the state dir "
                        "(default 8357)")
    p.add_argument("--state-dir", default="repro-serve", metavar="DIR",
                   help="journal, per-job checkpoints and results live "
                        "here; restart with the same DIR to recover "
                        "(default ./repro-serve)")
    p.add_argument("--queue-limit", type=int, default=8, metavar="N",
                   help="admission queue bound; a full queue sheds "
                        "submissions with HTTP 429 (default 8)")
    p.add_argument("--executors", type=int, default=1, metavar="N",
                   help="concurrent job executor threads (default 1)")
    p.add_argument("--retry-after", type=int, default=5, metavar="SECS",
                   help="Retry-After hint on shed submissions "
                        "(default 5)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SECS",
                   help="max seconds to wait for in-flight jobs to "
                        "reach a stop point on SIGTERM (default: wait "
                        "indefinitely)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write per-job JSONL trace spans to FILE")
    p.add_argument("--disk-budget", type=_size, default=None,
                   metavar="SIZE",
                   help="state-directory byte budget (512M, 2G, ...); "
                        "at the hard watermark the service GCs old "
                        "artifacts, snapshots its journal, then sheds "
                        "submissions with HTTP 507 + Retry-After")
    p.add_argument("--artifact-quota", type=_size, default=None,
                   metavar="SIZE",
                   help="byte quota for per-job artifacts (results, "
                        "checkpoints, traces); oldest terminal jobs' "
                        "files are aged out first, their journal "
                        "metadata survives")
    p.add_argument("--journal-snapshot-every", type=int, default=512,
                   metavar="N",
                   help="compact the journal to one snapshot record "
                        "after N appended records (default 512)")
    _add_failpoint_option(p)

    p = sub.add_parser(
        "fsck",
        help="offline integrity check of checkpoints and journals "
             "(CRC, torn tail, record structure, state machine)",
    )
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help="campaign/fabric/audit checkpoint or service "
                        "journal files (kind auto-detected)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report, one JSON object per "
                        "file")
    p.add_argument("--repair", action="store_true",
                   help="repair tail damage in place: truncate a torn "
                        "final line and move CRC-failing records to a "
                        "<file>.quarantine sidecar (atomic rewrite); "
                        "structural damage earlier in the file still "
                        "refuses")

    p = sub.add_parser(
        "metrics-export",
        help="render a --metrics JSON snapshot as Prometheus text "
             "exposition",
    )
    p.add_argument("metrics", help="metrics JSON written by --metrics "
                                   "(or a flat name->number mapping)")
    p.add_argument("--prefix", default="repro",
                   help="metric name prefix (default repro)")
    p.add_argument("-o", "--output", help="write here instead of stdout")

    p = sub.add_parser(
        "export-trace",
        help="convert a JSONL trace to Chrome/Perfetto trace_event "
             "JSON or collapsed flamegraph stacks",
    )
    p.add_argument("trace", help="trace file (.jsonl) written by --trace")
    p.add_argument("--format", choices=("chrome", "flame"),
                   default="chrome",
                   help="chrome: load in ui.perfetto.dev; flame: "
                        "collapsed stacks for flamegraph.pl/speedscope")
    p.add_argument("-o", "--output", help="write here instead of stdout")

    p = sub.add_parser(
        "top",
        help="live terminal view of a running campaign (service job "
             "event stream or local checkpoint)",
    )
    p.add_argument("job", nargs="?", default=None,
                   help="service job id (with --url)")
    p.add_argument("--url", default="http://127.0.0.1:8357",
                   help="service base URL (default "
                        "http://127.0.0.1:8357)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="tail a local campaign checkpoint instead of a "
                        "service job")
    p.add_argument("--once", action="store_true",
                   help="render the current state once and exit")
    p.add_argument("--poll-timeout", type=float, default=5.0,
                   metavar="SECS",
                   help="long-poll timeout per request (default 5)")
    p.add_argument("--interval", type=float, default=0.5, metavar="SECS",
                   help="checkpoint re-read interval (default 0.5)")

    p = sub.add_parser(
        "bench",
        help="run the pinned benchmark suite; compare against a "
             "committed baseline with a noise guardband",
    )
    p.add_argument("--quick", action="store_true",
                   help="the small suite CI runs on every push")
    p.add_argument("--label", default="local",
                   help="label baked into BENCH_<label>.json "
                        "(default local)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the bench JSON here (default "
                        "BENCH_<label>.json)")
    p.add_argument("--compare", nargs="+", metavar="BASELINE",
                   help="compare against these baseline bench JSONs "
                        "(several = trajectory, per-workload best); "
                        "exit 5 on regression")
    p.add_argument("--current", metavar="FILE",
                   help="with --compare: diff this bench JSON instead "
                        "of running the suite")
    p.add_argument("--guardband", type=float, default=0.5,
                   metavar="FRAC",
                   help="allowed relative growth in normalized cost "
                        "(default 0.5)")
    p.add_argument("--floor", type=float, default=0.005, metavar="SECS",
                   help="absolute wall-clock excess below which a "
                        "regression never fires (default 0.005)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-workload progress and the "
                        "results dump")

    return parser


def cmd_fsck(args):
    from repro.runtime.fsck import fsck_paths

    reports, code = fsck_paths(args.paths, repair=args.repair)
    if args.json:
        import json

        for report in reports:
            print(json.dumps(report.to_json(), sort_keys=True))
    else:
        for report in reports:
            for line in report.lines():
                print(line)
    return code


def cmd_metrics_export(args):
    import json as _json

    from repro.obs.export import render_prometheus

    with open(args.metrics, encoding="utf-8") as handle:
        snapshot = _json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(
            f"{args.metrics}: expected a metrics snapshot object"
        )
    text = render_prometheus(snapshot, prefix=args.prefix)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_export_trace(args):
    import json as _json

    from repro.obs.export import trace_to_chrome, trace_to_collapsed
    from repro.obs.profile import read_trace

    records = read_trace(args.trace)
    if args.format == "chrome":
        text = _json.dumps(trace_to_chrome(records), sort_keys=True)
    else:
        text = trace_to_collapsed(records)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_top(args):
    from repro.obs.top import run_top

    if bool(args.checkpoint) == bool(args.job):
        raise ValueError(
            "pass exactly one source: --checkpoint FILE, or "
            "--url URL with a job id"
        )
    return run_top(
        job=args.job,
        url=args.url,
        checkpoint=args.checkpoint,
        once=args.once,
        poll_timeout=args.poll_timeout,
        interval=args.interval,
    )


def cmd_bench(args):
    import json as _json

    from repro.obs.bench import (
        compare_bench,
        load_bench_json,
        render_compare,
        run_suite,
        trajectory_baseline,
    )
    from repro.runtime.checkpoint import write_json_atomic

    if args.compare and args.current:
        current = load_bench_json(args.current)
    else:
        current = run_suite(
            quick=args.quick,
            label=args.label,
            progress=(
                None if args.quiet
                else lambda name: print(f"bench: {name}", file=sys.stderr)
            ),
        )
        out = args.output or f"BENCH_{args.label}.json"
        write_json_atomic(out, current)
        if not args.quiet:
            print(f"wrote {out}", file=sys.stderr)
    if not args.compare:
        if not args.quiet:
            print(_json.dumps(current["results"], indent=2,
                              sort_keys=True))
        return 0
    baselines = [load_bench_json(path) for path in args.compare]
    baseline = (
        baselines[0] if len(baselines) == 1
        else trajectory_baseline(baselines)
    )
    report = compare_bench(
        baseline, current,
        guardband=args.guardband, floor=args.floor,
    )
    print(render_compare(report))
    return 0 if report["ok"] else 5


def cmd_serve(args):
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        queue_limit=args.queue_limit,
        executors=args.executors,
        retry_after=args.retry_after,
        trace=args.trace,
        drain_timeout=args.drain_timeout,
        disk_budget=args.disk_budget,
        artifact_quota=args.artifact_quota,
        journal_snapshot_every=args.journal_snapshot_every,
    )
    return serve(config)


_COMMANDS = {
    "list": cmd_list,
    "stats": cmd_stats,
    "faults": cmd_faults,
    "generate": cmd_generate,
    "xred": cmd_xred,
    "simulate": cmd_simulate,
    "campaign": cmd_campaign,
    "audit": cmd_audit,
    "profile": cmd_profile,
    "evaluate": cmd_evaluate,
    "sync": cmd_sync,
    "diagnose": cmd_diagnose,
    "compact": cmd_compact,
    "equiv": cmd_equiv,
    "serve": cmd_serve,
    "fsck": cmd_fsck,
    "metrics-export": cmd_metrics_export,
    "export-trace": cmd_export_trace,
    "top": cmd_top,
    "bench": cmd_bench,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "failpoints", None):
            from repro import failpoints

            # merges over (and overrides) any REPRO_FAILPOINTS sites
            failpoints.configure(args.failpoints)
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # e.g. `python -m repro list | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (ReproError, FileNotFoundError, OSError, ValueError) as exc:
        # bad inputs (missing files, malformed .bench, unknown circuit,
        # mismatched checkpoint, ...) fail with one line, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
