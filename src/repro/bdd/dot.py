"""Graphviz DOT export for OBDDs (debugging / documentation aid)."""


def to_dot(manager, roots, var_names=None, graph_name="bdd"):
    """Render the BDDs in *roots* (dict label -> node) as DOT text."""
    if isinstance(roots, int):
        roots = {"f": roots}
    if var_names is None:
        var_names = {}

    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    lines.append('  n0 [shape=box,label="0"];')
    lines.append('  n1 [shape=box,label="1"];')

    seen = set()
    stack = list(roots.values())
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        var = manager.var(node)
        label = var_names.get(var, f"v{var}")
        lines.append(f'  n{node} [shape=circle,label="{label}"];')
        lines.append(f"  n{node} -> n{manager.low(node)} [style=dashed];")
        lines.append(f"  n{node} -> n{manager.high(node)};")
        stack.append(manager.low(node))
        stack.append(manager.high(node))

    for label, node in roots.items():
        lines.append(f'  r_{label} [shape=plaintext,label="{label}"];')
        lines.append(f"  r_{label} -> n{node};")
    lines.append("}")
    return "\n".join(lines) + "\n"
