"""Variable numbering schemes for the symbolic fault simulator.

The MOT strategy needs two copies of the initial-state variables:
``x_i`` for the fault-free machine and ``y_i`` for the faulty machine
(Section IV).  With the **interleaved** numbering

    x_0, y_0, x_1, y_1, ...

the rename ``x_i -> y_i`` is monotone in the variable order, so the
compose step of the MOT strategy reduces to a linear-time rename, and
the equivalence terms ``o(x) == o^f(y)`` stay small when good and
faulty functions are structurally similar.

The **blocked** numbering ``x_0..x_{m-1}, y_0..y_{m-1}`` is provided for
the variable-order ablation benchmark.
"""


class StateVariables:
    """Maps memory-element positions to BDD variable indices."""

    def __init__(self, num_dffs, scheme="interleaved"):
        if scheme not in ("interleaved", "blocked"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.num_dffs = num_dffs
        self.scheme = scheme

    def x(self, i):
        """Variable index of the fault-free initial-state bit *i*."""
        self._check(i)
        if self.scheme == "interleaved":
            return 2 * i
        return i

    def y(self, i):
        """Variable index of the faulty initial-state bit *i*."""
        self._check(i)
        if self.scheme == "interleaved":
            return 2 * i + 1
        return self.num_dffs + i

    def x_vars(self):
        return [self.x(i) for i in range(self.num_dffs)]

    def y_vars(self):
        return [self.y(i) for i in range(self.num_dffs)]

    def x_to_y(self):
        """The rename mapping used by the MOT compose step."""
        return {self.x(i): self.y(i) for i in range(self.num_dffs)}

    @property
    def num_vars(self):
        return 2 * self.num_dffs

    def _check(self, i):
        if not 0 <= i < self.num_dffs:
            raise IndexError(f"state bit {i} out of range 0..{self.num_dffs - 1}")


class RemappedStateVariables:
    """A :class:`StateVariables` view through a variable renumbering.

    Produced by the reorder rescue of a symbolic session: after a
    :func:`~repro.bdd.reorder.block_window_search` moved the
    ``(x_i, y_i)`` pairs around, the session keeps addressing state
    bits by position and this wrapper translates to the post-reorder
    variable numbers.  *var_map* maps the base scheme's variable
    numbers to the new manager's.  Wrappers compose — a second rescue
    simply stacks another one on top.

    Because a rescue permutes whole pairs, ``x(i) < y(i)`` for every
    pair and pairs never interleave, so ``x_to_y()`` remains monotone
    and the MOT rename keeps working unchanged.
    """

    def __init__(self, base, var_map):
        self._base = base
        self._map = dict(var_map)
        self.num_dffs = base.num_dffs
        self.scheme = base.scheme

    def x(self, i):
        return self._map[self._base.x(i)]

    def y(self, i):
        return self._map[self._base.y(i)]

    def x_vars(self):
        return [self.x(i) for i in range(self.num_dffs)]

    def y_vars(self):
        return [self.y(i) for i in range(self.num_dffs)]

    def x_to_y(self):
        """The rename mapping used by the MOT compose step."""
        return {self.x(i): self.y(i) for i in range(self.num_dffs)}

    @property
    def num_vars(self):
        return self._base.num_vars
