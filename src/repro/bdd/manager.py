"""A reduced ordered binary decision diagram (ROBDD) manager.

This is a from-scratch pure-Python implementation of the OBDD package
the paper builds on [Bryant 1986]:

* nodes live in flat parallel arrays (``_var``, ``_low``, ``_high``);
  a BDD is an integer index into those arrays,
* node 0 is the constant FALSE, node 1 the constant TRUE,
* a unique table guarantees canonicity — two functions are equal iff
  their indices are equal,
* all operations go through :meth:`ite` with a computed table,
* the manager enforces a configurable **node limit** and raises
  :class:`~repro.bdd.errors.SpaceLimitExceeded` when a new node would
  exceed it (the paper uses a 30,000-node limit to trigger the hybrid
  simulator's three-valued fallback),
* garbage collection is *rebuild-based*: :meth:`collect` keeps only the
  nodes reachable from caller-supplied roots and returns an old->new
  index translation.

Variable identity is a plain integer; smaller integers are closer to
the root.  :mod:`repro.bdd.ordering` provides the interleaved x/y
numbering used by the MOT strategy.
"""

from repro import failpoints as _failpoints
from repro.bdd.errors import SpaceLimitExceeded, VariableOrderError

FALSE = 0
TRUE = 1

_TERMINAL_VAR = 1 << 40


def _injected_alloc_failure():
    """Alloc hook body of the ``bdd.alloc`` failpoint.

    Raises :class:`MemoryError` when the armed policy trips — the
    stand-in for the interpreter failing an allocation at an awkward
    node.  The campaign treats it like a space overflow: surrender,
    fall back, stay conservative (see ``Campaign._step_symbolic_group``).
    """
    if _failpoints.fire("bdd.alloc"):
        raise MemoryError("injected: failpoint bdd.alloc")

# Tags for the explicit task stacks of the iterative traversals below.
# All recursive structural operations (ite, restrict, compose, rename,
# quantification) are implemented with a work stack — BDD depth grows
# with the variable count, and deep circuits used to force a global
# sys.setrecursionlimit() hack.
_EXPAND = 0
_COMBINE = 1


class _CountingCache(dict):
    """A computed table that counts hit/miss on :meth:`get`.

    Installed by :meth:`BddManager.enable_cache_stats` only — the
    default table is a plain dict so the disabled path pays nothing.
    Counts live on the owning manager, not the table, so eviction and
    GC (which replace the table object) never lose them.
    """

    __slots__ = ("owner",)

    def __init__(self, owner):
        super().__init__()
        self.owner = owner

    def get(self, key, default=None):
        found = dict.get(self, key, default)
        if found is None:
            self.owner.stat_cache_misses += 1
        else:
            self.owner.stat_cache_hits += 1
        return found


class BddManager:
    """Owner of a node store, unique table and computed table.

    **Invalidation contract.**  :meth:`collect` rebuilds the node store
    in place: after it returns, *every* node index held outside the
    manager is stale unless mapped through the returned old->new
    translation (or obtained via ``return_roots=True``).  The computed
    table is cleared as part of the rebuild — callers never need a
    separate :meth:`clear_cache`.  Evaluating, combining or collecting
    again with an untranslated index is undefined behaviour (it will
    silently address a different function).  :meth:`clear_cache` and
    :meth:`evict_cache`, by contrast, are always safe: the computed
    table is pure memoisation and dropping any part of it changes
    memory use, never results.
    """

    def __init__(self, num_vars=0, node_limit=None):
        self.num_vars = num_vars
        self.node_limit = node_limit
        self._var = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low = [FALSE, TRUE]
        self._high = [FALSE, TRUE]
        self._unique = {}
        self._cache = {}
        self.peak_nodes = 2
        # optional zero-argument callback invoked after every node
        # allocation; the campaign runtime uses it to meter total node
        # consumption and to poll a wall-clock deadline at fine grain.
        # The ``bdd.alloc`` failpoint rides the same slot — installed
        # only when armed at construction, so a disabled build executes
        # exactly the uninstrumented mk() instruction stream (consumers
        # that attach their own hooks chain rather than overwrite).
        self.alloc_hook = (
            _injected_alloc_failure
            if _failpoints.is_armed("bdd.alloc")
            else None
        )
        # lifetime operation stats.  Per-operation counting (ite calls,
        # cache hit/miss) is opt-in via enable_stats() and implemented
        # by swapping in a counting table / wrapping ite, so the
        # disabled hot path executes exactly the uninstrumented code.
        # nodes_created needs no hook at all: it is derived from the
        # live store plus nodes retired by GC (_nodes_dropped).
        self.stat_ite_calls = 0
        self.stat_gc_runs = 0
        self.stat_cache_evictions = 0
        self.stat_entries_evicted = 0
        self.stat_cache_hits = 0
        self.stat_cache_misses = 0
        self._nodes_dropped = 0
        self._count_cache = False

    # ------------------------------------------------------------------
    # node store
    # ------------------------------------------------------------------
    def mk(self, var, low, high):
        """Find-or-create the node ``(var, low, high)`` (reduced)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        idx = len(self._var)
        if self.node_limit is not None and idx + 1 > self.node_limit:
            raise SpaceLimitExceeded(self.node_limit, idx + 1)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = idx
        if idx + 1 > self.peak_nodes:
            self.peak_nodes = idx + 1
        if self.alloc_hook is not None:
            self.alloc_hook()
        return idx

    def var(self, index):
        """Decision variable of node *index* (terminals: a huge sentinel)."""
        return self._var[index]

    def low(self, index):
        return self._low[index]

    def high(self, index):
        return self._high[index]

    def is_terminal(self, index):
        return index < 2

    @property
    def num_nodes(self):
        """Total number of live nodes including the two terminals."""
        return len(self._var)

    def fresh_var(self):
        """Allocate a new variable index at the bottom of the order."""
        var = self.num_vars
        self.num_vars += 1
        return var

    def mk_var(self, var):
        """The projection function of variable *var*."""
        if var >= self.num_vars:
            self.num_vars = var + 1
        return self.mk(var, FALSE, TRUE)

    def mk_nvar(self, var):
        """The negated projection function of variable *var*."""
        if var >= self.num_vars:
            self.num_vars = var + 1
        return self.mk(var, TRUE, FALSE)

    def const(self, value):
        """TRUE or FALSE for a truthy/falsy *value*."""
        return TRUE if value else FALSE

    def is_const(self, f):
        """True when *f* is one of the two constant functions."""
        return f < 2

    def const_value(self, f):
        """0/1 for a constant function, None otherwise."""
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1
        return None

    # ------------------------------------------------------------------
    # core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f, g, h):
        """``(f AND g) OR (NOT f AND h)`` — the universal connective.

        Iterative: an explicit task stack of ``(_EXPAND, f, g, h)`` and
        ``(_COMBINE, top, key)`` entries with a parallel result stack.
        An expand pushes its combine first, then the 0-branch, then the
        1-branch (so the 1-branch is evaluated first); the combine pops
        the 0-result and then the 1-result.
        """
        cache = self._cache
        tasks = [(_EXPAND, f, g, h)]
        results = []
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                _tag, f, g, h = task
                if f == TRUE:
                    results.append(g)
                    continue
                if f == FALSE:
                    results.append(h)
                    continue
                if g == h:
                    results.append(g)
                    continue
                if g == TRUE and h == FALSE:
                    results.append(f)
                    continue
                key = ("ite", f, g, h)
                found = cache.get(key)
                if found is not None:
                    results.append(found)
                    continue
                var_f = self._var[f]
                var_g = self._var[g]
                var_h = self._var[h]
                top = min(var_f, var_g, var_h)
                f1, f0 = (
                    (self._high[f], self._low[f]) if var_f == top else (f, f)
                )
                g1, g0 = (
                    (self._high[g], self._low[g]) if var_g == top else (g, g)
                )
                h1, h0 = (
                    (self._high[h], self._low[h]) if var_h == top else (h, h)
                )
                tasks.append((_COMBINE, top, key))
                tasks.append((_EXPAND, f0, g0, h0))
                tasks.append((_EXPAND, f1, g1, h1))
            else:
                _tag, top, key = task
                r0 = results.pop()
                r1 = results.pop()
                result = self.mk(top, r0, r1)
                cache[key] = result
                results.append(result)
        return results[0]

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f):
        return self.ite(f, FALSE, TRUE)

    def and_(self, f, g):
        return self.ite(f, g, FALSE)

    def or_(self, f, g):
        return self.ite(f, TRUE, g)

    def xor(self, f, g):
        return self.ite(f, self.not_(g), g)

    def xnor(self, f, g):
        """The equivalence ``f == g`` used by the detection functions."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f, g):
        return self.ite(f, g, TRUE)

    def and_many(self, fs):
        result = TRUE
        for f in fs:
            result = self.and_(result, f)
            if result == FALSE:
                return FALSE
        return result

    def or_many(self, fs):
        result = FALSE
        for f in fs:
            result = self.or_(result, f)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict(self, f, var, value):
        """Cofactor of *f* with *var* fixed to *value* (0 or 1)."""
        cache = self._cache
        tasks = [(_EXPAND, f)]
        results = []
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                node = task[1]
                if self.is_terminal(node):
                    results.append(node)
                    continue
                var_f = self._var[node]
                if var_f > var:
                    results.append(node)
                    continue
                key = ("res", node, var, value)
                found = cache.get(key)
                if found is not None:
                    results.append(found)
                    continue
                if var_f == var:
                    result = self._high[node] if value else self._low[node]
                    cache[key] = result
                    results.append(result)
                    continue
                tasks.append((_COMBINE, var_f, key))
                tasks.append((_EXPAND, self._low[node]))
                tasks.append((_EXPAND, self._high[node]))
            else:
                _tag, var_f, key = task
                r0 = results.pop()
                r1 = results.pop()
                result = self.mk(var_f, r0, r1)
                cache[key] = result
                results.append(result)
        return results[0]

    def compose(self, f, var, g):
        """Substitute function *g* for variable *var* inside *f*."""
        cache = self._cache
        tasks = [(_EXPAND, f)]
        results = []
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                node = task[1]
                if self.is_terminal(node):
                    results.append(node)
                    continue
                var_f = self._var[node]
                if var_f > var:
                    results.append(node)
                    continue
                key = ("cmp", node, var, g)
                found = cache.get(key)
                if found is not None:
                    results.append(found)
                    continue
                if var_f == var:
                    result = self.ite(g, self._high[node], self._low[node])
                    cache[key] = result
                    results.append(result)
                    continue
                tasks.append((_COMBINE, var_f, key))
                tasks.append((_EXPAND, self._low[node]))
                tasks.append((_EXPAND, self._high[node]))
            else:
                _tag, var_f, key = task
                r0 = results.pop()
                r1 = results.pop()
                result = self.ite(self.mk(var_f, FALSE, TRUE), r1, r0)
                cache[key] = result
                results.append(result)
        return results[0]

    def rename(self, f, mapping):
        """Rename variables according to the dict *mapping*.

        The mapping must be monotone with respect to the variable order
        (the MOT x->y rename under interleaved ordering is).  Raises
        :class:`VariableOrderError` when the order would be violated.
        """
        if not mapping:
            return f
        items = sorted(mapping.items())
        for (a1, b1), (a2, b2) in zip(items, items[1:]):
            if not (a1 < a2 and b1 < b2):
                raise VariableOrderError(
                    f"rename is not monotone: {a1}->{b1}, {a2}->{b2}"
                )
        frozen = tuple(items)
        return self._rename_walk(f, mapping, frozen)

    def _rename_walk(self, f, mapping, frozen):
        cache = self._cache
        tasks = [(_EXPAND, f)]
        results = []
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                node = task[1]
                if self.is_terminal(node):
                    results.append(node)
                    continue
                key = ("ren", node, frozen)
                found = cache.get(key)
                if found is not None:
                    results.append(found)
                    continue
                var_f = self._var[node]
                new_var = mapping.get(var_f, var_f)
                tasks.append((_COMBINE, var_f, new_var, key))
                tasks.append((_EXPAND, self._low[node]))
                tasks.append((_EXPAND, self._high[node]))
            else:
                _tag, var_f, new_var, key = task
                r0 = results.pop()
                r1 = results.pop()
                for child in (r1, r0):
                    if (
                        not self.is_terminal(child)
                        and self._var[child] <= new_var
                    ):
                        raise VariableOrderError(
                            f"rename {var_f}->{new_var} breaks the order"
                        )
                result = self.mk(new_var, r0, r1)
                cache[key] = result
                results.append(result)
        return results[0]

    def exists(self, f, variables):
        """Existential quantification over an iterable of variables."""
        result = f
        for var in sorted(set(variables), reverse=True):
            result = self._quant_one(result, var, True)
        return result

    def forall(self, f, variables):
        """Universal quantification over an iterable of variables."""
        result = f
        for var in sorted(set(variables), reverse=True):
            result = self._quant_one(result, var, False)
        return result

    def _quant_one(self, f, var, existential):
        cache = self._cache
        tag = "ex" if existential else "fa"
        tasks = [(_EXPAND, f)]
        results = []
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                node = task[1]
                if self.is_terminal(node):
                    results.append(node)
                    continue
                var_f = self._var[node]
                if var_f > var:
                    results.append(node)
                    continue
                key = (tag, node, var)
                found = cache.get(key)
                if found is not None:
                    results.append(found)
                    continue
                if var_f == var:
                    hi, lo = self._high[node], self._low[node]
                    result = (
                        self.or_(hi, lo) if existential else self.and_(hi, lo)
                    )
                    cache[key] = result
                    results.append(result)
                    continue
                tasks.append((_COMBINE, var_f, key))
                tasks.append((_EXPAND, self._low[node]))
                tasks.append((_EXPAND, self._high[node]))
            else:
                _tag, var_f, key = task
                r0 = results.pop()
                r1 = results.pop()
                result = self.mk(var_f, r0, r1)
                cache[key] = result
                results.append(result)
        return results[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, f, assignment):
        """Evaluate *f* under ``assignment`` (mapping var -> 0/1)."""
        node = f
        while not self.is_terminal(node):
            node = (
                self._high[node]
                if assignment[self._var[node]]
                else self._low[node]
            )
        return node  # FALSE == 0, TRUE == 1

    def support(self, f):
        """The set of variables *f* depends on."""
        seen = set()
        result = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return result

    def size(self, roots):
        """Shared node count reachable from *roots* (terminals included)."""
        if isinstance(roots, int):
            roots = [roots]
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if not self.is_terminal(node):
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def sat_count(self, f, variables=None):
        """Number of satisfying assignments over *variables*.

        *variables* defaults to ``range(num_vars)`` and must cover the
        support of *f*.
        """
        if variables is None:
            variables = range(self.num_vars)
        order = sorted(set(variables))
        position = {v: i for i, v in enumerate(order)}
        missing = self.support(f) - set(order)
        if missing:
            raise ValueError(f"variables {missing} in support but not counted")
        total = len(order)
        cache = {}

        def count(node, depth):
            # number of sat assignments over order[depth:]
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << (total - depth)
            key = (node, depth)
            found = cache.get(key)
            if found is not None:
                return found
            var_pos = position[self._var[node]]
            skipped = var_pos - depth
            result = (
                count(self._low[node], var_pos + 1)
                + count(self._high[node], var_pos + 1)
            ) << skipped
            cache[key] = result
            return result

        return count(f, 0)

    def pick_assignment(self, f, variables=None):
        """One satisfying assignment of *f* as a dict, or None if f==0.

        Variables outside the support are assigned 0 when *variables*
        is given, otherwise omitted.
        """
        if f == FALSE:
            return None
        assignment = {}
        node = f
        while not self.is_terminal(node):
            var = self._var[node]
            if self._high[node] != FALSE:
                assignment[var] = 1
                node = self._high[node]
            else:
                assignment[var] = 0
                node = self._low[node]
        if variables is not None:
            for var in variables:
                assignment.setdefault(var, 0)
        return assignment

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    @property
    def cache_size(self):
        """Number of computed-table entries (memory-pressure signal)."""
        return len(self._cache)

    def clear_cache(self):
        """Drop the computed table (keeps all nodes)."""
        if self._cache:
            self.stat_cache_evictions += 1
            self.stat_entries_evicted += len(self._cache)
        self._cache.clear()

    def evict_cache(self, fraction=1.0):
        """Drop the oldest *fraction* of computed-table entries.

        Dicts preserve insertion order, so the front of the table holds
        the entries least likely to be re-hit by the current operation
        mix.  Safe at any point, including mid-operation: in-flight
        traversals hold their own reference to the table and only lose
        memoisation, never correctness.  Returns the number of entries
        dropped.
        """
        if fraction >= 1.0:
            dropped = len(self._cache)
            self._cache.clear()
        else:
            dropped = int(len(self._cache) * fraction)
            for key in list(self._cache.keys())[:dropped]:
                del self._cache[key]
        if dropped:
            self.stat_cache_evictions += 1
            self.stat_entries_evicted += dropped
        return dropped

    def collect(self, roots, return_roots=False):
        """Rebuild the store keeping only nodes reachable from *roots*.

        Returns a dict translating old node indices (for the supplied
        roots and everything reachable from them) to new indices.  All
        other old indices become invalid; the computed table is cleared
        (see the class docstring for the full invalidation contract).
        With ``return_roots=True``, returns ``(translate, new_roots)``
        where ``new_roots`` lists the translated *roots* in order — the
        common case of collecting and immediately rebinding a root set.

        The allocation hook is suspended for the duration of the
        rebuild: GC re-creates nodes that were already metered when
        first allocated, and a budget or pressure callback firing
        mid-rebuild would unwind with the store half-translated.
        """
        roots = list(roots)
        reachable = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in reachable or node < 2:
                continue
            reachable.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])

        order = sorted(reachable)  # children have smaller indices
        old_var, old_low, old_high = self._var, self._low, self._high
        self._var = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low = [FALSE, TRUE]
        self._high = [FALSE, TRUE]
        self._unique = {}
        self._cache = self._make_cache()
        self.stat_gc_runs += 1
        # retire this epoch's allocations; the rebuild's survivors are
        # credited back below so nodes_created stays a true lifetime
        # total (each allocation counted once, GC re-creation never)
        self._nodes_dropped += len(old_var) - 2
        translate = {FALSE: FALSE, TRUE: TRUE}
        hook, self.alloc_hook = self.alloc_hook, None
        try:
            for node in order:
                translate[node] = self.mk(
                    old_var[node],
                    translate[old_low[node]],
                    translate[old_high[node]],
                )
        finally:
            self.alloc_hook = hook
            self._nodes_dropped -= len(self._var) - 2
        if return_roots:
            return translate, [translate[root] for root in roots]
        return translate

    # ------------------------------------------------------------------
    # operation statistics
    # ------------------------------------------------------------------
    def _make_cache(self):
        """A fresh computed table of the currently configured kind."""
        return _CountingCache(self) if self._count_cache else {}

    @property
    def stat_nodes_created(self):
        """Lifetime node allocations (GC re-creation not counted)."""
        return self._nodes_dropped + len(self._var) - 2

    def enable_stats(self):
        """Count ite() calls and computed-table hits/misses from now on.

        Opt-in because both cost a Python dispatch per operation: the
        computed table is swapped for a counting subclass and ``ite``
        is shadowed by a counting wrapper.  With stats off the hot path
        executes exactly the uninstrumented code.  The observability
        layer enables this when tracing or metrics are requested.
        Existing table entries are preserved.
        """
        if self._count_cache:
            return
        self._count_cache = True
        cache = _CountingCache(self)
        cache.update(self._cache)
        self._cache = cache
        inner = self.ite  # the (bound) uncounted implementation

        def counted_ite(f, g, h):
            self.stat_ite_calls += 1
            return inner(f, g, h)

        self.ite = counted_ite

    def stats(self):
        """Lifetime operation counters plus current store levels."""
        return {
            "ite_calls": self.stat_ite_calls,
            "nodes_created": self.stat_nodes_created,
            "cache_hits": self.stat_cache_hits,
            "cache_misses": self.stat_cache_misses,
            "cache_evictions": self.stat_cache_evictions,
            "entries_evicted": self.stat_entries_evicted,
            "gc_runs": self.stat_gc_runs,
            "peak_nodes": self.peak_nodes,
            "num_nodes": self.num_nodes,
            "cache_size": len(self._cache),
        }

    def carry_stats_from(self, other):
        """Fold *other*'s lifetime counters into this manager.

        Used when a reorder rescue rebuilds the session in a fresh
        manager: the new manager continues the old one's accounting so
        per-session stats stay cumulative across the swap.
        """
        self.stat_ite_calls += other.stat_ite_calls
        self._nodes_dropped += other.stat_nodes_created
        self.stat_cache_hits += other.stat_cache_hits
        self.stat_cache_misses += other.stat_cache_misses
        self.stat_cache_evictions += other.stat_cache_evictions
        self.stat_entries_evicted += other.stat_entries_evicted
        self.stat_gc_runs += other.stat_gc_runs
        if other._count_cache:
            self.enable_stats()

    def __repr__(self):
        return (
            f"BddManager({self.num_vars} vars, {self.num_nodes} nodes, "
            f"limit {self.node_limit})"
        )
