"""Memory-pressure monitoring and relief for the symbolic engine.

The paper's only memory-robustness mechanism is the hybrid simulator's
hard 30,000-node space limit (Section IV.A): blow it and fall back to
three-valued simulation.  Everything below that boundary used to be
unmanaged — the computed table grows without bound, garbage collection
and reordering exist but are never invoked automatically, and no layer
sees the actual process footprint.  :class:`PressureMonitor` fills the
gap with a graded escalation ladder fired at safe points:

1. **computed-table eviction** — at throttled ``mk()`` granularity.
   The table is pure memoisation; dropping entries never changes
   results, so this rung is safe even mid-operation.
2. **root-preserving garbage collection** — at frame boundaries, when
   the node store crosses the GC watermark and enough of it is dead
   to be worth a rebuild (:meth:`frame_relief`).
3. **reorder rescue** — optional
   :func:`~repro.bdd.reorder.block_window_search` over the session's
   roots when GC alone cannot get back under the watermark.
4. **surrender** — raise
   :class:`~repro.bdd.errors.MemoryPressureExceeded` (a
   :class:`~repro.bdd.errors.SpaceLimitExceeded`), handing control to
   the existing hybrid fallback / per-fault demotion machinery.

Rungs 1-3 are semantics-preserving: they change memory use, never
verdicts.  Only rung 4 degrades, and it reuses the conservative
(``exact=False``) paths that already exist.

The monitor is engine-level: it watches one
:class:`~repro.bdd.manager.BddManager` and relieves through a *session*
duck type (``live_nodes()``, ``compact()``, ``reorder_rescue()``) so
the BDD package stays free of simulator imports.
:class:`PressureConfig` is the declarative, picklable form a campaign
ships to every worker; each symbolic session gets its own monitor
built from it.
"""

from repro import failpoints as _failpoints
from repro.bdd.errors import MemoryPressureExceeded

#: fraction of the node limit at which frame-boundary GC fires
DEFAULT_GC_WATERMARK = 0.85
#: GC runs only when live/total nodes is at or below this fraction
DEFAULT_LIVE_FRACTION = 0.7
#: soft / hard RSS watermarks as fractions of the RSS budget
DEFAULT_RSS_SOFT_FRACTION = 0.7
DEFAULT_RSS_HARD_FRACTION = 0.9
#: allocations between alloc-granularity pressure checks
DEFAULT_CHECK_STRIDE = 512

_EVENT_LOG_CAP = 256


class PressureConfig:
    """Declarative memory-pressure settings.

    Plain values only (picklable and JSON-able), so one config can be
    shared by a whole campaign and shipped across the process fabric;
    per-session :class:`PressureMonitor` instances are built with
    :meth:`monitor`.

    ``rss_budget`` is bytes — the soft watermark (GC request) and hard
    watermark (surrender) are the configured fractions of it.
    ``cache_budget`` is computed-table entries.  ``gc_watermark`` is a
    fraction of the session's node limit; with no node limit only RSS
    and cache pressure apply.
    """

    _FIELDS = (
        "gc_watermark",
        "live_fraction",
        "cache_budget",
        "rss_budget",
        "rss_soft_fraction",
        "rss_hard_fraction",
        "reorder_rescue",
        "rescue_window",
        "rescue_passes",
        "check_stride",
    )

    def __init__(
        self,
        gc_watermark=DEFAULT_GC_WATERMARK,
        live_fraction=DEFAULT_LIVE_FRACTION,
        cache_budget=None,
        rss_budget=None,
        rss_soft_fraction=DEFAULT_RSS_SOFT_FRACTION,
        rss_hard_fraction=DEFAULT_RSS_HARD_FRACTION,
        reorder_rescue=False,
        rescue_window=2,
        rescue_passes=1,
        check_stride=DEFAULT_CHECK_STRIDE,
        rss_sampler=None,
    ):
        if not 0.0 < gc_watermark <= 1.0:
            raise ValueError("gc_watermark must be in (0, 1]")
        if not 0.0 < live_fraction <= 1.0:
            raise ValueError("live_fraction must be in (0, 1]")
        if not 0.0 < rss_soft_fraction <= rss_hard_fraction <= 1.0:
            raise ValueError(
                "need 0 < rss_soft_fraction <= rss_hard_fraction <= 1"
            )
        if check_stride < 1:
            raise ValueError("check_stride must be >= 1")
        self.gc_watermark = gc_watermark
        self.live_fraction = live_fraction
        self.cache_budget = cache_budget
        self.rss_budget = rss_budget
        self.rss_soft_fraction = rss_soft_fraction
        self.rss_hard_fraction = rss_hard_fraction
        self.reorder_rescue = reorder_rescue
        self.rescue_window = rescue_window
        self.rescue_passes = rescue_passes
        self.check_stride = check_stride
        # optional injected sampler (tests); not serialized — workers
        # construct their own default sampler for their own process
        self.rss_sampler = rss_sampler

    def monitor(self, on_event=None):
        """Build a :class:`PressureMonitor` for one session."""
        sampler = self.rss_sampler
        if sampler is None and self.rss_budget is not None:
            from repro.runtime.memory import RssSampler

            sampler = RssSampler()
        rss_soft = rss_hard = None
        if self.rss_budget is not None:
            rss_soft = int(self.rss_budget * self.rss_soft_fraction)
            rss_hard = int(self.rss_budget * self.rss_hard_fraction)
        return PressureMonitor(
            gc_watermark=self.gc_watermark,
            live_fraction=self.live_fraction,
            cache_budget=self.cache_budget,
            rss_soft=rss_soft,
            rss_hard=rss_hard,
            reorder_rescue=self.reorder_rescue,
            rescue_window=self.rescue_window,
            rescue_passes=self.rescue_passes,
            check_stride=self.check_stride,
            rss_sampler=sampler,
            on_event=on_event,
        )

    def to_json(self):
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_json(cls, data):
        kwargs = {k: v for k, v in data.items() if k in cls._FIELDS}
        return cls(**kwargs)

    def __repr__(self):
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._FIELDS
        )
        return f"PressureConfig({parts})"


class PressureMonitor:
    """Watermark accounting and relief for one manager/session pair.

    Two safe points drive the monitor:

    * :meth:`note_alloc` hooks into the manager's node-allocation
      callback (chained after any existing hook such as the governor's
      budget metering) and, every ``check_stride`` allocations, runs
      the rungs that are safe mid-operation: cache eviction and the
      hard-RSS surrender (an exception, which unwinds cleanly).
    * :meth:`frame_relief` runs between frames — the only point where
      no traversal is in flight and the session can translate its
      roots — and performs the rebuild-based rungs: root-preserving GC
      and the optional reorder rescue.

    Counters (``cache_evictions``, ``gc_runs``, ``reorder_rescues``,
    ``nodes_freed``, ``entries_evicted``, ``peak_rss``) plus a capped
    event log feed campaign accounting; ``on_event`` receives every
    event dict as it happens.
    """

    def __init__(
        self,
        gc_watermark=DEFAULT_GC_WATERMARK,
        live_fraction=DEFAULT_LIVE_FRACTION,
        cache_budget=None,
        rss_soft=None,
        rss_hard=None,
        reorder_rescue=False,
        rescue_window=2,
        rescue_passes=1,
        check_stride=DEFAULT_CHECK_STRIDE,
        rss_sampler=None,
        on_event=None,
    ):
        self.gc_watermark = gc_watermark
        self.live_fraction = live_fraction
        self.cache_budget = cache_budget
        self.rss_soft = rss_soft
        self.rss_hard = rss_hard
        self.reorder_rescue = reorder_rescue
        self.rescue_window = rescue_window
        self.rescue_passes = rescue_passes
        self.check_stride = check_stride
        self.on_event = on_event
        self._sampler = rss_sampler
        self._manager = None
        self._since_check = 0
        self._rss_pending = False

        self.cache_evictions = 0
        self.gc_runs = 0
        self.reorder_rescues = 0
        self.entries_evicted = 0
        self.nodes_freed = 0
        self.peak_rss = 0
        self.events = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, manager):
        """Chain onto *manager*'s allocation hook.

        Any existing hook (the governor's budget metering) keeps
        firing first; the monitor's check runs after it.
        """
        self._manager = manager
        self._since_check = 0
        previous = manager.alloc_hook
        if previous is None:
            manager.alloc_hook = self.note_alloc
        else:
            def chained(_previous=previous, _note=self.note_alloc):
                _previous()
                _note()

            manager.alloc_hook = chained

    def rebind(self, manager):
        """Point the monitor at a replacement manager.

        A reorder rescue swaps the session onto a fresh manager; the
        session carries the chained allocation hook over and calls
        this so watermark checks read the right store.
        """
        self._manager = manager
        self._since_check = 0

    # ------------------------------------------------------------------
    # alloc-granularity safe point
    # ------------------------------------------------------------------
    def note_alloc(self):
        self._since_check += 1
        if self._since_check < self.check_stride:
            return
        self._since_check = 0
        self.check_alloc()

    def check_alloc(self):
        """Relief rungs that are safe mid-operation.

        Mutating the node store here would corrupt in-flight
        traversals (their work stacks hold node indices), so the only
        actions are computed-table eviction and the hard-RSS
        surrender, which unwinds via an exception exactly like a
        node-limit overflow.  A soft-RSS crossing just requests GC at
        the next frame boundary.
        """
        manager = self._manager
        if manager is None:
            return
        if (
            self.cache_budget is not None
            and manager.cache_size > self.cache_budget
        ):
            if _failpoints.fire("pressure.evict"):
                # the eviction rung "fails": surrender through the
                # same exception the hard watermark uses, so the
                # demotion/fallback machinery absorbs it conservatively
                self._rss_pending = True
                raise MemoryPressureExceeded(
                    self.cache_budget, manager.cache_size
                )
            dropped = manager.evict_cache(0.5)
            self.cache_evictions += 1
            self.entries_evicted += dropped
            self._event(
                "evict", trigger="cache", dropped=dropped,
                cache_size=manager.cache_size,
            )
        if self.rss_hard is None:
            return
        rss = self._rss()
        if rss is None:
            return
        if rss >= self.rss_hard:
            if manager.cache_size:
                # last cheap shot before surrendering: drop the whole
                # computed table
                dropped = manager.evict_cache(1.0)
                self.cache_evictions += 1
                self.entries_evicted += dropped
                self._event("evict", trigger="rss", dropped=dropped, rss=rss)
            self._rss_pending = True
            raise MemoryPressureExceeded(self.rss_hard, rss)
        if self.rss_soft is not None and rss >= self.rss_soft:
            self._rss_pending = True

    # ------------------------------------------------------------------
    # frame-boundary safe point
    # ------------------------------------------------------------------
    def frame_relief(self, session):
        """Rebuild-based relief, called by the session between frames.

        Fires when the node store crossed the GC watermark or a soft
        RSS crossing was recorded: first a root-preserving GC (only if
        the live fraction says a rebuild is worth it), then — when GC
        alone did not get back under the watermark and rescue is
        enabled — a block-window reorder of the session's roots.
        Never raises organically; the hard stop lives in
        :meth:`check_alloc`.  (The ``pressure.gc`` / ``pressure.rescue``
        failpoints are the deliberate exception: an injected rung
        failure surrenders via
        :class:`~repro.bdd.errors.MemoryPressureExceeded`, which the
        caller's frame boundary already treats like a space overflow.)
        """
        manager = self._manager
        if manager is None:
            return
        limit = manager.node_limit
        trigger = None
        if limit is not None and manager.num_nodes >= self.gc_watermark * limit:
            trigger = "nodes"
        if self._rss_pending:
            self._rss_pending = False
            trigger = trigger or "rss"
        if trigger is None:
            return

        total = manager.num_nodes
        live = session.live_nodes()
        if live <= self.live_fraction * total:
            if _failpoints.fire("pressure.gc"):
                raise MemoryPressureExceeded(
                    manager.node_limit or 0, total
                )
            freed = session.compact()
            self.gc_runs += 1
            self.nodes_freed += max(freed, 0)
            self._event(
                "gc", trigger=trigger, freed=freed, live=live, total=total,
            )
            manager = self._manager  # unchanged object, re-read for clarity
            if limit is None or manager.num_nodes < self.gc_watermark * limit:
                return
        if not self.reorder_rescue:
            return
        if _failpoints.fire("pressure.rescue"):
            raise MemoryPressureExceeded(
                manager.node_limit or 0, manager.num_nodes
            )
        freed = session.reorder_rescue(
            window=self.rescue_window, passes=self.rescue_passes
        )
        self.reorder_rescues += 1
        self.nodes_freed += max(freed, 0)
        self._event("rescue", trigger=trigger, freed=freed)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def accounting(self):
        return {
            "cache_evictions": self.cache_evictions,
            "entries_evicted": self.entries_evicted,
            "gc_runs": self.gc_runs,
            "reorder_rescues": self.reorder_rescues,
            "nodes_freed": self.nodes_freed,
            "peak_rss": self.peak_rss,
            "events": len(self.events),
        }

    def _event(self, action, **fields):
        fields["action"] = action
        if len(self.events) < _EVENT_LOG_CAP:
            self.events.append(fields)
        if self.on_event is not None:
            self.on_event(fields)

    def _rss(self):
        if self._sampler is None:
            return None
        value = self._sampler()
        if value is not None and value > self.peak_rss:
            self.peak_rss = value
        return value
