"""Errors raised by the OBDD package."""


class BddError(Exception):
    """Base class for OBDD errors."""


class SpaceLimitExceeded(BddError):
    """The unique table grew past the configured node limit.

    The hybrid fault simulator (Section IV.A of the paper) catches this
    to fall back to three-valued simulation for a few frames.

    ``fault_key`` stays None for overflows in the fault-free symbolic
    simulation; the symbolic fault simulator tags the exception with
    the offending fault's key when the overflow happened while
    propagating a single fault, which lets the campaign runtime demote
    just that fault instead of abandoning the whole session.
    """

    fault_key = None

    def __init__(self, limit, requested):
        self.limit = limit
        self.requested = requested
        super().__init__(
            f"OBDD node limit exceeded: {requested} nodes requested, "
            f"limit is {limit}"
        )


class VariableOrderError(BddError):
    """A rename/compose would violate the fixed variable order."""
