"""Errors raised by the OBDD package."""


class BddError(Exception):
    """Base class for OBDD errors."""


class SpaceLimitExceeded(BddError):
    """The unique table grew past the configured node limit.

    The hybrid fault simulator (Section IV.A of the paper) catches this
    to fall back to three-valued simulation for a few frames.
    """

    def __init__(self, limit, requested):
        self.limit = limit
        self.requested = requested
        super().__init__(
            f"OBDD node limit exceeded: {requested} nodes requested, "
            f"limit is {limit}"
        )


class VariableOrderError(BddError):
    """A rename/compose would violate the fixed variable order."""
