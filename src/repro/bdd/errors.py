"""Errors raised by the OBDD package."""


class BddError(Exception):
    """Base class for OBDD errors."""


class SpaceLimitExceeded(BddError):
    """The unique table grew past the configured node limit.

    The hybrid fault simulator (Section IV.A of the paper) catches this
    to fall back to three-valued simulation for a few frames.

    ``fault_key`` stays None for overflows in the fault-free symbolic
    simulation; the symbolic fault simulator tags the exception with
    the offending fault's key when the overflow happened while
    propagating a single fault, which lets the campaign runtime demote
    just that fault instead of abandoning the whole session.
    """

    fault_key = None

    def __init__(self, limit, requested):
        self.limit = limit
        self.requested = requested
        super().__init__(
            f"OBDD node limit exceeded: {requested} nodes requested, "
            f"limit is {limit}"
        )


class MemoryPressureExceeded(SpaceLimitExceeded):
    """Process memory crossed the hard pressure watermark.

    Raised by the pressure monitor when the cheap relief rungs (cache
    eviction, garbage collection, reorder rescue) could not bring the
    resident set back under the hard watermark.  Subclassing
    :class:`SpaceLimitExceeded` means every existing surrender path —
    the hybrid three-valued fallback, the campaign's per-fault demotion
    — handles memory pressure exactly like a node-limit overflow.

    ``limit`` is the hard watermark in bytes, ``requested`` the observed
    resident set size.
    """

    def __init__(self, limit, observed):
        self.limit = limit
        self.requested = observed
        BddError.__init__(
            self,
            f"memory pressure: RSS {observed} bytes over hard "
            f"watermark {limit}",
        )


class VariableOrderError(BddError):
    """A rename/compose would violate the fixed variable order."""
