"""Reduced ordered binary decision diagrams (the paper's symbolic core).

Public surface:

* :class:`~repro.bdd.manager.BddManager` with constants ``FALSE``/``TRUE``,
* :class:`~repro.bdd.ordering.StateVariables` — x/y variable numbering,
* :class:`~repro.bdd.errors.SpaceLimitExceeded` — node-limit signal the
  hybrid fault simulator reacts to,
* :func:`~repro.bdd.dot.to_dot` — Graphviz export.
"""

from repro.bdd.errors import BddError, SpaceLimitExceeded, VariableOrderError
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.ordering import StateVariables
from repro.bdd.reorder import reorder, transfer, window_search
from repro.bdd.dot import to_dot

__all__ = [
    "BddManager",
    "FALSE",
    "TRUE",
    "BddError",
    "SpaceLimitExceeded",
    "VariableOrderError",
    "StateVariables",
    "reorder",
    "transfer",
    "window_search",
    "to_dot",
]
