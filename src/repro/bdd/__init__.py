"""Reduced ordered binary decision diagrams (the paper's symbolic core).

Public surface:

* :class:`~repro.bdd.manager.BddManager` with constants ``FALSE``/``TRUE``,
* :class:`~repro.bdd.ordering.StateVariables` — x/y variable numbering
  (and :class:`~repro.bdd.ordering.RemappedStateVariables`, its view
  through a reorder-rescue renumbering),
* :class:`~repro.bdd.errors.SpaceLimitExceeded` — node-limit signal the
  hybrid fault simulator reacts to, and its subclass
  :class:`~repro.bdd.errors.MemoryPressureExceeded` raised when the
  pressure ladder surrenders,
* :class:`~repro.bdd.pressure.PressureMonitor` /
  :class:`~repro.bdd.pressure.PressureConfig` — watermark GC, cache
  eviction and reorder rescue below the hard node limit,
* :func:`~repro.bdd.dot.to_dot` — Graphviz export.
"""

from repro.bdd.errors import (
    BddError,
    MemoryPressureExceeded,
    SpaceLimitExceeded,
    VariableOrderError,
)
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.ordering import RemappedStateVariables, StateVariables
from repro.bdd.pressure import PressureConfig, PressureMonitor
from repro.bdd.reorder import (
    block_window_search,
    reorder,
    transfer,
    window_search,
)
from repro.bdd.dot import to_dot

__all__ = [
    "BddManager",
    "FALSE",
    "TRUE",
    "BddError",
    "SpaceLimitExceeded",
    "MemoryPressureExceeded",
    "VariableOrderError",
    "StateVariables",
    "RemappedStateVariables",
    "PressureConfig",
    "PressureMonitor",
    "reorder",
    "transfer",
    "window_search",
    "block_window_search",
    "to_dot",
]
