"""Variable reordering for the OBDD package.

The manager identifies variable *order* with variable *number*, so
reordering means transferring functions into a fresh manager under a
renumbering.  Two entry points:

* :func:`transfer` / :func:`reorder` — rebuild a set of functions under
  an explicit new order (returns the fresh manager, translated roots
  and the old-variable -> new-variable map),
* :func:`window_search` — a window-permutation minimisation heuristic
  (try every permutation of each sliding window of adjacent variables,
  keep the best), the classic lightweight alternative to sifting.

The fault simulator itself keeps its static interleaved order (the
variable-order ablation benchmark shows why); reordering is offered for
analysis workloads — reachable-state sets and detection functions that
outlive a simulation run.
"""

from itertools import permutations

from repro.bdd.errors import SpaceLimitExceeded
from repro.bdd.manager import BddManager

_EXPAND = 0
_COMBINE = 1


def transfer(src, roots, dst, var_map):
    """Rebuild *roots* from manager *src* inside manager *dst*.

    *var_map* maps source variable numbers to destination variable
    numbers (identity for unmapped variables).  Returns the translated
    roots, in order.

    Iterative (explicit work stack, like the manager's own traversals):
    a transferred BDD can be a chain deeper than Python's recursion
    limit — a conjunction of a few thousand literals already is.
    """
    memo = {0: 0, 1: 1}

    def walk(root):
        tasks = [(_EXPAND, root)]
        results = []
        while tasks:
            tag, node = tasks.pop()
            if tag == _EXPAND:
                found = memo.get(node)
                if found is not None:
                    results.append(found)
                    continue
                tasks.append((_COMBINE, node))
                tasks.append((_EXPAND, src.low(node)))
                tasks.append((_EXPAND, src.high(node)))
            else:
                lo = results.pop()
                hi = results.pop()
                var = src.var(node)
                new_var = var_map.get(var, var)
                result = dst.ite(dst.mk_var(new_var), hi, lo)
                memo[node] = result
                results.append(result)
        return results[0]

    return [walk(root) for root in roots]


def reorder(manager, roots, new_order, node_limit=None):
    """Rebuild *roots* under *new_order* (old variable numbers, listed
    root-to-leaf).

    Returns ``(new_manager, new_roots, var_map)`` where ``var_map``
    maps each old variable number to its new number (= its position in
    *new_order*).
    """
    order = list(new_order)
    if sorted(order) != sorted(set(order)):
        raise ValueError("new_order contains duplicates")
    var_map = {old: position for position, old in enumerate(order)}
    missing = set()
    for root in roots:
        missing |= manager.support(root) - set(order)
    if missing:
        raise ValueError(f"new_order misses variables {sorted(missing)}")
    new_manager = BddManager(num_vars=len(order), node_limit=node_limit)
    new_roots = transfer(manager, roots, new_manager, var_map)
    return new_manager, new_roots, var_map


def window_search(manager, roots, window=3, passes=1):
    """Window-permutation reordering heuristic.

    Slides a window of *window* adjacent order positions over the
    current order, tries every permutation of the window, and keeps the
    arrangement with the smallest shared node count of *roots*.
    Returns ``(new_manager, new_roots, order)`` where *order* lists the
    ORIGINAL variable numbers in their final arrangement.
    """
    support = set()
    for root in roots:
        support |= manager.support(root)
    order = sorted(support)
    if not order:
        return manager, list(roots), order

    # candidate orders are always expressed in ORIGINAL variable
    # numbers and rebuilt from the original manager, so sizes stay
    # comparable and no renumbering chains accumulate
    current_order = list(order)
    best_size = manager.size(roots)

    for _pass in range(passes):
        improved = False
        for start in range(0, max(1, len(current_order) - window + 1)):
            head = current_order[:start]
            body = current_order[start:start + window]
            tail = current_order[start + window:]
            for perm in permutations(body):
                if list(perm) == body:
                    continue
                candidate = head + list(perm) + tail
                new_manager, new_roots, _ = reorder(
                    manager, roots, candidate
                )
                size = new_manager.size(new_roots)
                if size < best_size:
                    best_size = size
                    current_order = candidate
                    improved = True
        if not improved:
            break

    if current_order == order:
        return manager, list(roots), current_order
    final_manager, final_roots, _ = reorder(manager, roots,
                                            current_order)
    return final_manager, final_roots, current_order


def block_window_search(manager, roots, blocks, window=2, passes=1,
                        node_limit=None):
    """Window-permutation search over contiguous variable *blocks*.

    Like :func:`window_search`, but the permutation unit is a *block*
    of variables that must stay contiguous and internally ordered.
    This is the shape the symbolic fault simulator needs: its
    interleaved ``(x_i, y_i)`` pairs may move as units without breaking
    the monotonicity of the MOT ``x -> y`` rename, while splitting a
    pair would.

    *blocks* lists tuples of ORIGINAL variable numbers; together they
    must cover the support of *roots*.  Candidate rebuilds honour
    *node_limit* — a candidate that overflows is simply skipped, so the
    search itself can never blow up past the caller's budget.

    Returns ``(new_manager, new_roots, var_map)`` for the best
    arrangement found, or None when no rearrangement beats the current
    one (callers keep their manager untouched in that case).
    """
    blocks = [tuple(block) for block in blocks]

    def var_order(block_order):
        order = []
        for position in block_order:
            order.extend(blocks[position])
        return order

    def rebuild(block_order):
        return reorder(manager, roots, var_order(block_order),
                       node_limit=node_limit)

    current = list(range(len(blocks)))
    best_size = manager.size(roots)

    for _pass in range(passes):
        improved = False
        for start in range(0, max(1, len(current) - window + 1)):
            head = current[:start]
            body = current[start:start + window]
            tail = current[start + window:]
            for perm in permutations(body):
                if list(perm) == body:
                    continue
                candidate = head + list(perm) + tail
                try:
                    cand_manager, cand_roots, _ = rebuild(candidate)
                except SpaceLimitExceeded:
                    continue
                size = cand_manager.size(cand_roots)
                if size < best_size:
                    best_size = size
                    current = candidate
                    improved = True
        if not improved:
            break

    if current == list(range(len(blocks))):
        return None
    return rebuild(current)
