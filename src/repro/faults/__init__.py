"""Single stuck-at fault model, universe enumeration and collapsing."""

from repro.faults.model import BRANCH, DBRANCH, STEM, Fault, stem_signal
from repro.faults.universe import enumerate_faults, enumerate_leads
from repro.faults.collapse import collapse_faults, equivalence_classes
from repro.faults.dominance import dominance_collapse, dominance_pairs
from repro.faults.status import (
    BY_3V,
    BY_MOT,
    BY_RMOT,
    BY_SOT,
    DETECTED,
    UNDETECTED,
    X_REDUNDANT,
    FaultRecord,
    FaultSet,
)

__all__ = [
    "Fault",
    "STEM",
    "BRANCH",
    "DBRANCH",
    "stem_signal",
    "enumerate_faults",
    "enumerate_leads",
    "collapse_faults",
    "equivalence_classes",
    "dominance_collapse",
    "dominance_pairs",
    "FaultRecord",
    "FaultSet",
    "UNDETECTED",
    "DETECTED",
    "X_REDUNDANT",
    "BY_3V",
    "BY_SOT",
    "BY_RMOT",
    "BY_MOT",
]
