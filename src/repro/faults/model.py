"""Single stuck-at fault model on stems and fanout branches.

A *lead* is a fault site:

* ``("stem", sig)`` — a net (primary input, gate output or flip-flop
  output); a stem fault affects every sink of the net,
* ``("branch", gate_pos, pin)`` — one input pin of one gate; only that
  gate sees the stuck value (only created where the source net actually
  branches, i.e. has more than one sink),
* ``("dbranch", dff_idx)`` — the D input pin of one flip-flop, again
  only created on branching nets.

Faults on primary-output observation points are not modelled (the PO
"pin" is an observation of the stem, not a separate lead); this choice
is documented in DESIGN.md and only shifts absolute fault counts.
"""

STEM = "stem"
BRANCH = "branch"
DBRANCH = "dbranch"


class Fault:
    """A single stuck-at fault: *lead* stuck at *value*."""

    __slots__ = ("lead", "value")

    def __init__(self, lead, value):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value!r}")
        if lead[0] not in (STEM, BRANCH, DBRANCH):
            raise ValueError(f"unknown lead kind {lead[0]!r}")
        self.lead = lead
        self.value = value

    @property
    def kind(self):
        return self.lead[0]

    def key(self):
        """Hashable identity used by the collapser and status tables."""
        return (self.lead, self.value)

    def describe(self, compiled):
        """Human-readable name, e.g. ``G10 s-a-0`` or ``G5->G9[1] s-a-1``."""
        kind = self.lead[0]
        if kind == STEM:
            where = compiled.names[self.lead[1]]
        elif kind == BRANCH:
            gate_pos, pin = self.lead[1], self.lead[2]
            gate = compiled.gates[gate_pos]
            src = compiled.names[gate.fanins[pin]]
            dst = compiled.names[gate.out]
            where = f"{src}->{dst}[{pin}]"
        else:
            dff_idx = self.lead[1]
            q = compiled.names[compiled.ppis[dff_idx]]
            d = compiled.names[compiled.dff_d[dff_idx]]
            where = f"{d}->DFF({q})"
        return f"{where} s-a-{self.value}"

    def __eq__(self, other):
        return isinstance(other, Fault) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return f"Fault({self.lead}, sa{self.value})"


def stem_fault(compiled, net_name, value):
    """Convenience: the stem stuck-at-*value* fault on net *net_name*."""
    return Fault((STEM, compiled.index[net_name]), value)


def stem_signal(compiled, fault):
    """The net whose value the fault corrupts (source net for branches)."""
    kind = fault.lead[0]
    if kind == STEM:
        return fault.lead[1]
    if kind == BRANCH:
        gate_pos, pin = fault.lead[1], fault.lead[2]
        return compiled.gates[gate_pos].fanins[pin]
    return compiled.dff_d[fault.lead[1]]
