"""Dominance fault collapsing (on top of equivalence collapsing).

Fault *a* dominates fault *b* when every test detecting *b* also
detects *a*; the dominated class representative can then stand for the
dominator in test generation.  The classic combinational intra-gate
rules (with the usual caveat that they are applied to the combinational
core of the sequential circuit, treating flip-flop boundaries as
pseudo-outputs, which keeps them safe for the SOT/MOT strategies
because both observe the very same primary outputs over time):

* AND:  output s-a-1 dominates every input s-a-1
         (NAND: output s-a-0 dominates input s-a-1)
* OR:   output s-a-0 dominates every input s-a-0
         (NOR: output s-a-1 dominates input s-a-0)

Dominance collapsing only ever *shrinks the fault list used for test
generation*; for fault-coverage reporting the equivalence-collapsed
list remains the reference (dominators may be undetectable while the
dominated fault is detectable in sequential circuits from unknown
state, so we keep the relation explicit instead of silently dropping
faults — callers choose via :func:`dominance_collapse`'s
``keep='dominated'`` default, the safe direction).
"""

from repro.circuit import gates as gatelib
from repro.faults.collapse import _input_lead, collapse_faults
from repro.faults.model import STEM, Fault


def dominance_pairs(compiled):
    """Yield ``(dominator_key, dominated_key)`` fault-key pairs."""
    pairs = []
    for cg in compiled.gates:
        base, inverted = gatelib.base_op(cg.kind)
        if base not in ("AND", "OR"):
            continue
        non_controlling = 1 if base == "AND" else 0
        out_value = (
            1 - non_controlling if inverted else non_controlling
        )
        out_key = ((STEM, cg.out), out_value)
        for pin in range(len(cg.fanins)):
            in_lead = _input_lead(compiled, cg.pos, pin)
            pairs.append((out_key, (in_lead, non_controlling)))
    return pairs


def dominance_collapse(compiled, faults=None, keep="dominated"):
    """Collapse *faults* by dominance after equivalence.

    ``keep='dominated'`` removes dominators whose dominated partner is
    also in the list (safe: a test set for the kept faults covers the
    removed ones).  Returns ``(kept_faults, removed_map)`` where
    *removed_map* maps removed fault keys to the fault that justified
    the removal.
    """
    if keep != "dominated":
        raise ValueError("only keep='dominated' is supported (safe side)")
    if faults is None:
        faults, _ = collapse_faults(compiled)
    _reps, class_map = collapse_faults(compiled)

    def rep_key(key):
        rep = class_map.get(key)
        return rep.key() if rep is not None else key

    present = {rep_key(f.key()): f for f in faults}
    removed = {}
    for dominator, dominated in dominance_pairs(compiled):
        dom_rep = rep_key(dominator)
        sub_rep = rep_key(dominated)
        if dom_rep == sub_rep:
            continue  # already equivalent
        if dom_rep in present and sub_rep in present:
            if dom_rep in removed:
                continue
            removed[dom_rep] = present[sub_rep]
    kept = [f for f in faults if rep_key(f.key()) not in removed]
    return kept, removed
