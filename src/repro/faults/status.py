"""Fault status bookkeeping shared by all fault simulators."""

UNDETECTED = "undetected"
DETECTED = "detected"
X_REDUNDANT = "x-redundant"
# set by the campaign runtime when a fault exhausts the degradation
# ladder; the fault is excluded from further simulation and counts as
# unclassified in coverage reports
QUARANTINED = "quarantined"

# how a fault got detected
BY_3V = "3-valued"
BY_SOT = "SOT"
BY_RMOT = "rMOT"
BY_MOT = "MOT"


class FaultRecord:
    """Mutable per-fault simulation state."""

    __slots__ = ("fault", "status", "detected_by", "detected_at")

    def __init__(self, fault):
        self.fault = fault
        self.status = UNDETECTED
        self.detected_by = None
        self.detected_at = None  # time frame (1-based), if detected

    def mark_detected(self, by, at):
        self.status = DETECTED
        self.detected_by = by
        self.detected_at = at

    def mark_x_redundant(self):
        self.status = X_REDUNDANT

    def mark_quarantined(self):
        self.status = QUARANTINED
        self.detected_by = None
        self.detected_at = None

    def state_to_json(self):
        """JSON-serializable [status, detected_by, detected_at]."""
        return [self.status, self.detected_by, self.detected_at]

    def state_from_json(self, data):
        """Restore what :meth:`state_to_json` captured."""
        self.status, self.detected_by, self.detected_at = data

    def __repr__(self):
        extra = ""
        if self.status == DETECTED:
            extra = f" by {self.detected_by} at t={self.detected_at}"
        return f"FaultRecord({self.fault!r}: {self.status}{extra})"


class FaultSet:
    """A fault list with status tracking and simple accounting."""

    def __init__(self, faults):
        self.records = [FaultRecord(f) for f in faults]
        self._by_key = {r.fault.key(): r for r in self.records}

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def record(self, fault):
        return self._by_key[fault.key()]

    def undetected(self):
        """Records still live for simulation (not detected, not X-red)."""
        return [r for r in self.records if r.status == UNDETECTED]

    def symbolic_candidates(self):
        """Records the symbolic strategies should consider: everything
        the three-valued pass could not classify as detected — i.e. the
        still-undetected faults *and* the X-redundant ones (the paper's
        F_u of Tables II/III includes both)."""
        return [
            r
            for r in self.records
            if r.status in (UNDETECTED, X_REDUNDANT)
        ]

    def detected(self, by=None):
        if by is None:
            return [r for r in self.records if r.status == DETECTED]
        return [
            r
            for r in self.records
            if r.status == DETECTED and r.detected_by == by
        ]

    def x_redundant(self):
        return [r for r in self.records if r.status == X_REDUNDANT]

    def quarantined(self):
        return [r for r in self.records if r.status == QUARANTINED]

    def clone(self):
        """Deep copy of statuses (faults themselves are immutable)."""
        other = FaultSet([r.fault for r in self.records])
        for src, dst in zip(self.records, other.records):
            dst.status = src.status
            dst.detected_by = src.detected_by
            dst.detected_at = src.detected_at
        return other

    def counts(self):
        """Dict of headline counts matching the paper's table columns."""
        return {
            "total": len(self.records),
            "detected": len(self.detected()),
            "undetected": len(self.undetected()),
            "x_redundant": len(self.x_redundant()),
            "quarantined": len(self.quarantined()),
        }

    def coverage(self):
        """Fault coverage = detected / total."""
        if not self.records:
            return 0.0
        return len(self.detected()) / len(self.records)


def fault_key_to_json(key):
    """JSON-serializable form of :meth:`Fault.key` (tuples -> lists)."""
    lead, value = key
    return [list(lead), value]


def fault_key_from_json(data):
    """Inverse of :func:`fault_key_to_json`."""
    lead, value = data
    return (tuple(lead), value)
