"""Fault-universe enumeration."""

from repro.faults.model import BRANCH, DBRANCH, STEM, Fault


def enumerate_leads(compiled):
    """All fault sites of a compiled circuit.

    Stems on every net; branch leads on every gate pin and flip-flop D
    pin whose source net has more than one sink.
    """
    leads = [(STEM, sig) for sig in range(compiled.num_signals)]
    for cg in compiled.gates:
        for pin, src in enumerate(cg.fanins):
            if compiled.has_fanout_branches(src):
                leads.append((BRANCH, cg.pos, pin))
    for dff_idx, d in enumerate(compiled.dff_d):
        if compiled.has_fanout_branches(d):
            leads.append((DBRANCH, dff_idx))
    return leads


def enumerate_faults(compiled):
    """The uncollapsed fault universe: both polarities on every lead."""
    faults = []
    for lead in enumerate_leads(compiled):
        faults.append(Fault(lead, 0))
        faults.append(Fault(lead, 1))
    return faults
