"""Equivalence fault collapsing.

Classic intra-gate equivalences:

* AND:  any input s-a-0  ==  output s-a-0      (NAND: output s-a-1)
* OR:   any input s-a-1  ==  output s-a-1      (NOR:  output s-a-0)
* BUF:  input s-a-v      ==  output s-a-v
* NOT:  input s-a-v      ==  output s-a-(1-v)

"Input" means the branch lead when the source net branches, otherwise
the source net's stem lead (the pin and the stem are then the same
electrical node).  XOR/XNOR gates contribute no equivalences.

The collapsed list keeps one representative per equivalence class —
deterministically the structurally earliest lead (closest to the
inputs), matching the usual convention.
"""

from repro.circuit import gates as gatelib
from repro.faults.model import BRANCH, STEM, Fault
from repro.faults.universe import enumerate_faults


class _UnionFind:
    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _input_lead(compiled, gate_pos, pin):
    """The lead that models a fault on this gate input pin."""
    src = compiled.gates[gate_pos].fanins[pin]
    if compiled.has_fanout_branches(src):
        return (BRANCH, gate_pos, pin)
    return (STEM, src)


def equivalence_classes(compiled):
    """Union-find over (lead, value) pairs built from gate equivalences."""
    uf = _UnionFind()
    for cg in compiled.gates:
        base, inverted = gatelib.base_op(cg.kind)
        out_lead = (STEM, cg.out)
        if base == "ID":
            in_lead = _input_lead(compiled, cg.pos, 0)
            for value in (0, 1):
                out_value = 1 - value if inverted else value
                uf.union((in_lead, value), (out_lead, out_value))
        elif base in ("AND", "OR"):
            controlling = 0 if base == "AND" else 1
            out_value = 1 - controlling if inverted else controlling
            for pin in range(len(cg.fanins)):
                in_lead = _input_lead(compiled, cg.pos, pin)
                uf.union((in_lead, controlling), (out_lead, out_value))
        # XOR/XNOR/CONST: no equivalences
    return uf


def _lead_rank(compiled, lead):
    """Sort key preferring leads closest to the primary inputs."""
    kind = lead[0]
    if kind == STEM:
        return (compiled.level[lead[1]], 0, lead[1], 0)
    if kind == BRANCH:
        gate_pos, pin = lead[1], lead[2]
        src = compiled.gates[gate_pos].fanins[pin]
        return (compiled.level[src], 1, src, gate_pos * 64 + pin)
    dff_idx = lead[1]
    src = compiled.dff_d[dff_idx]
    return (compiled.level[src], 2, src, dff_idx)


def collapse_faults(compiled, faults=None):
    """Collapse *faults* (default: the full universe) by equivalence.

    Returns ``(representatives, class_map)`` where *representatives* is
    the collapsed fault list and *class_map* maps every original fault
    key to its representative :class:`Fault`.
    """
    if faults is None:
        faults = enumerate_faults(compiled)
    uf = equivalence_classes(compiled)

    groups = {}
    for fault in faults:
        root = uf.find(fault.key())
        groups.setdefault(root, []).append(fault)

    representatives = []
    class_map = {}
    for members in groups.values():
        rep = min(
            members, key=lambda f: (_lead_rank(compiled, f.lead), f.value)
        )
        representatives.append(rep)
        for fault in members:
            class_map[fault.key()] = rep
    representatives.sort(
        key=lambda f: (_lead_rank(compiled, f.lead), f.value)
    )
    return representatives, class_map
