"""Job specs, the in-memory job table entry and cooperative stopping.

A job is one campaign: circuit + test sequence + strategy plus the
runtime knobs the CLI would accept (budgets, sharding, checkpoint
cadence).  Specs arrive as the JSON body of ``POST /jobs``, are
validated *strictly* (unknown keys are rejected — a typo'd budget knob
silently ignored would be a robustness hole, not a convenience) and
are journaled verbatim, so a restarted service re-executes exactly
what was admitted.
"""

import os

from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT

_STRATEGIES = ("3v", "SOT", "rMOT", "MOT")


class JobSpecError(ValueError):
    """An invalid job submission (maps to HTTP 400)."""


#: field name -> (type(s), default).  ``workers=0`` — sharded but
#: in-process — is the default execution mode: shard-level checkpoints
#: make restart recovery *exact* (re-running a shard reproduces its
#: verdicts), which is what lets the service promise byte-identical
#: results across a crash.
_FIELDS = {
    "circuit": (str, None),
    "strategy": (str, "MOT"),
    "length": (int, 100),
    "seed": (int, 1),
    "sequence": (list, None),
    "node_limit": (int, DEFAULT_NODE_LIMIT),
    "deadline": ((int, float), None),
    "node_budget": (int, None),
    "workers": (int, 0),
    "shard_size": (int, 16),
    "max_retries": (int, None),
    "checkpoint_every": (int, 10),
    "fallback_frames": (int, 5),
    "xred": (bool, True),
}


class JobSpec:
    """A validated campaign job description."""

    def __init__(self, **fields):
        for name, (_types, default) in _FIELDS.items():
            setattr(self, name, fields.get(name, default))

    @classmethod
    def from_json(cls, data):
        if not isinstance(data, dict):
            raise JobSpecError("job spec must be a JSON object")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise JobSpecError(f"unknown job spec fields: {unknown}")
        fields = {}
        for name, (types, default) in _FIELDS.items():
            value = data.get(name, default)
            if value is None:
                continue
            # bool is an int subclass; don't let `true` pass as a count
            if (isinstance(value, bool) and types is not bool) or (
                not isinstance(value, types)
            ):
                raise JobSpecError(
                    f"field {name!r} must be "
                    f"{getattr(types, '__name__', types)}, "
                    f"got {type(value).__name__}"
                )
            fields[name] = value
        spec = cls(**fields)
        spec.validate()
        return spec

    def validate(self):
        if not self.circuit:
            raise JobSpecError("field 'circuit' is required")
        if self.strategy not in _STRATEGIES:
            raise JobSpecError(
                f"strategy must be one of {_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        from repro.circuits.registry import available

        if self.circuit not in available() and not os.path.exists(
            self.circuit
        ):
            raise JobSpecError(
                f"unknown circuit {self.circuit!r}: not a registry name "
                "and no such file on the service host"
            )
        for name in ("length", "seed", "node_limit", "checkpoint_every",
                     "fallback_frames", "shard_size"):
            value = getattr(self, name)
            if value is not None and value < 1 and name != "seed":
                raise JobSpecError(f"field {name!r} must be >= 1")
        if self.workers is not None and self.workers < 0:
            raise JobSpecError("field 'workers' must be >= 0 (0 = inline)")
        if self.deadline is not None and self.deadline <= 0:
            raise JobSpecError("field 'deadline' must be positive seconds")
        if self.sequence is not None:
            for index, line in enumerate(self.sequence):
                if not isinstance(line, str) or not line or any(
                    c not in "01" for c in line
                ):
                    raise JobSpecError(
                        f"sequence[{index}] must be a non-empty '01' string"
                    )

    def to_json(self):
        payload = {}
        for name in _FIELDS:
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload


class JobGuard:
    """A :class:`~repro.runtime.checkpoint.SignalGuard` stand-in.

    The campaign/fabric loops only ever *read* ``stop_requested`` at
    frame/shard boundaries, so cancellation and drain need no real
    signals — the service sets the flag from the HTTP or drain thread
    and the in-flight campaign checkpoints and returns ``stopped ==
    "signal"`` at its next safe point.
    """

    def __init__(self):
        self.stop_requested = None

    def request_stop(self, reason):
        self.stop_requested = reason


class Job:
    """One journaled job: spec, lifecycle state and live handles."""

    __slots__ = ("id", "spec", "state", "attempts", "error",
                 "stop_reason", "result_file", "guard",
                 "cancel_requested", "submitted_at", "events")

    def __init__(self, job_id, spec, state, submitted_at=None):
        from repro.service.events import JobEventBuffer

        self.id = job_id
        self.spec = spec
        self.state = state
        self.attempts = 0
        self.error = None
        self.stop_reason = None
        self.result_file = None
        self.guard = JobGuard()
        self.cancel_requested = False
        self.submitted_at = submitted_at
        self.events = JobEventBuffer()

    def summary(self):
        payload = {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
            "spec": self.spec.to_json(),
        }
        if self.submitted_at is not None:
            payload["submitted_at"] = self.submitted_at
        if self.error is not None:
            payload["error"] = self.error
        if self.stop_reason is not None:
            payload["stopped"] = self.stop_reason
        return payload
