"""The campaign daemon: HTTP front end, admission control, recovery.

``python -m repro serve`` starts a :class:`ThreadingHTTPServer`
(stdlib only — the service has exactly the dependency footprint of the
CLI) in front of a bounded admission queue and a small pool of
:class:`~repro.service.executor.JobExecutor` threads.  The design
invariants, in the order they matter:

* **Admitted means finished.**  Overload is handled entirely at the
  admission edge: a full queue answers ``429 Too Many Requests`` with
  a ``Retry-After`` hint and increments a shed counter.  Jobs already
  admitted are never degraded, reordered or dropped.
* **Every lifecycle edge is journaled before it is acted on.**  The
  fsync'd JSONL journal (:mod:`repro.service.journal`) is the single
  source of truth; a ``kill -9`` loses at most the record being
  written.  On restart :meth:`CampaignService.recover` replays the
  journal, serves terminal jobs' results idempotently and requeues
  everything non-terminal — the per-job campaign checkpoint then makes
  the re-run exact.
* **Drain is cooperative.**  ``SIGTERM``/``SIGINT`` stop admission
  (``/readyz`` flips to 503), ask in-flight jobs to stop at their next
  frame/shard boundary (they checkpoint and journal ``interrupted``),
  flush the journal and exit 0.
"""

import json
import os
import shutil
import signal
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, JsonlSink, Tracer
from repro.runtime.checkpoint import write_json_atomic
from repro.runtime.disk import (
    LEVEL_HARD,
    DiskConfig,
    DiskGovernor,
    artifact_usage_bytes,
)
from repro.runtime.errors import CheckpointError
from repro.service import journal as states
from repro.service.executor import RESULT_NAME, JobExecutor
from repro.service.jobs import Job, JobSpec, JobSpecError
from repro.service.journal import JobJournal

JOURNAL_NAME = "journal.jsonl"
ENDPOINT_NAME = "endpoint.json"


class ServiceConfig:
    """Tuning knobs of the campaign service (all with safe defaults)."""

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        state_dir="repro-serve",
        queue_limit=8,
        executors=1,
        retry_after=5,
        trace=None,
        drain_timeout=None,
        disk_budget=None,
        artifact_quota=None,
        journal_snapshot_every=512,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if executors < 1:
            raise ValueError("executors must be >= 1")
        if artifact_quota is not None and artifact_quota < 1:
            raise ValueError("artifact_quota must be >= 1 byte")
        self.host = host
        self.port = port
        self.state_dir = state_dir
        self.queue_limit = queue_limit
        self.executors = executors
        self.retry_after = retry_after
        self.trace = trace
        self.drain_timeout = drain_timeout
        self.disk_budget = disk_budget
        self.artifact_quota = artifact_quota
        self.journal_snapshot_every = journal_snapshot_every


class CampaignService:
    """Job table, admission queue and journal behind the HTTP API."""

    def __init__(self, config):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.journal = JobJournal(
            os.path.join(config.state_dir, JOURNAL_NAME),
            snapshot_every=config.journal_snapshot_every,
        )
        self._disk = None
        if config.disk_budget is not None:
            self._disk = DiskGovernor(
                DiskConfig(budget=config.disk_budget),
                paths=[config.state_dir],
            )
        self.metrics = MetricsRegistry()
        if config.trace:
            self.tracer = Tracer(JsonlSink(config.trace))
            self.tracer.write_header("repro-serve", pid=os.getpid())
        else:
            self.tracer = NULL_TRACER
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._queue = deque()
        self._jobs = {}
        self._next_id = 1
        self.draining = False
        self._server = None
        self._http_thread = None
        self._executor = None

    # -- helpers -------------------------------------------------------

    def job_dir(self, job_id):
        return os.path.join(self.config.state_dir, "jobs", job_id)

    def trace_span(self, name, **fields):
        return self.tracer.span(name, **fields)

    def _new_job_id(self):
        job_id = f"job-{self._next_id:06d}"
        self._next_id += 1
        return job_id

    def _push_event(self, job, kind, payload=None, close=False):
        """Feed the job's event stream; drops, never blocks."""
        job.events.push(kind, payload)
        if close:
            job.events.close()

    def _refresh_gauges(self):
        self.metrics.gauge("service.queue_depth", len(self._queue))
        running = sum(
            1 for job in self._jobs.values()
            if job.state == states.RUNNING
        )
        self.metrics.gauge("service.running", running)

    # -- disk retention ------------------------------------------------

    def _delete_artifacts(self, job_id):
        """Remove a job's on-disk artifacts; returns bytes reclaimed."""
        path = self.job_dir(job_id)
        reclaimed = artifact_usage_bytes([path])
        shutil.rmtree(path, ignore_errors=True)
        return reclaimed

    def _gc_artifacts(self):
        """Enforce the artifact quota over the job directories.

        Ages out the on-disk artifacts (campaign checkpoint, trace,
        result file) of the *oldest terminal* jobs until total usage
        fits the quota again.  The journal keeps each job's terminal
        metadata — state, result digest, verdict counts — so history
        survives the bytes; ``GET /jobs/<id>`` then reports
        ``result: null``.  Jobs still queued or running are never
        touched.  Caller holds the lock.  Returns bytes reclaimed.
        """
        quota = self.config.artifact_quota
        if quota is None:
            return 0
        jobs_root = os.path.join(self.config.state_dir, "jobs")
        usage = artifact_usage_bytes([jobs_root])
        if usage <= quota:
            return 0
        terminal = sorted(
            (
                job for job in self._jobs.values()
                if job.state in states.TERMINAL
            ),
            key=lambda job: (job.submitted_at or 0, job.id),
        )
        reclaimed = 0
        for job in terminal:
            if usage - reclaimed <= quota:
                break
            if not os.path.isdir(self.job_dir(job.id)):
                continue
            reclaimed += self._delete_artifacts(job.id)
            self.metrics.inc("service.artifacts_gced")
        if reclaimed and self._disk is not None:
            self._disk.note_compaction(usage, usage - reclaimed)
        return reclaimed

    def _journal_record_count(self):
        """Lines (== records) currently in the journal file."""
        try:
            with open(self.journal.path, "rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def _maybe_snapshot_journal(self):
        """Threshold-triggered journal compaction; caller holds the lock."""
        try:
            if self.journal.maybe_snapshot() is not None:
                self.metrics.inc("service.journal_snapshots")
        except CheckpointError:
            # corrupt journal: keep appending, recovery will quarantine
            self.metrics.inc("service.journal_snapshot_failures")

    def _relieve_disk(self):
        """The service's relief ladder: GC artifacts, snapshot journal."""
        self._gc_artifacts()
        try:
            if os.path.getsize(self.journal.path) > 0:
                self.journal.snapshot()
                self.metrics.inc("service.journal_snapshots")
        except (OSError, CheckpointError):
            self.metrics.inc("service.journal_snapshot_failures")

    def _disk_shed(self):
        """``(status, headers, body)`` when disk pressure sheds, or None.

        Probes the governor (throttled); at the hard watermark runs the
        relief ladder and re-probes.  Still hard afterwards means the
        state directory genuinely cannot absorb another job: the submit
        is shed with ``507 Insufficient Storage`` and a ``Retry-After``
        hint.  Admitted jobs are never touched — like the queue-full
        ``429``, overload is handled entirely at the admission edge.
        """
        if self._disk is None:
            return None
        # Submissions are rare next to campaign frames, so the edge
        # always pays for a fresh probe — a stale throttled sample
        # must not admit a job the disk cannot absorb.
        if self._disk.check(force=True) != LEVEL_HARD:
            return None
        self._relieve_disk()
        if self._disk.check(force=True) != LEVEL_HARD:
            return None
        self.metrics.inc("service.disk_sheds")
        self.metrics.gauge(
            "service.disk_usage", self._disk.last_usage or 0
        )
        return (
            507,
            {"Retry-After": str(self.config.retry_after)},
            {
                "error": "disk budget exhausted",
                "disk_budget": self.config.disk_budget,
                "retry_after": self.config.retry_after,
            },
        )

    # -- recovery ------------------------------------------------------

    def recover(self):
        """Replay the journal: serve old results, requeue unfinished work.

        Returns the number of jobs requeued.  Requeue preserves the
        original submit order, so recovered work is not starved by (or
        does not starve) anything — the queue after a restart looks
        exactly like the queue the dead daemon owed its clients.

        Journal records failing their CRC are quarantined (counted in
        ``service.journal_quarantined``), never fatal to recovery.  A
        recoverable job whose *submitted* record was the casualty has
        no spec left to re-run: it is journaled ``cancelled`` with a
        typed reason instead of being requeued blind or dropped
        silently.

        Recovery is also the cheapest compaction point: a journal that
        has outgrown the snapshot threshold is compacted down to one
        record before the replay (skipped when the file is corrupt —
        quarantined records must surface in the replay, never be
        laundered into a snapshot).  Short journals are left alone so
        a restart does not erase per-job lifecycle history that post
        mortems (and the drain-contract tests) read straight from the
        file.  After the replay the artifact quota is enforced over
        the job directories.
        """
        try:
            threshold = self.journal.snapshot_every
            if (
                threshold is not None
                and self._journal_record_count() >= threshold
            ):
                self.journal.snapshot()
                self.metrics.inc("service.journal_snapshots")
        except (OSError, CheckpointError):
            pass  # corrupt or unreadable: fall through to lenient replay
        corrupt = []
        replayed = states.replay_journal_state(
            self.journal.path, on_corrupt=corrupt.append
        )
        jobs = replayed.jobs
        requeued = 0
        with self._lock:
            if replayed.next_id is not None:
                self._next_id = max(self._next_id, replayed.next_id)
            for job_id, view in jobs.items():
                state = view.get("state")
                if state not in states.STATES:
                    continue
                spec_json = view.get("spec")
                if spec_json is None:
                    self.journal.note_replayed_state(job_id, state)
                    if state in states.RECOVERABLE:
                        self.journal.job_event(
                            job_id, states.CANCELLED,
                            error="journal corruption: submitted record "
                                  "quarantined, job spec unrecoverable",
                        )
                        self.metrics.inc("service.cancelled")
                    continue
                spec = JobSpec(**spec_json)
                job = Job(job_id, spec, state,
                          submitted_at=view.get("submitted_at"))
                job.error = view.get("error")
                job.result_file = view.get("result_file")
                job.attempts = view.get("attempt", 0)
                self._jobs[job_id] = job
                if state in states.TERMINAL:
                    self._push_event(
                        job, "state",
                        {"state": state, "recovered": True}, close=True,
                    )
                self.journal.note_replayed_state(job_id, state)
                try:
                    numeric = int(job_id.rsplit("-", 1)[-1])
                except ValueError:
                    numeric = 0
                self._next_id = max(self._next_id, numeric + 1)
                if state in states.RECOVERABLE:
                    self.journal.job_event(
                        job_id, states.SUBMITTED, recovered=True,
                        previous=state,
                    )
                    job.state = states.SUBMITTED
                    self._push_event(job, "state", {
                        "state": states.SUBMITTED, "recovered": True,
                        "previous": state,
                    })
                    self._queue.append(job)
                    requeued += 1
            self.metrics.set_total("service.recovered", requeued)
            if corrupt:
                self.metrics.set_total(
                    "service.journal_quarantined", len(corrupt)
                )
            self._refresh_gauges()
            self._work.notify_all()
        self.journal.service_event(
            "start", pid=os.getpid(), replayed=len(jobs), requeued=requeued,
            **(
                {"journal_quarantined": [
                    {"line": r["line"], "reason": r["reason"]}
                    for r in corrupt
                ]}
                if corrupt else {}
            ),
        )
        with self._lock:
            self._gc_artifacts()
        return requeued

    # -- the job API (called from HTTP handler threads) ----------------

    def submit(self, data):
        """Admit a job or shed it.  Returns ``(status, headers, body)``."""
        try:
            spec = JobSpec.from_json(data)
        except JobSpecError as exc:
            return 400, {}, {"error": str(exc)}
        with self._lock:
            if self.draining:
                return 503, {}, {"error": "service is draining"}
            if len(self._queue) >= self.config.queue_limit:
                self.metrics.inc("service.sheds")
                return (
                    429,
                    {"Retry-After": str(self.config.retry_after)},
                    {
                        "error": "admission queue full",
                        "queue_limit": self.config.queue_limit,
                        "retry_after": self.config.retry_after,
                    },
                )
            shed = self._disk_shed()
            if shed is not None:
                return shed
            job = Job(self._new_job_id(), spec, states.SUBMITTED,
                      submitted_at=time.time())
            self.journal.job_event(
                job.id, states.SUBMITTED, spec=spec.to_json(),
                submitted_at=job.submitted_at,
            )
            self._jobs[job.id] = job
            self._push_event(job, "state", {"state": states.SUBMITTED})
            self._queue.append(job)
            self.metrics.inc("service.submitted")
            self._refresh_gauges()
            self._work.notify()
            return 202, {}, job.summary()

    def get_job(self, job_id, include_result=True):
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return 404, {}, {"error": f"no such job {job_id!r}"}
            body = job.summary()
        if include_result and job.result_file:
            result_path = os.path.join(
                self.job_dir(job_id), job.result_file
            )
            try:
                with open(result_path, encoding="utf-8") as handle:
                    body["result"] = json.load(handle)
            except (OSError, ValueError):
                body["result"] = None
        return 200, {}, body

    def list_jobs(self):
        with self._lock:
            body = {
                "jobs": [job.summary() for job in self._jobs.values()],
                "queue_depth": len(self._queue),
                "draining": self.draining,
            }
        return 200, {}, body

    def cancel(self, job_id):
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return 404, {}, {"error": f"no such job {job_id!r}"}
            if job.state in states.TERMINAL:
                # terminal DELETE is deletion, not cancellation: the
                # job's artifacts (checkpoint, trace, result) go now,
                # the journal's next snapshot compacts its history away
                reclaimed = self._delete_artifacts(job_id)
                self.journal.job_deleted(job_id)
                self._push_event(job, "state", {"deleted": True},
                                 close=True)
                del self._jobs[job_id]
                self.metrics.inc("service.deleted")
                self._maybe_snapshot_journal()
                self._refresh_gauges()
                return 200, {}, {
                    "job": job_id,
                    "deleted": True,
                    "state": job.state,
                    "reclaimed_bytes": reclaimed,
                }
            job.cancel_requested = True
            if job.state == states.SUBMITTED:
                # still queued: cancel immediately (next_job skips it)
                self.journal.job_event(job_id, states.CANCELLED,
                                       where="queue")
                job.state = states.CANCELLED
                self._push_event(
                    job, "state",
                    {"state": states.CANCELLED, "where": "queue"},
                    close=True,
                )
                self.metrics.inc("service.cancelled")
                self._refresh_gauges()
                return 200, {}, job.summary()
            # running: cooperative stop at the next frame/shard boundary
            job.guard.request_stop("cancel")
            return 202, {}, job.summary()

    def health(self):
        return 200, {}, {"status": "ok", "pid": os.getpid()}

    def ready(self):
        with self._lock:
            if self.draining:
                return 503, {}, {"status": "draining"}
            return 200, {}, {
                "status": "ready",
                "queue_depth": len(self._queue),
                "queue_limit": self.config.queue_limit,
            }

    def metrics_body(self):
        return 200, {}, self.metrics.flat()

    def metrics_exposition(self):
        """Prometheus text exposition of the service registry."""
        return render_prometheus(self.metrics, prefix="repro")

    def push_progress(self, job, payload):
        """Executor-side hook: one campaign/fabric progress payload.

        Runs on the executor thread between frames/shards — it must
        never block, which :meth:`JobEventBuffer.push` guarantees.
        """
        self._push_event(job, "progress", payload)

    def job_events(self, job_id):
        """The event buffer for *job_id*, or ``None`` if unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.events if job is not None else None

    # -- executor side -------------------------------------------------

    def next_job(self):
        """Block until a job is available; ``None`` once drained dry."""
        with self._work:
            while True:
                while self._queue:
                    job = self._queue.popleft()
                    self._refresh_gauges()
                    if job.state == states.CANCELLED:
                        continue  # cancelled while queued
                    return job
                if self.draining:
                    return None
                self._work.wait(timeout=0.25)

    def note_running(self, job):
        with self._lock:
            job.attempts += 1
            job.state = states.RUNNING
            self.journal.job_event(job.id, states.RUNNING,
                                   attempt=job.attempts)
            self._push_event(job, "state", {
                "state": states.RUNNING, "attempt": job.attempts,
            })
            self._refresh_gauges()

    def note_done(self, job, result_file, digest, payload):
        with self._lock:
            job.state = states.DONE
            job.result_file = result_file
            self.journal.job_event(
                job.id, states.DONE, result_file=result_file,
                digest=digest, counts=payload.get("counts"),
            )
            self._push_event(job, "state", {
                "state": states.DONE, "counts": payload.get("counts"),
            }, close=True)
            self.metrics.inc("service.done")
            self._gc_artifacts()
            self._maybe_snapshot_journal()
            self._refresh_gauges()

    def note_failed(self, job, error, result_file=None, digest=None,
                    stopped=None):
        with self._lock:
            job.state = states.FAILED
            job.error = error
            job.result_file = result_file
            job.stop_reason = stopped
            fields = {"error": error}
            if result_file is not None:
                fields["result_file"] = result_file
                fields["digest"] = digest
            if stopped is not None:
                fields["stopped"] = stopped
            self.journal.job_event(job.id, states.FAILED, **fields)
            self._push_event(job, "state", {
                "state": states.FAILED, "error": error,
            }, close=True)
            self.metrics.inc("service.failed")
            self._gc_artifacts()
            self._maybe_snapshot_journal()
            self._refresh_gauges()

    def note_cancelled(self, job, result_file=None, digest=None):
        with self._lock:
            job.state = states.CANCELLED
            job.result_file = result_file
            fields = {"where": "running"}
            if result_file is not None:
                fields["result_file"] = result_file
                fields["digest"] = digest
            self.journal.job_event(job.id, states.CANCELLED, **fields)
            self._push_event(job, "state", {
                "state": states.CANCELLED, "where": "running",
            }, close=True)
            self.metrics.inc("service.cancelled")
            self._gc_artifacts()
            self._maybe_snapshot_journal()
            self._refresh_gauges()

    def note_interrupted(self, job, result_file=None, digest=None):
        with self._lock:
            job.state = states.INTERRUPTED
            job.result_file = result_file
            job.stop_reason = "drain"
            fields = {}
            if result_file is not None:
                fields["result_file"] = result_file
                fields["digest"] = digest
            self.journal.job_event(job.id, states.INTERRUPTED, **fields)
            self._push_event(job, "state", {
                "state": states.INTERRUPTED,
            }, close=True)
            self.metrics.inc("service.interrupted")
            self._refresh_gauges()

    # -- lifecycle -----------------------------------------------------

    def start_http(self):
        """Bind and serve in a daemon thread; returns ``(host, port)``.

        The bound endpoint is also written to ``endpoint.json`` in the
        state directory so scripts using ``--port 0`` (tests, CI) can
        discover the ephemeral port without scraping stdout.
        """
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        host, port = self._server.server_address[:2]
        write_json_atomic(
            os.path.join(self.config.state_dir, ENDPOINT_NAME),
            {"host": host, "port": port, "pid": os.getpid()},
        )
        self._http_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return host, port

    def start_executors(self):
        self._executor = JobExecutor(self, count=self.config.executors)
        self._executor.start()

    def drain(self, reason="signal"):
        """Stop admitting, stop in-flight work at a safe point, flush.

        Returns ``True`` when every executor thread exited before the
        configured ``drain_timeout`` (always true with no timeout).
        """
        with self._lock:
            if self.draining:
                return True
            self.draining = True
            for job in self._jobs.values():
                if job.state == states.RUNNING:
                    job.guard.request_stop("drain")
            self._work.notify_all()
        clean = True
        if self._executor is not None:
            clean = self._executor.join(self.config.drain_timeout)
        self.journal.service_event(
            "drain", reason=reason, clean=clean, pid=os.getpid()
        )
        self.journal.close()
        if self.tracer is not NULL_TRACER:
            self.tracer.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        return clean


# -- HTTP plumbing -----------------------------------------------------


def _make_handler(service):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # the service's own journal is the log; the default per-request
        # stderr line would swamp it under load
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _respond(self, status, headers, body):
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _respond_text(self, status, content_type, text):
            payload = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _read_json(self):
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("empty request body")
            return json.loads(raw)

        def _serve_metrics(self):
            # content negotiation: the JSON body stays the default so
            # existing clients keep their contract; a Prometheus
            # scraper's Accept header switches to text exposition
            if wants_prometheus(self.headers.get("Accept")):
                self._respond_text(
                    200, PROMETHEUS_CONTENT_TYPE,
                    service.metrics_exposition(),
                )
            else:
                self._respond(*service.metrics_body())

        def _serve_events(self, job_id, query):
            buffer = service.job_events(job_id)
            if buffer is None:
                self._respond(404, {}, {"error": f"no such job {job_id!r}"})
                return
            try:
                after = int(query.get("after", ["0"])[0])
                timeout = float(query.get("timeout", ["0"])[0])
            except ValueError:
                self._respond(400, {}, {
                    "error": "after/timeout must be numeric",
                })
                return
            timeout = min(max(timeout, 0.0), 30.0)
            if "text/event-stream" in (self.headers.get("Accept") or ""):
                self._serve_events_sse(job_id, buffer, after)
                return
            events, dropped, closed = buffer.after(after, timeout=timeout)
            self._respond(200, {}, {
                "job": job_id,
                "events": events,
                "dropped": dropped,
                "closed": closed,
            })

        def _serve_events_sse(self, job_id, buffer, after):
            # SSE: chunk events until the stream closes or the client
            # goes away; Connection: close because the stream has no
            # Content-Length and HTTP/1.1 keep-alive would hang
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            seq = after
            try:
                while True:
                    events, dropped, closed = buffer.after(
                        seq, timeout=15.0
                    )
                    for event in events:
                        seq = event["seq"]
                        data = json.dumps(dict(event, dropped=dropped))
                        self.wfile.write(
                            f"id: {seq}\nevent: {event['kind']}\n"
                            f"data: {data}\n\n".encode("utf-8")
                        )
                    if not events:
                        # keep-alive comment so dead clients surface
                        self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    if closed:
                        return
            except (BrokenPipeError, ConnectionResetError, OSError):
                return  # consumer went away; executor unaffected

        def do_GET(self):
            parsed = urlsplit(self.path)
            path = parsed.path
            if path == "/healthz":
                self._respond(*service.health())
            elif path == "/readyz":
                self._respond(*service.ready())
            elif path == "/metrics":
                self._serve_metrics()
            elif path == "/jobs":
                self._respond(*service.list_jobs())
            elif path.startswith("/jobs/") and path.endswith("/events"):
                job_id = path[len("/jobs/"):-len("/events")]
                self._serve_events(job_id, parse_qs(parsed.query))
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                self._respond(*service.get_job(job_id))
            else:
                self._respond(404, {}, {"error": f"no route {self.path}"})

        def do_POST(self):
            if self.path != "/jobs":
                self._respond(404, {}, {"error": f"no route {self.path}"})
                return
            try:
                data = self._read_json()
            except ValueError as exc:
                self._respond(400, {}, {"error": f"bad JSON body: {exc}"})
                return
            self._respond(*service.submit(data))

        def do_DELETE(self):
            if not self.path.startswith("/jobs/"):
                self._respond(404, {}, {"error": f"no route {self.path}"})
                return
            job_id = self.path[len("/jobs/"):]
            self._respond(*service.cancel(job_id))

    return Handler


def serve(config):
    """CLI entry: run the daemon until a signal, drain, exit code."""
    service = CampaignService(config)
    requeued = service.recover()
    host, port = service.start_http()
    service.start_executors()
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(state {config.state_dir}, queue limit "
        f"{config.queue_limit}, {config.executors} executor(s), "
        f"{requeued} job(s) recovered)",
        flush=True,
    )
    stop = threading.Event()
    received = {}

    def _handler(signum, frame):
        received["signum"] = signum
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _handler)
    try:
        stop.wait()
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
    signum = received.get("signum")
    name = signal.Signals(signum).name if signum else "request"
    print(f"repro serve: {name} received, draining", flush=True)
    clean = service.drain(reason=name)
    print(
        "repro serve: drained"
        + ("" if clean else " (timeout: some executors still running)"),
        flush=True,
    )
    return 0 if clean else 3
