"""The crash-safe job journal of the campaign service.

One append-only JSON-lines file (``journal.jsonl`` in the service's
state directory) is the authoritative record of every job the service
has ever accepted.  It reuses the campaign checkpoint primitives —
:class:`~repro.runtime.checkpoint.JsonlWriter` for fsync'd appends,
:func:`~repro.runtime.checkpoint.read_jsonl_records` for torn-tail
tolerant reads — so a ``kill -9`` of the daemon loses at most the
record being written, and a restart replays the journal to recover.

Record types:

* ``service`` — one per daemon start/stop (pid, state dir, event),
  informational only,
* ``job`` — one per job state transition.  The ``submitted`` record
  embeds the full job spec (the journal is the source of truth; no
  separate spec file exists), later records carry only the transition
  and its context (attempt count, stop reason, error, result file,
  result digest).

The job state machine::

    submitted ──► running ──► done
        ▲            │   ├──► failed
        │            │   └──► cancelled
        │            ▼
        └─────── interrupted        (graceful drain checkpointed it)

``done`` / ``failed`` / ``cancelled`` are terminal.  A restart requeues
every job whose last journaled state is non-terminal: ``submitted``
(never picked up), ``interrupted`` (drained mid-run with a checkpoint)
and ``running`` (the daemon died mid-run — the job's campaign
checkpoint, if any survived, short-cuts the re-run).
"""

from repro.runtime.checkpoint import JsonlWriter, read_jsonl_records

SUBMITTED = "submitted"
RUNNING = "running"
INTERRUPTED = "interrupted"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a restarted service must requeue
RECOVERABLE = (SUBMITTED, RUNNING, INTERRUPTED)
#: states that end a job's lifecycle
TERMINAL = (DONE, FAILED, CANCELLED)
#: every legal state, in lifecycle order (for docs and validation)
STATES = (SUBMITTED, RUNNING, INTERRUPTED, DONE, FAILED, CANCELLED)

_TRANSITIONS = {
    None: {SUBMITTED},
    # SUBMITTED -> SUBMITTED is the restart requeue of a job the dead
    # daemon never picked up; RUNNING -> SUBMITTED the requeue of one
    # it died midway through
    SUBMITTED: {RUNNING, CANCELLED, SUBMITTED},
    RUNNING: {DONE, FAILED, CANCELLED, INTERRUPTED, SUBMITTED},
    INTERRUPTED: {SUBMITTED, RUNNING, CANCELLED},
    DONE: set(),
    FAILED: set(),
    CANCELLED: set(),
}


class JournalStateError(ValueError):
    """An illegal job state transition (a service bug, never user input)."""

    def __init__(self, job_id, old, new):
        super().__init__(
            f"job {job_id}: illegal transition {old!r} -> {new!r}"
        )
        self.job_id = job_id
        self.old = old
        self.new = new


class JobJournal:
    """Appends service/job records; every record is fsync'd durable."""

    def __init__(self, path):
        self.path = str(path)
        self._writer = JsonlWriter(self.path, site_prefix="journal")
        #: job id -> last journaled state, to reject illegal transitions
        self._states = {}

    def service_event(self, event, **fields):
        record = {"type": "service", "event": event}
        record.update(fields)
        self._writer._write(record)

    def job_event(self, job_id, state, **fields):
        old = self._states.get(job_id)
        if state not in _TRANSITIONS.get(old, ()):
            raise JournalStateError(job_id, old, state)
        record = {"type": "job", "id": job_id, "state": state}
        record.update(fields)
        self._writer._write(record)
        self._states[job_id] = state

    def note_replayed_state(self, job_id, state):
        """Seed the transition checker from a replayed journal."""
        self._states[job_id] = state

    def close(self):
        self._writer.close()


def replay_journal(path, on_corrupt=None):
    """Fold the journal into per-job views, preserving submit order.

    Returns ``(jobs, events)`` where *jobs* is an ordered ``{job_id:
    view}`` dict — each view is the union of every record the job ever
    journaled, with ``state`` holding the last transition and ``spec``
    the submitted spec — and *events* counts the service records seen.
    A torn final line (the daemon died mid-append) is skipped by the
    underlying reader; everything before it is recovered.

    With *on_corrupt* (see :func:`~repro.runtime.checkpoint.
    read_jsonl_records`) a record failing its CRC is quarantined
    instead of failing the replay.  A job whose *submitted* record was
    the casualty surfaces as a view without a ``spec`` — the service's
    recovery cancels such a job with a typed error rather than
    requeueing work it can no longer describe.
    """
    jobs = {}
    events = 0
    for record in read_jsonl_records(path, on_corrupt=on_corrupt):
        kind = record.get("type")
        if kind == "service":
            events += 1
            continue
        if kind != "job":
            continue
        view = jobs.setdefault(record["id"], {})
        for key, value in record.items():
            if key in ("type", "version"):
                continue
            view[key] = value
    return jobs, events
