"""The crash-safe job journal of the campaign service.

One append-only JSON-lines file (``journal.jsonl`` in the service's
state directory) is the authoritative record of every job the service
has ever accepted.  It reuses the campaign checkpoint primitives —
:class:`~repro.runtime.checkpoint.JsonlWriter` for fsync'd appends,
:func:`~repro.runtime.checkpoint.read_jsonl_records` for torn-tail
tolerant reads — so a ``kill -9`` of the daemon loses at most the
record being written, and a restart replays the journal to recover.

Record types:

* ``service`` — one per daemon start/stop (pid, state dir, event),
  informational only,
* ``job`` — one per job state transition.  The ``submitted`` record
  embeds the full job spec (the journal is the source of truth; no
  separate spec file exists), later records carry only the transition
  and its context (attempt count, stop reason, error, result file,
  result digest),
* ``job-deleted`` — the operator deleted a terminal job
  (``DELETE /jobs/<id>``); replay drops the job, and the next
  snapshot compacts every trace of it away,
* ``snapshot`` — a compaction point: the folded per-job views as of
  that record, plus the service-event count and the job-id high-water
  mark.  Replay *replaces* its accumulated state with the snapshot,
  so file size and replay cost are bounded by the live job population
  rather than lifetime history (:func:`compact_journal`,
  :meth:`JobJournal.snapshot`).

The job state machine::

    submitted ──► running ──► done
        ▲            │   ├──► failed
        │            │   └──► cancelled
        │            ▼
        └─────── interrupted        (graceful drain checkpointed it)

``done`` / ``failed`` / ``cancelled`` are terminal.  A restart requeues
every job whose last journaled state is non-terminal: ``submitted``
(never picked up), ``interrupted`` (drained mid-run with a checkpoint)
and ``running`` (the daemon died mid-run — the job's campaign
checkpoint, if any survived, short-cuts the re-run).
"""

import os

from repro.runtime.checkpoint import JsonlWriter, read_jsonl_records

SUBMITTED = "submitted"
RUNNING = "running"
INTERRUPTED = "interrupted"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a restarted service must requeue
RECOVERABLE = (SUBMITTED, RUNNING, INTERRUPTED)
#: states that end a job's lifecycle
TERMINAL = (DONE, FAILED, CANCELLED)
#: every legal state, in lifecycle order (for docs and validation)
STATES = (SUBMITTED, RUNNING, INTERRUPTED, DONE, FAILED, CANCELLED)

_TRANSITIONS = {
    None: {SUBMITTED},
    # SUBMITTED -> SUBMITTED is the restart requeue of a job the dead
    # daemon never picked up; RUNNING -> SUBMITTED the requeue of one
    # it died midway through
    SUBMITTED: {RUNNING, CANCELLED, SUBMITTED},
    RUNNING: {DONE, FAILED, CANCELLED, INTERRUPTED, SUBMITTED},
    INTERRUPTED: {SUBMITTED, RUNNING, CANCELLED},
    DONE: set(),
    FAILED: set(),
    CANCELLED: set(),
}


class JournalStateError(ValueError):
    """An illegal job state transition (a service bug, never user input)."""

    def __init__(self, job_id, old, new):
        super().__init__(
            f"job {job_id}: illegal transition {old!r} -> {new!r}"
        )
        self.job_id = job_id
        self.old = old
        self.new = new


class JobJournal:
    """Appends service/job records; every record is fsync'd durable.

    With *snapshot_every* set, :meth:`maybe_snapshot` compacts the
    file once that many records have been appended since the journal
    was opened (or last snapshotted), bounding file size and replay
    cost by the live job population instead of lifetime history.
    """

    def __init__(self, path, snapshot_every=None):
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.path = str(path)
        self.snapshot_every = snapshot_every
        self.snapshots_taken = 0
        self._writer = JsonlWriter(self.path, site_prefix="journal")
        #: job id -> last journaled state, to reject illegal transitions
        self._states = {}

    def service_event(self, event, **fields):
        record = {"type": "service", "event": event}
        record.update(fields)
        self._writer._write(record)

    def job_event(self, job_id, state, **fields):
        old = self._states.get(job_id)
        if state not in _TRANSITIONS.get(old, ()):
            raise JournalStateError(job_id, old, state)
        record = {"type": "job", "id": job_id, "state": state}
        record.update(fields)
        self._writer._write(record)
        self._states[job_id] = state

    def job_deleted(self, job_id):
        """Journal an operator deletion; replay drops the job."""
        self._writer._write({"type": "job-deleted", "id": job_id})
        self._states.pop(job_id, None)

    def note_replayed_state(self, job_id, state):
        """Seed the transition checker from a replayed journal."""
        self._states[job_id] = state

    def snapshot(self):
        """Compact the journal file down to one ``snapshot`` record.

        Closes the writer, rewrites the file atomically
        (:func:`compact_journal`), reopens for append and re-seeds the
        transition checker from the snapshot.  Raises
        :class:`~repro.runtime.errors.CheckpointError` when the file
        cannot be compacted (corruption is quarantined into the
        snapshot's accounting, never laundered silently) — the
        original file is untouched in that case.  Returns the
        compaction stats dict.
        """
        self._writer.close()
        try:
            stats = compact_journal(self.path)
        finally:
            self._writer = JsonlWriter(self.path, site_prefix="journal")
        self._states = {
            job_id: view.get("state")
            for job_id, view in stats["state"].jobs.items()
        }
        self.snapshots_taken += 1
        return stats

    def maybe_snapshot(self):
        """Snapshot when the record threshold is reached; stats or None.

        The trigger counts records appended by *this* writer since
        open/last snapshot, so one snapshot resets the clock.
        """
        if self.snapshot_every is None:
            return None
        if self._writer.records_written < self.snapshot_every:
            return None
        return self.snapshot()

    def close(self):
        self._writer.close()


class JournalState:
    """The folded outcome of one journal replay."""

    def __init__(self):
        self.jobs = {}  # ordered {job_id: view}
        self.events = 0  # service records seen
        self.next_id = None  # job-id high-water mark
        self.records = 0  # intact records read

    def note_job_id(self, job_id):
        """Bump the id high-water mark past *job_id* (if numeric).

        Tracked for every ``job`` record — not just surviving views —
        so deleting the last job never lets a restart reuse its id.
        """
        try:
            numeric = int(str(job_id).rsplit("-", 1)[-1]) + 1
        except ValueError:
            return
        if self.next_id is None or numeric > self.next_id:
            self.next_id = numeric


def replay_journal_state(path, on_corrupt=None):
    """Fold the journal into a :class:`JournalState`.

    ``snapshot`` records *replace* the accumulated state (they are the
    compaction of everything before them); ``job`` records fold into
    per-job views; ``job-deleted`` records drop the job.  A torn final
    line (the daemon died mid-append) is skipped by the underlying
    reader; everything before it is recovered.

    With *on_corrupt* (see :func:`~repro.runtime.checkpoint.
    read_jsonl_records`) a record failing its CRC is quarantined
    instead of failing the replay.  A job whose *submitted* record was
    the casualty surfaces as a view without a ``spec`` — the service's
    recovery cancels such a job with a typed error rather than
    requeueing work it can no longer describe.
    """
    state = JournalState()
    for record in read_jsonl_records(path, on_corrupt=on_corrupt):
        state.records += 1
        kind = record.get("type")
        if kind == "snapshot":
            state.jobs = {
                job_id: dict(view)
                for job_id, view in (record.get("jobs") or {}).items()
            }
            state.events = record.get("events", 0)
            if record.get("next_id") is not None:
                state.next_id = record["next_id"]
            continue
        if kind == "service":
            state.events += 1
            continue
        if kind == "job-deleted":
            state.jobs.pop(record.get("id"), None)
            continue
        if kind != "job":
            continue
        state.note_job_id(record["id"])
        view = state.jobs.setdefault(record["id"], {})
        for key, value in record.items():
            if key in ("type", "version"):
                continue
            view[key] = value
    return state


def replay_journal(path, on_corrupt=None):
    """Fold the journal into per-job views, preserving submit order.

    Returns ``(jobs, events)``; see :func:`replay_journal_state` for
    the full semantics (snapshot and deletion records included).
    """
    state = replay_journal_state(path, on_corrupt=on_corrupt)
    return state.jobs, state.events


def compact_journal(path, next_id=None):
    """Rewrite the journal as a single ``snapshot`` record, atomically.

    The snapshot embeds the folded per-job views (terminal jobs keep
    their result metadata — digest, counts, result file name — so
    history survives even after artifact GC removed the bytes), the
    service-event count, and the job-id high-water mark so a restart
    never reuses an id after every job was deleted.  Corruption fails
    the compaction (typed ``CheckpointError`` from the reader) with
    the original file untouched.  Returns ``{"state", "records_before",
    "records_after", "bytes_before", "bytes_after"}``.
    """
    # local import: repro.runtime.disk is the compaction primitive
    # layer and must stay importable without the service package
    from repro.runtime.disk import rewrite_jsonl_atomic

    path = str(path)
    state = replay_journal_state(path)
    if next_id is None:
        next_id = state.next_id
    elif state.next_id is not None:
        next_id = max(next_id, state.next_id)
    record = {
        "type": "snapshot",
        "jobs": state.jobs,
        "events": state.events,
    }
    if next_id is not None:
        record["next_id"] = next_id
    try:
        bytes_before = os.path.getsize(path)
    except OSError:  # pragma: no cover - raced deletion
        bytes_before = 0
    rewrite_jsonl_atomic(path, [record], site_prefix="journal")
    try:
        bytes_after = os.path.getsize(path)
    except OSError:  # pragma: no cover - raced deletion
        bytes_after = bytes_before
    return {
        "state": state,
        "records_before": state.records,
        "records_after": 1,
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
    }
